"""Dependency analysis: SCCs, stratification, head-cycle-freedom.

The graphs are keyed on *objective predicates*: a classically negated atom
``-p`` depends separately from ``p`` (they are distinct predicate symbols in
extended programs, tied together only by the implicit consistency
constraint).  The key is the string ``"p"`` or ``"-p"``.

Head-cycle-freedom (HCF) follows Ben-Eliyahu & Dechter [4], quoted by the
paper (Section 4.1): build the positive dependency graph with an edge from
each positive body literal to each head literal of the same rule; the program
is HCF when no two literals in the same rule head share a cycle (i.e. lie in
the same strongly connected component).  On non-ground programs this is the
standard predicate-level approximation (sound: predicate-level HCF implies
ground-level HCF); :func:`is_head_cycle_free` also works on ground programs
where it is exact.

Following the paper's Proposition in Section 4.1 (citing [6]), a *choice*
program is HCF when the program obtained by removing its choice goals is HCF
— choice goals are simply ignored when building the graph, which implements
exactly that test.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from .program import Program, Rule
from .terms import Literal

__all__ = [
    "objective_key",
    "positive_dependency_graph",
    "dependency_edges",
    "strongly_connected_components",
    "condensation_order",
    "stratification",
    "is_stratified",
    "is_head_cycle_free",
    "head_cycle_components",
]


def objective_key(literal: Literal) -> str:
    """Graph key for an objective literal: ``"p"`` or ``"-p"``."""
    return literal.predicate if literal.positive else f"-{literal.predicate}"


def positive_dependency_graph(program: Program
                              ) -> dict[str, set[str]]:
    """Adjacency map ``body-literal-key -> {head-literal-keys}``.

    Edges go from positive body literals to head literals, per the HCF
    definition.  All predicates appearing in the program are present as
    nodes, possibly with empty out-edges.
    """
    graph: dict[str, set[str]] = {}

    def node(key: str) -> set[str]:
        return graph.setdefault(key, set())

    for rule in program:
        head_keys = [objective_key(lit) for lit in rule.head]
        for key in head_keys:
            node(key)
        for body_lit in rule.positive_body():
            body_key = objective_key(body_lit)
            node(body_key)
            for head_key in head_keys:
                node(body_key).add(head_key)
        for body_lit in rule.naf_body():
            node(objective_key(body_lit))
    return graph


def dependency_edges(program: Program
                     ) -> tuple[dict[str, set[str]], set[tuple[str, str]]]:
    """Full dependency graph plus the set of *negative* edges.

    Edges run ``head-key -> body-key`` ("head depends on body"), the
    orientation used for stratification.  The second component contains the
    edges induced by NAF body literals.
    """
    graph: dict[str, set[str]] = {}
    negative: set[tuple[str, str]] = set()

    def node(key: str) -> set[str]:
        return graph.setdefault(key, set())

    for rule in program:
        head_keys = [objective_key(lit) for lit in rule.head]
        for key in head_keys:
            node(key)
        for body_lit in rule.body:
            if not isinstance(body_lit, Literal):
                continue
            body_key = objective_key(body_lit)
            node(body_key)
            for head_key in head_keys:
                node(head_key).add(body_key)
                if body_lit.naf:
                    negative.add((head_key, body_key))
        # A disjunctive head makes its literals mutually dependent: deriving
        # one is entangled with not deriving the others.
        if len(head_keys) > 1:
            for first in head_keys:
                for second in head_keys:
                    if first != second:
                        node(first).add(second)
                        negative.add((first, second))
    return graph, negative


def strongly_connected_components(graph: Mapping[Hashable, Iterable[Hashable]]
                                  ) -> list[set]:
    """Tarjan's algorithm, iterative (no recursion-depth limit).

    Returns components in reverse topological order (a component appears
    before any component it points to... specifically, Tarjan emits a
    component only after all components reachable from it).
    """
    index_counter = 0
    indices: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    stack: list = []
    components: list[set] = []

    for root in graph:
        if root in indices:
            continue
        work = [(root, iter(graph.get(root, ())))]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edge_iter = work[-1]
            advanced = False
            for successor in edge_iter:
                if successor not in indices:
                    indices[successor] = lowlink[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(graph.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def condensation_order(graph: Mapping[Hashable, Iterable[Hashable]]
                       ) -> list[set]:
    """SCCs in dependency order: a component's successors come earlier."""
    return strongly_connected_components(graph)


def stratification(program: Program) -> dict[str, int] | None:
    """Assign strata to objective predicates, or ``None`` if unstratifiable.

    A program is stratified when no cycle of the dependency graph contains a
    negative edge.  Stratum numbers respect: positive dependency -> same or
    lower stratum for the body; negative dependency -> strictly lower.
    """
    graph, negative = dependency_edges(program)
    components = strongly_connected_components(graph)
    component_of: dict[str, int] = {}
    for number, component in enumerate(components):
        for key in component:
            component_of[key] = number
    for head_key, body_key in negative:
        if component_of[head_key] == component_of[body_key]:
            return None

    # components come in reverse topological order: dependencies first.
    strata: dict[str, int] = {}
    component_stratum: dict[int, int] = {}
    for number, component in enumerate(components):
        level = 0
        for key in component:
            for body_key in graph.get(key, ()):
                body_component = component_of[body_key]
                if body_component == number:
                    continue
                base = component_stratum[body_component]
                if (key, body_key) in negative:
                    level = max(level, base + 1)
                else:
                    level = max(level, base)
        component_stratum[number] = level
        for key in component:
            strata[key] = level
    return strata


def is_stratified(program: Program) -> bool:
    """True when the program has a stratification (no recursion via NAF)."""
    return stratification(program) is not None


def _head_groups(program: Program) -> list[list[str]]:
    return [[objective_key(lit) for lit in rule.head]
            for rule in program if rule.is_disjunctive()]


def head_cycle_components(program: Program) -> list[tuple[str, str]]:
    """Pairs of same-head literals that share an SCC (witnesses of non-HCF)."""
    graph = positive_dependency_graph(program)
    components = strongly_connected_components(graph)
    component_of: dict[str, int] = {}
    for number, component in enumerate(components):
        for key in component:
            component_of[key] = number
    witnesses: list[tuple[str, str]] = []
    for group in _head_groups(program):
        for i, first in enumerate(group):
            for second in group[i + 1:]:
                if first == second:
                    continue
                if component_of[first] == component_of[second]:
                    witnesses.append((first, second))
    return witnesses


def is_head_cycle_free(program: Program) -> bool:
    """HCF test of Section 4.1 (choice goals are ignored, per the paper)."""
    return not head_cycle_components(program)
