"""A from-scratch Datalog / answer-set-programming engine.

This package plays the role DLV [14, 23] plays in the paper: it grounds and
solves *disjunctive extended logic programs* — rules with disjunctive heads,
classical negation, negation as failure, comparison builtins, denial
constraints, and the non-deterministic ``choice`` operator — under the
stable-model (answer-set) semantics of Gelfond & Lifschitz [16].

Typical usage::

    from repro.datalog import parse_program, AnswerSetEngine, parse_atom

    program = parse_program('''
        r1p(X, Y) :- r1(X, Y), not -r1p(X, Y).
        -r1p(X, Y) :- r1(X, Y), s1(Z, Y), not aux1(X, Z), not aux2(Z).
        aux1(X, Z) :- r2(X, W), s2(Z, W).
        aux2(Z) :- s2(Z, W).
        r1(a, b).  s1(c, b).  s2(c, e).
    ''')
    engine = AnswerSetEngine(program)
    for model in engine.answer_sets():
        print(sorted(str(lit) for lit in model))
    engine.skeptical_answers(parse_atom("r1p(X, Y)"))
"""

from .choice import unfold_choice
from .engine import (
    AnswerSetEngine,
    answer_sets,
    brave_answers,
    has_answer_set,
    skeptical_answers,
)
from .errors import (
    DatalogError,
    GroundingError,
    ParseError,
    ProgramError,
    SafetyError,
    SolverError,
)
from .fixpoint import (
    gelfond_lifschitz_reduct,
    is_minimal_model,
    is_model,
    least_model,
)
from .graphs import (
    is_head_cycle_free,
    is_stratified,
    stratification,
)
from .grounding import AtomTable, GroundProgram, GroundRule, ground_program
from .hcf import can_shift, shift_program, shift_rule
from .parser import parse_atom, parse_body, parse_program, parse_rule
from .program import Program, Rule, denial, fact
from .stable import StableModelSolver, is_stable_model, stable_models
from .terms import (
    Atom,
    ChoiceGoal,
    Comparison,
    Constant,
    Literal,
    Term,
    Variable,
)

__all__ = [
    # terms & programs
    "Term", "Constant", "Variable", "Atom", "Literal", "Comparison",
    "ChoiceGoal", "Rule", "Program", "fact", "denial",
    # parsing
    "parse_program", "parse_rule", "parse_atom", "parse_body",
    # analysis & transformations
    "is_stratified", "stratification", "is_head_cycle_free",
    "can_shift", "shift_program", "shift_rule", "unfold_choice",
    # grounding & solving
    "ground_program", "GroundProgram", "GroundRule", "AtomTable",
    "StableModelSolver", "stable_models", "is_stable_model",
    "least_model", "gelfond_lifschitz_reduct", "is_model",
    "is_minimal_model",
    # engine
    "AnswerSetEngine", "answer_sets", "skeptical_answers", "brave_answers",
    "has_answer_set",
    # errors
    "DatalogError", "ParseError", "SafetyError", "GroundingError",
    "SolverError", "ProgramError",
]
