"""Substitutions, matching, and application over terms and literals.

A substitution is represented as a plain ``dict[Variable, Constant]``; the
engine only ever needs ground substitutions (grounding instantiates variables
with constants), so there is no occurs-check or variable-to-variable binding
machinery here.  :func:`match_atom` implements one-sided matching of a
pattern atom against a ground atom, which is the workhorse of both the
grounder and the relational query evaluator.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from .terms import (
    Atom,
    BodyItem,
    ChoiceGoal,
    Comparison,
    Constant,
    Literal,
    Term,
    Variable,
)

__all__ = [
    "Substitution",
    "apply_term",
    "apply_atom",
    "apply_literal",
    "apply_comparison",
    "apply_body_item",
    "match_atom",
    "merge",
    "compose",
]

Substitution = Mapping[Variable, Constant]


def apply_term(term: Term, subst: Substitution) -> Term:
    """Apply ``subst`` to a single term."""
    if isinstance(term, Variable):
        return subst.get(term, term)
    return term


def apply_atom(atom: Atom, subst: Substitution) -> Atom:
    """Apply ``subst`` to every argument of ``atom``."""
    if atom.is_ground() or not subst:
        return atom
    return Atom(atom.predicate, tuple(apply_term(a, subst)
                                      for a in atom.args))


def apply_literal(literal: Literal, subst: Substitution) -> Literal:
    """Apply ``subst`` to the atom inside ``literal``."""
    new_atom = apply_atom(literal.atom, subst)
    if new_atom is literal.atom:
        return literal
    return Literal(new_atom, literal.positive, literal.naf)


def apply_comparison(comparison: Comparison,
                     subst: Substitution) -> Comparison:
    """Apply ``subst`` to both sides of a comparison."""
    return Comparison(comparison.op,
                      apply_term(comparison.left, subst),
                      apply_term(comparison.right, subst))


def apply_body_item(item: BodyItem, subst: Substitution) -> BodyItem:
    """Apply ``subst`` to any kind of body item."""
    if isinstance(item, Literal):
        return apply_literal(item, subst)
    if isinstance(item, Comparison):
        return apply_comparison(item, subst)
    if isinstance(item, ChoiceGoal):
        # Choice goals only mention variables; grounding replaces them as a
        # unit elsewhere, so substitution application is the identity here.
        return item
    raise TypeError(f"unexpected body item {item!r}")


def match_atom(pattern: Atom, ground: Atom,
               subst: Optional[Substitution] = None
               ) -> Optional[dict[Variable, Constant]]:
    """Match ``pattern`` against a ground atom, extending ``subst``.

    Returns the extended substitution (a new dict) on success, ``None`` on
    mismatch.  ``pattern`` may repeat variables (``p(X, X)``); repeated
    occurrences must agree.
    """
    if pattern.predicate != ground.predicate:
        return None
    if pattern.arity != ground.arity:
        return None
    binding: dict[Variable, Constant] = dict(subst) if subst else {}
    for pat_arg, ground_arg in zip(pattern.args, ground.args):
        if not isinstance(ground_arg, Constant):
            raise ValueError(f"match target {ground} is not ground")
        if isinstance(pat_arg, Constant):
            if pat_arg != ground_arg:
                return None
        else:
            assert isinstance(pat_arg, Variable)
            bound = binding.get(pat_arg)
            if bound is None:
                binding[pat_arg] = ground_arg
            elif bound != ground_arg:
                return None
    return binding


def merge(left: Substitution,
          right: Substitution) -> Optional[dict[Variable, Constant]]:
    """Merge two substitutions; ``None`` if they disagree on a variable."""
    result = dict(left)
    for var, val in right.items():
        bound = result.get(var)
        if bound is None:
            result[var] = val
        elif bound != val:
            return None
    return result


def compose(first: Substitution,
            second: Substitution) -> dict[Variable, Constant]:
    """Sequential composition: apply ``first`` then fill gaps with ``second``."""
    result = dict(second)
    result.update(first)
    return result


def ground_terms(terms: Iterable[Term], subst: Substitution) -> tuple:
    """Apply ``subst`` to a sequence of terms, returning a tuple."""
    return tuple(apply_term(t, subst) for t in terms)
