"""Distributed tracing: contexts, spans, recorders, and the collector.

The model is deliberately minimal.  A *trace* is named by a random
``trace_id``; every timed operation inside it is a :class:`Span` with
its own ``span_id`` and a ``parent_span_id`` linking it into one tree
that may cross process boundaries.  Requesters pre-allocate the span id
of each outgoing request and stamp ``(trace_id, span_id,
parent_span_id)`` onto the message; the serving side derives its
context from those fields, so its queue-wait / execution / gather spans
nest under the requester's request span without any clock agreement —
the tree is linked by ids, never by timestamps.  ``start`` values are
``time.monotonic()`` readings and are only comparable *within* one
process; ``duration`` values are valid everywhere.

Completed spans accumulate in a per-process :class:`SpanRecorder`
(keyed by trace id, bounded) and ride back to the requester piggybacked
on ``Answer`` frames; the requester's :class:`TraceCollector`
reassembles the full tree, renders it, and computes the critical path.

Everything is tolerant of partial data: spans whose parent never
arrived surface as extra roots instead of being dropped, and
:meth:`Span.from_dict` ignores unknown keys so newer peers can extend
the span payload freely.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional

__all__ = [
    "new_id",
    "TraceContext",
    "Span",
    "span_bytes",
    "SpanRecorder",
    "TraceCollector",
]


def new_id() -> str:
    """A random 16-hex-digit identifier (trace or span)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """Where in a trace the current operation sits.

    ``span_id`` names the span the holder is *inside* — children opened
    under this context take it as their parent.  A falsy context (empty
    ``trace_id``) means tracing is off; every instrumentation site
    checks truthiness first so the untraced hot path pays nothing.
    """

    trace_id: str = ""
    span_id: str = ""
    parent_span_id: str = ""

    def __bool__(self) -> bool:
        return bool(self.trace_id)

    @classmethod
    def root(cls) -> "TraceContext":
        """A fresh trace, not yet inside any span."""
        return cls(trace_id=new_id())

    def descend(self, span_id: str) -> "TraceContext":
        """The context *inside* a child span with the given id."""
        return TraceContext(self.trace_id, span_id, self.span_id)


@dataclass(frozen=True)
class Span:
    """One completed, timed operation inside a trace."""

    trace_id: str
    span_id: str
    parent_span_id: str
    name: str
    peer: str
    start: float
    duration: float
    note: str = ""

    def to_dict(self) -> dict:
        """A JSON-safe dict; empty optional fields are omitted."""
        data: dict = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "peer": self.peer,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
        }
        if self.parent_span_id:
            data["parent_span_id"] = self.parent_span_id
        if self.note:
            data["note"] = self.note
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Decode a span payload, ignoring unknown future keys."""
        return cls(
            trace_id=str(data.get("trace_id", "")),
            span_id=str(data.get("span_id", "")),
            parent_span_id=str(data.get("parent_span_id", "")),
            name=str(data.get("name", "")),
            peer=str(data.get("peer", "")),
            start=float(data.get("start", 0.0)),
            duration=float(data.get("duration", 0.0)),
            note=str(data.get("note", "")),
        )


def span_bytes(spans: Iterable[Span]) -> int:
    """Estimate the serialized size of piggybacked spans, for the
    honest traffic accounting the in-process transports run on (the
    wire transport records exact frame bytes instead)."""
    total = 0
    for span in spans:
        total += 72 + len(span.name) + len(span.peer) + len(span.note)
    return total


class SpanRecorder:
    """A bounded, thread-safe per-process sink for completed spans.

    Spans are keyed by trace id; :meth:`drain` pops everything recorded
    for one trace so it can ride back on a reply exactly once.  The
    recorder keeps at most ``max_traces`` live traces (oldest evicted)
    so an abandoned trace can never leak memory in a long-lived server.
    """

    def __init__(self, max_traces: int = 64) -> None:
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._spans: "OrderedDict[str, list[Span]]" = OrderedDict()

    def record(self, span: Span) -> None:
        if not span.trace_id:
            return
        with self._lock:
            bucket = self._spans.get(span.trace_id)
            if bucket is None:
                bucket = self._spans[span.trace_id] = []
                while len(self._spans) > self.max_traces:
                    self._spans.popitem(last=False)
            bucket.append(span)

    def record_all(self, spans: Iterable[Span]) -> None:
        for span in spans:
            self.record(span)

    def drain(self, trace_id: str) -> tuple[Span, ...]:
        """Pop and return every span recorded for ``trace_id``."""
        with self._lock:
            return tuple(self._spans.pop(trace_id, ()))

    def __len__(self) -> int:
        with self._lock:
            return sum(len(bucket) for bucket in self._spans.values())


class TraceCollector:
    """Reassemble one trace's spans into a tree and analyse it.

    Clocks are never compared across processes: the tree structure
    comes from ``parent_span_id`` links alone, and orphaned spans
    (parent not collected, e.g. a peer predating some instrumentation)
    are promoted to roots rather than dropped.
    """

    def __init__(self, spans: Iterable[Span] = ()) -> None:
        self._spans: list[Span] = []
        self.add(spans)

    def add(self, spans: Iterable[Span]) -> None:
        self._spans.extend(spans)

    @property
    def spans(self) -> tuple[Span, ...]:
        return tuple(self._spans)

    def roots(self) -> list[Span]:
        known = {span.span_id for span in self._spans}
        return sorted(
            (s for s in self._spans
             if not s.parent_span_id or s.parent_span_id not in known),
            key=lambda s: -s.duration)

    def children(self, span_id: str) -> list[Span]:
        kids = [s for s in self._spans if s.parent_span_id == span_id]
        # starts are only comparable within one process; peer then
        # start gives a stable, mostly-causal order
        kids.sort(key=lambda s: (s.peer, s.start))
        return kids

    def depth(self) -> int:
        """Longest root-to-leaf chain, in spans."""
        def walk(span: Span, seen: frozenset) -> int:
            if span.span_id in seen or not span.span_id:
                return 1
            below = seen | {span.span_id}
            kids = self.children(span.span_id)
            return 1 + max((walk(k, below) for k in kids), default=0)
        return max((walk(root, frozenset()) for root in self.roots()),
                   default=0)

    def critical_path(self) -> list[Span]:
        """The chain of spans that dominated the trace's wall time.

        From the longest root downward, each step descends into the
        child with the largest duration — with nested (not sequential)
        spans this names exactly where the time went.
        """
        path: list[Span] = []
        roots = self.roots()
        if not roots:
            return path
        span = roots[0]
        seen: set[str] = set()
        while span is not None:
            path.append(span)
            if not span.span_id or span.span_id in seen:
                break
            seen.add(span.span_id)
            kids = self.children(span.span_id)
            span = max(kids, key=lambda s: s.duration, default=None)
        return path

    def render(self) -> str:
        """An indented text tree with per-span durations; critical-path
        spans are starred."""
        critical = {id(span) for span in self.critical_path()}
        lines: list[str] = []

        def walk(span: Span, indent: int, seen: frozenset) -> None:
            marker = "*" if id(span) in critical else "-"
            lines.append("%s%s %s@%s  %.3f ms%s" % (
                "  " * indent, marker, span.name, span.peer,
                span.duration * 1000.0,
                f"  [{span.note}]" if span.note else ""))
            if span.span_id and span.span_id not in seen:
                below = seen | {span.span_id}
                for kid in self.children(span.span_id):
                    walk(kid, indent + 1, below)

        for root in self.roots():
            walk(root, 0, frozenset())
        return "\n".join(lines)
