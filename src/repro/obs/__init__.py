"""Observability: distributed tracing and live metrics.

Two small, dependency-free primitives the whole runtime shares:

* :mod:`repro.obs.trace` — a :class:`~repro.obs.trace.TraceContext`
  carried as optional fields on every protocol message, per-process
  :class:`~repro.obs.trace.SpanRecorder` sinks, and a requester-side
  :class:`~repro.obs.trace.TraceCollector` that reassembles the
  cross-process span tree and computes its critical path;
* :mod:`repro.obs.metrics` — a lock-cheap
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  fixed-bucket mergeable histograms, scraped live over the wire via
  the ``GetStatus`` protocol message.

Nothing here imports the network layers, so the protocol module can
depend on it without cycles.
"""

from .metrics import (
    LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from .trace import (
    Span,
    SpanRecorder,
    TraceCollector,
    TraceContext,
    new_id,
    span_bytes,
)

__all__ = [
    "LATENCY_BUCKETS_S",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "Span",
    "SpanRecorder",
    "TraceCollector",
    "TraceContext",
    "new_id",
    "span_bytes",
]
