"""Live metrics: counters, gauges, and fixed-bucket mergeable histograms.

A :class:`MetricsRegistry` is a lock-cheap bag of named instruments.
Every mutation takes one short critical section under a single lock
(dict update or list increment); readers take :meth:`snapshot`, a
plain JSON-safe dict that travels over the wire in ``GetStatus``
replies and merges across processes with :func:`merge_snapshots` —
counters add, gauges add (a cluster-wide pool size is the sum of the
per-process pools), histograms add bucket-wise because every process
shares the same fixed bounds.

Histograms estimate percentiles from bucket counts by linear
interpolation inside the winning bucket, which is exactly the
mergeable trade-off: a p99 is accurate to its bucket's width, and two
processes' distributions combine without keeping raw samples.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Optional, Sequence

__all__ = [
    "LATENCY_BUCKETS_S",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
]

#: default histogram bounds, in seconds — half a millisecond to half a
#: minute, roughly geometric, shared by every process so snapshots merge.
LATENCY_BUCKETS_S: tuple = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Histogram:
    """Fixed-bucket histogram: ``len(bounds) + 1`` counters, the last
    one catching everything above the highest bound."""

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKETS_S) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total

    def percentile(self, p: float) -> float:
        """The value at percentile ``p`` (0–100), interpolated inside
        the winning bucket; 0.0 when empty.  Values past the highest
        bound report that bound — an admitted underestimate, which is
        the price of never keeping raw samples."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(p / 100.0 * self.count + 0.5))
        seen = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if seen + n >= rank:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = (self.bounds[i] if i < len(self.bounds)
                         else self.bounds[-1])
                fraction = (rank - seen) / n
                return lower + (upper - lower) * fraction
            seen += n
        return self.bounds[-1]

    def summary(self) -> dict:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(mean, 6),
            "p50": round(self.percentile(50), 6),
            "p90": round(self.percentile(90), 6),
            "p99": round(self.percentile(99), 6),
        }

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.total, 9),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Histogram":
        hist = cls(tuple(data.get("bounds", LATENCY_BUCKETS_S)))
        counts = list(data.get("counts", ()))
        if len(counts) == len(hist.counts):
            hist.counts = [int(n) for n in counts]
        hist.count = int(data.get("count", sum(hist.counts)))
        hist.total = float(data.get("sum", 0.0))
        return hist


class MetricsRegistry:
    """A named bag of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- writers -------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = LATENCY_BUCKETS_S) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(bounds)
            hist.observe(value)

    # -- readers -------------------------------------------------------
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0.0)

    def summary(self, name: str) -> Optional[dict]:
        with self._lock:
            hist = self._histograms.get(name)
            return hist.summary() if hist is not None else None

    def snapshot(self) -> dict:
        """A JSON-safe point-in-time copy of every instrument."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: hist.to_dict()
                               for name, hist in self._histograms.items()},
            }


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict:
    """Combine registry snapshots (from many processes) into one:
    counters and gauges add, histograms merge bucket-wise."""
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, Histogram] = {}
    for snap in snapshots:
        if not isinstance(snap, Mapping):
            continue
        for name, value in dict(snap.get("counters", {})).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in dict(snap.get("gauges", {})).items():
            gauges[name] = gauges.get(name, 0.0) + float(value)
        for name, data in dict(snap.get("histograms", {})).items():
            hist = Histogram.from_dict(data)
            if name in histograms:
                histograms[name].merge(hist)
            else:
                histograms[name] = hist
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": {name: hist.to_dict()
                       for name, hist in histograms.items()},
        "summaries": {name: hist.summary()
                      for name, hist in histograms.items()},
    }
