"""Consistent query answering over single databases — the [1]/[8] baseline.

The paper builds its peer-to-peer semantics on the repair framework of
Arenas, Bertossi & Chomicki: Definition 1 (repairs as ≤_r-minimal
consistent instances) is quoted verbatim.  This package provides

* :func:`repairs` — repair enumeration with *fixed predicates* and
  insertion-based fixes for referential constraints (the generalisation
  Definition 4 needs);
* :func:`consistent_answers` / :func:`possible_answers` — certain/brave
  answers over all repairs;
* :func:`rewrite_query` — the classical residue-based FO rewriting for the
  denial/FD fragment, used as a baseline to contrast with the paper's P2P
  rewriting.
"""

from .answers import consistent_answers, possible_answers
from .repairs import RepairProblem, RepairResult, is_repair, repairs
from .rewriting import (
    ResidueRewriter,
    RewritingNotApplicable,
    rewrite_query,
)

__all__ = [
    "RepairProblem", "RepairResult", "repairs", "is_repair",
    "consistent_answers", "possible_answers",
    "ResidueRewriter", "RewritingNotApplicable", "rewrite_query",
]
