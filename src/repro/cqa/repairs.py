"""Database repairs (Definition 1) with fixed predicates.

A *repair* of an instance ``r`` w.r.t. a set of integrity constraints is a
consistent instance ``r'`` that is ≤_r-minimal, i.e. whose symmetric
difference Δ(r, r') is subset-minimal (Arenas, Bertossi & Chomicki [1],
quoted as Definition 1 in the paper).

This engine generalises the classical notion with the two knobs the P2P
semantics needs (Definition 4):

* **changeable relations** — facts of other relations are *fixed*: they can
  neither be deleted nor inserted (the more-trusted peer's data, and the
  data of peers not mentioned in the DECs);
* **insertions** — TGD violations can be fixed either by deleting an
  antecedent fact or by inserting consequent facts for some existential
  witness (rule (9) of the paper); EGD and denial violations admit only
  deletions (no attribute updates, matching the paper's tuple-based Δ).

The search branches over the fixes of one violation at a time, never
un-does its own changes (a minimal repair never inserts and deletes the
same fact), and finally keeps the Δ-minimal consistent outcomes.  It is
exponential in the worst case — consistent query answering is Π^p_2-hard,
as Section 3.2 of the paper recalls — so use it as the *reference*
semantics; the ASP translation scales better.

Completeness caveat: existential witnesses are drawn from the (finite)
active domain.  For the paper's DEC class — witnesses guarded by a fixed
relation, as in rule (9) — this is exact.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..relational.constraints import (
    Constraint,
    DenialConstraint,
    EqualityGeneratingConstraint,
    TupleGeneratingConstraint,
    Violation,
)
from ..relational.instance import DatabaseInstance, Fact

__all__ = ["RepairProblem", "RepairResult", "repairs", "is_repair"]


class RepairProblem:
    """A repair task: instance + constraints + which relations may change.

    Parameters:
        instance: the (possibly inconsistent) database.
        constraints: the ICs to restore.
        changeable: relations whose facts may be inserted/deleted
            (default: all relations of the instance).
        witness_domain: value pool for unguarded existential witnesses
            (default: the instance's active domain).
        max_changes: hard bound on |Δ| per branch (safety valve).
        evaluator: constraint-checking engine — ``"planner"`` (indexed,
            default) or ``"naive"`` (reference active-domain evaluation).
    """

    def __init__(self, instance: DatabaseInstance,
                 constraints: Sequence[Constraint],
                 changeable: Optional[Iterable[str]] = None,
                 witness_domain: Optional[Sequence[object]] = None,
                 max_changes: int = 64,
                 evaluator: str = "planner") -> None:
        self.instance = instance
        self.constraints = tuple(constraints)
        if changeable is None:
            self.changeable = frozenset(instance.relations())
        else:
            self.changeable = frozenset(changeable)
        self.witness_domain = tuple(witness_domain) \
            if witness_domain is not None else None
        self.max_changes = max_changes
        self.evaluator = evaluator


class RepairResult:
    """All repairs plus bookkeeping for tests and benchmarks."""

    def __init__(self, repairs: list[DatabaseInstance],
                 explored_states: int, candidates: int) -> None:
        self.repairs = repairs
        self.explored_states = explored_states
        self.candidates = candidates

    def __iter__(self):
        return iter(self.repairs)

    def __len__(self) -> int:
        return len(self.repairs)


def _first_violation(instance: DatabaseInstance,
                     constraints: Sequence[Constraint],
                     evaluator: str = "planner") -> Optional[Violation]:
    for constraint in constraints:
        found = constraint.violations(instance, evaluator=evaluator)
        if found:
            return min(found, key=lambda v: (v.constraint.name,
                                             v.antecedent_facts))
    return None


def _fix_options(problem: RepairProblem, instance: DatabaseInstance,
                 violation: Violation, inserted: frozenset[Fact],
                 deleted: frozenset[Fact]
                 ) -> list[tuple[tuple[Fact, ...], tuple[Fact, ...]]]:
    """Possible fixes as (insertions, deletions) pairs, deterministic."""
    options: list[tuple[tuple[Fact, ...], tuple[Fact, ...]]] = []
    constraint = violation.constraint
    # deletion fixes: any changeable antecedent fact not inserted by us
    for fact in violation.antecedent_facts:
        if fact.relation in problem.changeable and fact not in inserted:
            options.append(((), (fact,)))
    # insertion fixes: TGD witness options
    if isinstance(constraint, TupleGeneratingConstraint):
        for _tau, inserts in constraint.witness_options(
                instance, violation.assignment,
                insertable=set(problem.changeable),
                witness_domain=problem.witness_domain,
                evaluator=problem.evaluator):
            if not inserts:
                continue
            if any(fact in deleted for fact in inserts):
                continue
            options.append((inserts, ()))
    return options


def repairs(problem: RepairProblem, *,
            max_repairs: Optional[int] = None) -> RepairResult:
    """All ≤_r-minimal repairs of ``problem.instance``.

    Returns an empty result when no consistent instance is reachable under
    the changeable-relation restrictions (the P2P layer maps this to "the
    peer has no solutions").
    """
    original = problem.instance
    seen_states: set[tuple[frozenset[Fact], frozenset[Fact]]] = set()
    candidates: dict[DatabaseInstance, set[Fact]] = {}
    explored = 0

    stack: list[tuple[DatabaseInstance, frozenset[Fact], frozenset[Fact]]]
    stack = [(original, frozenset(), frozenset())]
    while stack:
        instance, inserted, deleted = stack.pop()
        state = (inserted, deleted)
        if state in seen_states:
            continue
        seen_states.add(state)
        explored += 1
        violation = _first_violation(instance, problem.constraints,
                                     problem.evaluator)
        if violation is None:
            candidates.setdefault(instance, set(inserted | deleted))
            continue
        if len(inserted) + len(deleted) >= problem.max_changes:
            continue  # pruned: this branch cannot fix within budget
        for ins, dels in _fix_options(problem, instance, violation,
                                      inserted, deleted):
            new_instance = instance.apply_change(ins, dels)
            stack.append((new_instance,
                          inserted | frozenset(ins),
                          deleted | frozenset(dels)))

    # Keep Δ-minimal candidates only.
    minimal: list[DatabaseInstance] = []
    deltas = {inst: inst.delta(original) for inst in candidates}
    for inst, delta in deltas.items():
        if any(other_delta < delta
               for other, other_delta in deltas.items() if other != inst):
            continue
        minimal.append(inst)
    minimal.sort(key=lambda i: (len(deltas[i]), str(i)))
    if max_repairs is not None:
        minimal = minimal[:max_repairs]
    return RepairResult(minimal, explored, len(candidates))


def is_repair(original: DatabaseInstance, candidate: DatabaseInstance,
              constraints: Sequence[Constraint],
              changeable: Optional[Iterable[str]] = None,
              evaluator: str = "planner") -> bool:
    """Exact check of the repair conditions for ``candidate``:

    consistency, fixed relations untouched — minimality is NOT checked here
    (use :func:`repairs` or compare Δs); this is the building block the
    property tests compose.
    """
    if changeable is not None:
        fixed = set(original.relations()) - set(changeable)
        for relation in fixed:
            if original.tuples(relation) != candidate.tuples(relation):
                return False
    return all(c.holds_in(candidate, evaluator=evaluator)
               for c in constraints)
