"""Consistent query answers over a single database.

A tuple is a *consistent answer* to a query when it is an answer in every
repair of the database (Arenas, Bertossi & Chomicki [1]).  This is the
single-database baseline the paper generalises: peer consistent answers
replace "repairs" by "solutions for a peer" (Definition 5).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..relational.constraints import Constraint
from ..relational.instance import DatabaseInstance
from ..relational.query import Query
from .repairs import RepairProblem, repairs

__all__ = ["consistent_answers", "possible_answers"]


def consistent_answers(instance: DatabaseInstance, query: Query,
                       constraints: Sequence[Constraint],
                       changeable: Optional[Sequence[str]] = None
                       ) -> set[tuple]:
    """Answers to ``query`` true in *every* repair.

    When the database admits no repair (possible under fixed relations),
    there are no consistent answers — callers who need to distinguish the
    inconsistent-specification case should inspect :func:`repro.cqa.repairs`
    directly.
    """
    result = repairs(RepairProblem(instance, constraints,
                                   changeable=changeable))
    answer_sets = [query.answers(repair) for repair in result]
    if not answer_sets:
        return set()
    common = set(answer_sets[0])
    for answers in answer_sets[1:]:
        common &= answers
    return common


def possible_answers(instance: DatabaseInstance, query: Query,
                     constraints: Sequence[Constraint],
                     changeable: Optional[Sequence[str]] = None
                     ) -> set[tuple]:
    """Answers true in *some* repair (the brave counterpart)."""
    result = repairs(RepairProblem(instance, constraints,
                                   changeable=changeable))
    union: set[tuple] = set()
    for repair in result:
        union |= query.answers(repair)
    return union
