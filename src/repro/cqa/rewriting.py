"""Residue-based FO query rewriting for CQA (the [1]/[8] baseline).

The paper contrasts its P2P rewriting with the classical consistent-query-
answering rewriting: "literals in the query are resolved (using resolution)
against the ICs in order to generate residues that are appended as extra
conditions to the query" (Section 2).  This module implements that
baseline for the constraint classes where it is sound and complete:
*denial constraints* and *equality-generating constraints* (functional
dependencies in particular) against quantifier-free conjunctions of
positive literals — the fragment identified by Arenas, Bertossi &
Chomicki [1].  Existential queries are rejected rather than answered
incompletely (the paper's Section 2 makes the same point: FO rewriting
"is bound to have important limitations in terms of completeness ... for
example in the case of existential queries").

Example: with the FD ``R: 0 -> 1`` the query ``R(X, Y)`` rewrites to::

    R(X, Y) & forall Z0 (R(X, Z0) -> Z0 = Y)

whose ordinary answers over the inconsistent database are exactly the
consistent answers.

The P2P rewriting of Example 2 is different in kind — it must *relax* the
query to import other peers' data rather than only constrain it; see
:mod:`repro.core.fo_rewriting`.
"""

from __future__ import annotations

from itertools import count
from typing import Optional, Sequence

from ..datalog.terms import Constant, Term, Variable
from ..relational.constraints import (
    Constraint,
    DenialConstraint,
    EqualityGeneratingConstraint,
)
from ..relational.query import (
    And,
    Cmp,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Query,
    RelAtom,
)

__all__ = ["RewritingNotApplicable", "ResidueRewriter", "rewrite_query"]


class RewritingNotApplicable(Exception):
    """The query/constraint combination falls outside the sound fragment."""


class ResidueRewriter:
    """Appends constraint residues to the positive atoms of a query."""

    def __init__(self, constraints: Sequence[Constraint]) -> None:
        for constraint in constraints:
            if not isinstance(constraint, (DenialConstraint,
                                           EqualityGeneratingConstraint)):
                raise RewritingNotApplicable(
                    f"residue rewriting supports denial and equality-"
                    f"generating constraints, not "
                    f"{type(constraint).__name__}")
        self.constraints = tuple(constraints)
        self._fresh = count()

    # ------------------------------------------------------------------
    def rewrite(self, query: Query) -> Query:
        """Rewritten query whose plain answers are the consistent answers.

        Supported query shapes: positive relation atoms combined with
        conjunction, comparisons, and existential quantification.
        """
        rewritten = self._rewrite_formula(query.formula)
        return Query(query.name, query.head, rewritten)

    def _rewrite_formula(self, formula: Formula) -> Formula:
        if isinstance(formula, RelAtom):
            return self._with_residues(formula)
        if isinstance(formula, And):
            return And(*(self._rewrite_formula(p) for p in formula.parts))
        if isinstance(formula, Cmp):
            return formula
        # Exists is rejected on purpose: naive residues under ∃ are sound
        # but *incomplete* (e.g. q(X) := ∃Y R(X,Y) under the FD R:0→1 has
        # the consistent answer X=a even when no single Y survives every
        # repair) — the fragment of [1] is quantifier-free.
        raise RewritingNotApplicable(
            f"residue rewriting handles quantifier-free conjunctions of "
            f"positive atoms; found {type(formula).__name__}")

    # ------------------------------------------------------------------
    def _with_residues(self, atom: RelAtom) -> Formula:
        residues: list[Formula] = []
        for constraint in self.constraints:
            for index, c_atom in enumerate(constraint.antecedent):
                if c_atom.relation != atom.relation:
                    continue
                if len(c_atom.terms) != len(atom.terms):
                    continue
                residue = self._residue(constraint, index, atom)
                if residue is not None:
                    residues.append(residue)
        if not residues:
            return atom
        return And(atom, *residues)

    def _residue(self, constraint: Constraint, index: int,
                 atom: RelAtom) -> Optional[Formula]:
        """Resolve ``atom`` against antecedent position ``index``."""
        c_atom = constraint.antecedent[index]
        # rename all constraint variables apart from the query's
        renaming: dict[Variable, Variable] = {}

        def fresh(var: Variable) -> Variable:
            if var not in renaming:
                renaming[var] = Variable(f"_r{next(self._fresh)}")
            return renaming[var]

        sigma: dict[Variable, Term] = {}
        extra_conditions: list[Formula] = []
        for c_term, q_term in zip(c_atom.terms, atom.terms):
            if isinstance(c_term, Variable):
                c_var = fresh(c_term)
                bound = sigma.get(c_var)
                if bound is None:
                    sigma[c_var] = q_term
                elif bound != q_term:
                    extra_conditions.append(Cmp("=", bound, q_term))
            else:
                assert isinstance(c_term, Constant)
                if isinstance(q_term, Constant):
                    if q_term != c_term:
                        return None  # cannot unify: no residue
                else:
                    extra_conditions.append(Cmp("=", q_term, c_term))

        def substitute_term(term: Term) -> Term:
            if isinstance(term, Variable):
                renamed = fresh(term)
                return sigma.get(renamed, renamed)
            return term

        def substitute_atom(rel_atom: RelAtom) -> RelAtom:
            return RelAtom(rel_atom.relation,
                           [substitute_term(t) for t in rel_atom.terms])

        def substitute_cmp(cmp_: Cmp) -> Cmp:
            comparison = cmp_.comparison
            return Cmp(comparison.op, substitute_term(comparison.left),
                       substitute_term(comparison.right))

        rest_atoms = [substitute_atom(a)
                      for i, a in enumerate(constraint.antecedent)
                      if i != index]
        conditions = [substitute_cmp(c) for c in constraint.conditions]

        premise_parts: list[Formula] = list(rest_atoms) + conditions
        if isinstance(constraint, EqualityGeneratingConstraint):
            equalities = [
                Cmp("=", substitute_term(left), substitute_term(right))
                for left, right in constraint.equalities]
            conclusion: Formula = (equalities[0] if len(equalities) == 1
                                   else And(*equalities))
        else:
            conclusion = None  # denial: residue is pure negation

        # variables of the residue not bound by the resolved atom
        used_vars: set[Variable] = set()
        for part in premise_parts:
            used_vars |= part.free_variables()
        if conclusion is not None:
            used_vars |= conclusion.free_variables()
        bound_by_atom = {sigma[v] for v in sigma
                         if isinstance(sigma[v], Variable)} \
            | atom.free_variables()
        quantified = sorted((v for v in used_vars
                             if v.name.startswith("_r")
                             and v not in bound_by_atom),
                            key=lambda v: v.name)

        if conclusion is None:
            if premise_parts:
                body = premise_parts[0] if len(premise_parts) == 1 \
                    else And(*premise_parts)
                residue: Formula = Not(body)
                if quantified:
                    residue = Not(Exists(quantified, body))
            else:
                return None  # denial fully covered by this atom: the
                # query atom itself is always inconsistent; callers see it
                # via extra_conditions only when they are contradictory
        else:
            if premise_parts:
                premise = premise_parts[0] if len(premise_parts) == 1 \
                    else And(*premise_parts)
                implication = Implies(premise, conclusion)
            else:
                implication = conclusion
            if quantified:
                residue = Forall(quantified, implication)
            else:
                residue = implication
        if extra_conditions:
            # the residue only applies when the unifying conditions hold
            condition = extra_conditions[0] if len(extra_conditions) == 1 \
                else And(*extra_conditions)
            residue = Implies(condition, residue)
        return residue


def rewrite_query(query: Query,
                  constraints: Sequence[Constraint]) -> Query:
    """Convenience wrapper around :class:`ResidueRewriter`."""
    return ResidueRewriter(constraints).rewrite(query)
