"""NF1 — concurrent vs sequential fan-out in the peer network runtime.

A peer answering over the network pays one round-trip per neighbour
request; with per-link latency injected (the realistic regime the
:class:`~repro.net.transport.ThreadedTransport` simulates), routing
those requests one by one costs ``latency x requests`` while fanning
them out concurrently costs roughly ``latency x depth``.  This benchmark
builds the three :func:`~repro.workloads.synthetic.topology_system`
families and answers the root's query over a cold network in both
:class:`~repro.net.network.PeerNetwork` concurrency modes.

Expected series shape: on the star (every request independent, depth 1)
the concurrent fan-out wins by roughly the neighbour count; on the chain
(one neighbour per hop, nothing to parallelise) the two modes tie; the
random DAG lands in between.  Script mode (the CI smoke step) enforces
the star speedup >= the acceptance bar and tuple-for-tuple agreement
with the in-process :class:`~repro.core.session.PeerQuerySession`.
"""

import time

from repro.core import PeerQuerySession
from repro.net import NetworkSession, ThreadedTransport
from repro.workloads import topology_system

QUERY = "q(X, Y) := R0(X, Y)"
TOPOLOGIES = ("star", "chain", "random")
#: peers per system in script mode (star: 1 hub + 8 leaves)
N_PEERS = 9
N_TUPLES = 5
LATENCY_S = 0.015
#: the acceptance bar for the star topology in script mode
MIN_STAR_SPEEDUP = 2.0
SEED = 4


def make_system(topology: str, n_peers: int = N_PEERS):
    return topology_system(n_peers, topology=topology,
                           n_tuples=N_TUPLES, extra_edges=3, seed=SEED)


def run_cold(system, concurrency: str, latency: float
             ) -> tuple[float, frozenset]:
    """Answer the root query over a freshly built network (cold view —
    the gather's message round-trips are what is being measured)."""
    with NetworkSession(system,
                        transport=ThreadedTransport(latency=latency),
                        concurrency=concurrency) as session:
        start = time.perf_counter()
        result = session.answer("P0", QUERY)
        elapsed = (time.perf_counter() - start) * 1000
        assert result.ok, result.error
        return elapsed, result.answers


# ---------------------------------------------------------------------------
# pytest harness (fast settings; timing assertions live in script mode)
# ---------------------------------------------------------------------------

def test_nf1_fanout_matches_sequential_and_local():
    system = make_system("star", n_peers=5)
    _, fanned = run_cold(system, "fanout", 0.002)
    _, serial = run_cold(system, "sequential", 0.002)
    local = PeerQuerySession(system).answer("P0", QUERY)
    assert fanned == serial == local.answers


def test_nf1_star_benchmark(benchmark):
    system = make_system("star", n_peers=5)
    elapsed, answers = benchmark(
        lambda: run_cold(system, "fanout", 0.002))
    assert answers


# ---------------------------------------------------------------------------
# Script mode (CI smoke step): print the report, enforce the speedup bar
# ---------------------------------------------------------------------------

def main() -> int:
    print(f"NF1 — concurrent vs sequential fan-out, "
          f"{N_PEERS} peers, {LATENCY_S * 1000:.0f} ms per-link latency")
    print(f"  {'topology':>8s} {'seq_ms':>8s} {'fanout_ms':>10s} "
          f"{'speedup':>8s} {'agree':>6s}")
    failures = []
    star_speedup = 0.0
    metrics = {"n_peers": N_PEERS, "latency_ms": LATENCY_S * 1000}
    for topology in TOPOLOGIES:
        system = make_system(topology)
        local = PeerQuerySession(system).answer("P0", QUERY)
        seq_ms, seq_answers = run_cold(system, "sequential", LATENCY_S)
        fan_ms, fan_answers = run_cold(system, "fanout", LATENCY_S)
        speedup = seq_ms / fan_ms if fan_ms else float("inf")
        agree = seq_answers == fan_answers == local.answers
        if not agree:
            failures.append(f"{topology}: answers disagree")
        if topology == "star":
            star_speedup = speedup
        metrics[f"{topology}_seq_ms"] = round(seq_ms, 1)
        metrics[f"{topology}_fanout_ms"] = round(fan_ms, 1)
        metrics[f"{topology}_speedup"] = round(speedup, 2)
        print(f"  {topology:>8s} {seq_ms:8.1f} {fan_ms:10.1f} "
              f"{speedup:8.1f} {str(agree):>6s}")
    if star_speedup < MIN_STAR_SPEEDUP:
        failures.append(f"star fan-out speedup {star_speedup:.1f}x < "
                        f"{MIN_STAR_SPEEDUP:.1f}x")

    from trajectory import write_trajectory
    write_trajectory("NF1", metrics, ok=not failures,
                     bars={"min_star_speedup": MIN_STAR_SPEEDUP})

    if failures:
        print("\n  FAILED: " + "; ".join(failures))
        return 1
    print("\n  expected: the star pays latency once per level instead "
          "of once per\n  request, so fan-out wins ~linearly in the "
          "neighbour count; the chain has\n  nothing to parallelise "
          "and ties; answers are identical to the local\n  session "
          "everywhere")
    return 0


if __name__ == "__main__":
    import sys
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    raise SystemExit(main())
