"""NF1 — concurrent vs sequential fan-out in the peer network runtime.

A peer answering over the network pays one round-trip per neighbour
request; with per-link latency injected (the realistic regime the
:class:`~repro.net.transport.ThreadedTransport` simulates), routing
those requests one by one costs ``latency x requests`` while fanning
them out concurrently costs roughly ``latency x depth``.  This benchmark
builds the three :func:`~repro.workloads.synthetic.topology_system`
families and answers the root's query over a cold network in both
:class:`~repro.net.network.PeerNetwork` concurrency modes.

Expected series shape: on the star (every request independent, depth 1)
the concurrent fan-out wins by roughly the neighbour count; on the chain
(one neighbour per hop, nothing to parallelise) the two modes tie; the
random DAG lands in between.  Script mode (the CI smoke step) enforces
the star speedup >= the acceptance bar and tuple-for-tuple agreement
with the in-process :class:`~repro.core.session.PeerQuerySession`.

The second section compares **routed vs flooded** gathers: the same
seeded random topologies answered over a long-lived session while one
leaf peer's relation mutates every round (``PeerNetwork.sync`` pushes
each edit).  Flooded mode re-floods the whole graph per round; routed
mode (``routing=True``) learns digests and subsystem tokens on the
warm-up round and then skips or shortens every exchange the mutation
provably did not touch.  Script mode enforces the acceptance bar: at
least ``MIN_ROUTING_REDUCTION`` relative reduction in *both* wire
bytes and total messages across the measured rounds, with answers
tuple-for-tuple identical to the local session every round.

The third section measures **subtree pruning** on seeded deep trees
(depth >= 3): a schedule of constant-selecting queries posed at several
roots, with one leaf relation mutating between rounds.  Serving one
root's scoped gather refreshes the hop-by-hop aggregates at every
intermediate node, so later queries prove whole branches disjoint and
skip them at zero messages, while flooded mode re-walks the entire tree
per query.  Script mode enforces the acceptance bars — at least
``MIN_TREE_MSG_REDUCTION`` fewer messages and
``MIN_TREE_BYTE_REDUCTION`` fewer wire bytes than flooding — with
answers identical to the local session throughout.
"""

import time

from repro.core import PeerQuerySession
from repro.core.system import PeerSystem
from repro.net import LoopbackTransport, NetworkSession, ThreadedTransport
from repro.relational.instance import DatabaseInstance
from repro.workloads import topology_system

QUERY = "q(X, Y) := R0(X, Y)"
TOPOLOGIES = ("star", "chain", "random")
#: peers per system in script mode (star: 1 hub + 8 leaves)
N_PEERS = 9
N_TUPLES = 5
LATENCY_S = 0.015
#: the acceptance bar for the star topology in script mode
MIN_STAR_SPEEDUP = 2.0
SEED = 4
#: routed gathers must cut bytes AND messages by at least this much
MIN_ROUTING_REDUCTION = 0.30
#: seeded random topologies the routing comparison sweeps
ROUTING_SEEDS = (3, 7)
ROUTING_DENSITY = 0.25
ROUTING_ROUNDS = 5

#: deep-tree subtree-pruning section: a binary tree of 31 peers is
#: depth 4, comfortably past the depth-3 floor where single-hop
#: digests stop helping
TREE_PEERS = 31
TREE_BRANCHING = 2
TREE_SEED = 0
TREE_ROUNDS = 2
#: subtree pruning must cut messages by at least this much ...
MIN_TREE_MSG_REDUCTION = 0.50
#: ... and wire bytes (piggybacked aggregate bytes included) by this
MIN_TREE_BYTE_REDUCTION = 0.40
#: warm-up: one *unscoped* query per schedule root, so each root
#: builds its full view and records the subsystem peer set that
#: scoped (constant-selecting) gathers key off — excluded from totals
TREE_WARMUP = (("P0", "q(X, Y) := R0(X, Y)"),
               ("P1", "q(X, Y) := R1(X, Y)"),
               ("P2", "q(X, Y) := R2(X, Y)"),
               ("P4", "q(X, Y) := R4(X, Y)"))
#: measured schedule: constant-selecting queries from several roots,
#: each constant namespaced to exactly one peer's relation (the tree
#: topology's ``p{i}k{j}`` keys), so off-path branches are provably
#: disjoint and serving one root refreshes aggregates for the next
TREE_SCHEDULE = (("P0", 'q(Y) := R0("p21k1", Y)'),
                 ("P0", 'q(Y) := R0("p5k0", Y)'),
                 ("P1", 'q(Y) := R1("p10k2", Y)'),
                 ("P1", 'q(Y) := R1("p1k0", Y)'),
                 ("P2", 'q(Y) := R2("p13k1", Y)'),
                 ("P4", 'q(Y) := R4("p22k0", Y)'))


def make_system(topology: str, n_peers: int = N_PEERS):
    return topology_system(n_peers, topology=topology,
                           n_tuples=N_TUPLES, extra_edges=3, seed=SEED)


# ---------------------------------------------------------------------------
# Routed vs flooded steady state
# ---------------------------------------------------------------------------

def mutate_leaf(system: PeerSystem, round_no: int) -> PeerSystem:
    """The same system with one extra tuple in the last peer's relation.

    Mutating the *leaf* exercises invalidation along the whole
    root-to-leaf relay path while every off-path subtree stays
    byte-identical — the regime the routing index is built for.
    """
    leaf = sorted(system.peers)[-1]
    relation = sorted(system.peers[leaf].schema.names)[0]
    rows = set(system.instances[leaf].tuples(relation))
    rows.add((f"m{round_no}", f"mv{round_no}"))
    mutated = DatabaseInstance(system.peers[leaf].schema,
                               {relation: frozenset(rows)})
    return PeerSystem(system.peers.values(),
                      {**system.instances, leaf: mutated},
                      system.exchanges, system.trust)


def run_routing_rounds(seed: int, *, routing: bool,
                       rounds: int = ROUTING_ROUNDS,
                       n_peers: int = N_PEERS) -> dict:
    """Steady-state traffic for one session mode over mutation rounds.

    Returns total messages/bytes, the deepest relay chain, and the
    per-round answer sets (for the cross-mode differential check).
    The warm-up round (cold gather + first sync) is excluded from the
    measured totals — steady state is what the index optimises.
    """
    system = topology_system(n_peers, topology="random",
                             n_tuples=N_TUPLES,
                             density=ROUTING_DENSITY, seed=seed)
    messages = bytes_total = max_hops = pruned = 0
    answers = []
    with NetworkSession(system, transport=LoopbackTransport(),
                        routing=routing) as session:
        result = session.answer("P0", QUERY)
        assert result.ok, result.error
        for round_no in range(1, rounds + 1):
            system = mutate_leaf(system, round_no)
            session.use_system(system)
            mark = session.exchange_log.mark()
            result = session.answer("P0", QUERY)
            assert result.ok, result.error
            answers.append(result.answers)
            events = session.exchange_log.events_since(mark)
            messages += len(events)
            bytes_total += sum(e.bytes_estimate for e in events)
            max_hops = max(max_hops, result.exchange.max_hops)
            pruned += result.exchange.neighbours_pruned
    return {"messages": messages, "bytes": bytes_total,
            "max_hops": max_hops, "pruned": pruned,
            "answers": answers}


def local_round_answers(seed: int, *, rounds: int = ROUTING_ROUNDS,
                        n_peers: int = N_PEERS) -> list:
    """The in-process session's answers for the same mutation schedule
    (the ground truth both network modes must reproduce)."""
    system = topology_system(n_peers, topology="random",
                             n_tuples=N_TUPLES,
                             density=ROUTING_DENSITY, seed=seed)
    expected = []
    for round_no in range(1, rounds + 1):
        system = mutate_leaf(system, round_no)
        expected.append(
            PeerQuerySession(system).answer("P0", QUERY).answers)
    return expected


# ---------------------------------------------------------------------------
# Deep-tree subtree pruning
# ---------------------------------------------------------------------------

def run_tree_rounds(*, routing: bool, rounds: int = TREE_ROUNDS,
                    n_peers: int = TREE_PEERS,
                    warmup=TREE_WARMUP,
                    schedule=TREE_SCHEDULE) -> dict:
    """Steady-state traffic for a multi-root schedule on a deep tree.

    The warm-up queries (and the syncs) are excluded: the mark is taken
    *after* ``use_system`` pushes each round's mutation, so both modes
    are charged only for answering the schedule itself.
    """
    system = topology_system(n_peers, topology="tree",
                             n_tuples=N_TUPLES,
                             branching=TREE_BRANCHING, seed=TREE_SEED)
    messages = bytes_total = pruned = subtrees = 0
    answers = []
    with NetworkSession(system, transport=LoopbackTransport(),
                        routing=routing) as session:
        for root, query in warmup:
            result = session.answer(root, query)
            assert result.ok, result.error
        for round_no in range(1, rounds + 1):
            system = mutate_leaf(system, round_no)
            session.use_system(system)
            mark = session.exchange_log.mark()
            for root, query in schedule:
                result = session.answer(root, query)
                assert result.ok, result.error
                answers.append(result.answers)
                pruned += result.exchange.neighbours_pruned
                subtrees += result.exchange.subtrees_pruned
            events = session.exchange_log.events_since(mark)
            messages += len(events)
            bytes_total += sum(e.bytes_estimate for e in events)
    return {"messages": messages, "bytes": bytes_total,
            "pruned": pruned, "subtrees": subtrees,
            "answers": answers}


def local_tree_answers(*, rounds: int = TREE_ROUNDS,
                       n_peers: int = TREE_PEERS,
                       schedule=TREE_SCHEDULE) -> list:
    """The in-process session's answers for the tree schedule."""
    system = topology_system(n_peers, topology="tree",
                             n_tuples=N_TUPLES,
                             branching=TREE_BRANCHING, seed=TREE_SEED)
    expected = []
    for round_no in range(1, rounds + 1):
        system = mutate_leaf(system, round_no)
        session = PeerQuerySession(system)
        for root, query in schedule:
            expected.append(session.answer(root, query).answers)
    return expected


def run_cold(system, concurrency: str, latency: float
             ) -> tuple[float, frozenset]:
    """Answer the root query over a freshly built network (cold view —
    the gather's message round-trips are what is being measured)."""
    with NetworkSession(system,
                        transport=ThreadedTransport(latency=latency),
                        concurrency=concurrency) as session:
        start = time.perf_counter()
        result = session.answer("P0", QUERY)
        elapsed = (time.perf_counter() - start) * 1000
        assert result.ok, result.error
        return elapsed, result.answers


# ---------------------------------------------------------------------------
# pytest harness (fast settings; timing assertions live in script mode)
# ---------------------------------------------------------------------------

def test_nf1_fanout_matches_sequential_and_local():
    system = make_system("star", n_peers=5)
    _, fanned = run_cold(system, "fanout", 0.002)
    _, serial = run_cold(system, "sequential", 0.002)
    local = PeerQuerySession(system).answer("P0", QUERY)
    assert fanned == serial == local.answers


def test_nf1_star_benchmark(benchmark):
    system = make_system("star", n_peers=5)
    elapsed, answers = benchmark(
        lambda: run_cold(system, "fanout", 0.002))
    assert answers


def test_nf1_routed_matches_flooded_and_local():
    seed = ROUTING_SEEDS[0]
    flooded = run_routing_rounds(seed, routing=False, rounds=2,
                                 n_peers=6)
    routed = run_routing_rounds(seed, routing=True, rounds=2,
                                n_peers=6)
    expected = local_round_answers(seed, rounds=2, n_peers=6)
    assert routed["answers"] == flooded["answers"] == expected
    assert routed["messages"] < flooded["messages"]
    assert routed["pruned"] > 0


def test_nf1_tree_pruning_matches_flooded_and_local():
    warmup = (("P0", "q(X, Y) := R0(X, Y)"),
              ("P1", "q(X, Y) := R1(X, Y)"))
    schedule = (("P0", 'q(Y) := R0("p9k1", Y)'),
                ("P1", 'q(Y) := R1("p5k0", Y)'),
                ("P0", 'q(Y) := R0("p1k0", Y)'))
    flooded = run_tree_rounds(routing=False, rounds=1, n_peers=15,
                              warmup=warmup, schedule=schedule)
    routed = run_tree_rounds(routing=True, rounds=1, n_peers=15,
                             warmup=warmup, schedule=schedule)
    expected = local_tree_answers(rounds=1, n_peers=15,
                                  schedule=schedule)
    assert routed["answers"] == flooded["answers"] == expected
    assert flooded["subtrees"] == 0
    assert routed["subtrees"] > 0
    assert routed["messages"] < flooded["messages"]


# ---------------------------------------------------------------------------
# Script mode (CI smoke step): print the report, enforce the speedup bar
# ---------------------------------------------------------------------------

def main() -> int:
    print(f"NF1 — concurrent vs sequential fan-out, "
          f"{N_PEERS} peers, {LATENCY_S * 1000:.0f} ms per-link latency")
    print(f"  {'topology':>8s} {'seq_ms':>8s} {'fanout_ms':>10s} "
          f"{'speedup':>8s} {'agree':>6s}")
    failures = []
    star_speedup = 0.0
    metrics = {"n_peers": N_PEERS, "latency_ms": LATENCY_S * 1000}
    for topology in TOPOLOGIES:
        system = make_system(topology)
        local = PeerQuerySession(system).answer("P0", QUERY)
        seq_ms, seq_answers = run_cold(system, "sequential", LATENCY_S)
        fan_ms, fan_answers = run_cold(system, "fanout", LATENCY_S)
        speedup = seq_ms / fan_ms if fan_ms else float("inf")
        agree = seq_answers == fan_answers == local.answers
        if not agree:
            failures.append(f"{topology}: answers disagree")
        if topology == "star":
            star_speedup = speedup
        metrics[f"{topology}_seq_ms"] = round(seq_ms, 1)
        metrics[f"{topology}_fanout_ms"] = round(fan_ms, 1)
        metrics[f"{topology}_speedup"] = round(speedup, 2)
        print(f"  {topology:>8s} {seq_ms:8.1f} {fan_ms:10.1f} "
              f"{speedup:8.1f} {str(agree):>6s}")
    # Only the star carries a speedup bar.  The chain has one
    # neighbour per hop — latency-bound by construction — so its
    # measured "speedup" hovers at ~1.0x no matter what the runtime
    # does.  It is reported above (and in the trajectory JSON) for
    # the record only: a 1.01x reading there is a tie, not a
    # regression, and it is deliberately not enforced.
    if star_speedup < MIN_STAR_SPEEDUP:
        failures.append(f"star fan-out speedup {star_speedup:.1f}x < "
                        f"{MIN_STAR_SPEEDUP:.1f}x")

    print(f"\n  routed vs flooded gathers — random topologies "
          f"(density {ROUTING_DENSITY}), {ROUTING_ROUNDS} leaf-mutation "
          f"rounds each")
    print(f"  {'seed':>6s} {'mode':>8s} {'msgs':>6s} {'bytes':>8s} "
          f"{'hops':>5s} {'pruned':>7s}")
    flooded_msgs = flooded_bytes = routed_msgs = routed_bytes = 0
    for seed in ROUTING_SEEDS:
        flooded = run_routing_rounds(seed, routing=False)
        routed = run_routing_rounds(seed, routing=True)
        expected = local_round_answers(seed)
        if not (routed["answers"] == flooded["answers"] == expected):
            failures.append(f"routing seed {seed}: answers disagree")
        for mode, run in (("flooded", flooded), ("routed", routed)):
            print(f"  {seed:>6d} {mode:>8s} {run['messages']:>6d} "
                  f"{run['bytes']:>8d} {run['max_hops']:>5d} "
                  f"{run['pruned']:>7d}")
            metrics[f"routing_s{seed}_{mode}_messages"] = run["messages"]
            metrics[f"routing_s{seed}_{mode}_bytes"] = run["bytes"]
            metrics[f"routing_s{seed}_{mode}_max_hops"] = run["max_hops"]
        flooded_msgs += flooded["messages"]
        flooded_bytes += flooded["bytes"]
        routed_msgs += routed["messages"]
        routed_bytes += routed["bytes"]
    msg_cut = (1 - routed_msgs / flooded_msgs) if flooded_msgs else 0.0
    byte_cut = (1 - routed_bytes / flooded_bytes) if flooded_bytes else 0.0
    metrics["routing_message_reduction"] = round(msg_cut, 3)
    metrics["routing_byte_reduction"] = round(byte_cut, 3)
    print(f"  reduction: {msg_cut:.1%} messages, {byte_cut:.1%} bytes "
          f"(bar: {MIN_ROUTING_REDUCTION:.0%} on both)")
    if msg_cut < MIN_ROUTING_REDUCTION:
        failures.append(f"routed message reduction {msg_cut:.1%} < "
                        f"{MIN_ROUTING_REDUCTION:.0%}")
    if byte_cut < MIN_ROUTING_REDUCTION:
        failures.append(f"routed byte reduction {byte_cut:.1%} < "
                        f"{MIN_ROUTING_REDUCTION:.0%}")

    depth = 0
    n = TREE_PEERS - 1
    while n > 0:
        depth += 1
        n = (n - 1) // TREE_BRANCHING
    print(f"\n  subtree pruning — seeded tree ({TREE_PEERS} peers, "
          f"branching {TREE_BRANCHING}, depth {depth}), "
          f"{len(TREE_SCHEDULE)}-query multi-root schedule x "
          f"{TREE_ROUNDS} mutation rounds")
    print(f"  {'mode':>8s} {'msgs':>6s} {'bytes':>8s} {'pruned':>7s} "
          f"{'subtrees':>9s}")
    tree_flooded = run_tree_rounds(routing=False)
    tree_routed = run_tree_rounds(routing=True)
    tree_local = local_tree_answers()
    if not (tree_routed["answers"] == tree_flooded["answers"]
            == tree_local):
        failures.append("tree schedule: answers disagree")
    for mode, run in (("flooded", tree_flooded),
                      ("routed", tree_routed)):
        print(f"  {mode:>8s} {run['messages']:>6d} {run['bytes']:>8d} "
              f"{run['pruned']:>7d} {run['subtrees']:>9d}")
        metrics[f"tree_{mode}_messages"] = run["messages"]
        metrics[f"tree_{mode}_bytes"] = run["bytes"]
        metrics[f"tree_{mode}_subtrees_pruned"] = run["subtrees"]
    tree_msg_cut = (1 - tree_routed["messages"]
                    / tree_flooded["messages"]
                    ) if tree_flooded["messages"] else 0.0
    tree_byte_cut = (1 - tree_routed["bytes"] / tree_flooded["bytes"]
                     ) if tree_flooded["bytes"] else 0.0
    metrics["tree_message_reduction"] = round(tree_msg_cut, 3)
    metrics["tree_byte_reduction"] = round(tree_byte_cut, 3)
    print(f"  reduction: {tree_msg_cut:.1%} messages (bar "
          f"{MIN_TREE_MSG_REDUCTION:.0%}), {tree_byte_cut:.1%} bytes "
          f"(bar {MIN_TREE_BYTE_REDUCTION:.0%})")
    if tree_msg_cut < MIN_TREE_MSG_REDUCTION:
        failures.append(f"tree message reduction {tree_msg_cut:.1%} < "
                        f"{MIN_TREE_MSG_REDUCTION:.0%}")
    if tree_byte_cut < MIN_TREE_BYTE_REDUCTION:
        failures.append(f"tree byte reduction {tree_byte_cut:.1%} < "
                        f"{MIN_TREE_BYTE_REDUCTION:.0%}")
    if tree_routed["subtrees"] == 0:
        failures.append("tree schedule pruned no subtrees")

    try:
        from trajectory import write_trajectory
    except ModuleNotFoundError:
        # imported via ``python -m repro report`` without benchmarks/
        # on sys.path (script mode and pytest collection both add it)
        import sys
        from pathlib import Path
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        from trajectory import write_trajectory
    write_trajectory("NF1", metrics, ok=not failures,
                     bars={"min_star_speedup": MIN_STAR_SPEEDUP,
                           "min_routing_reduction": MIN_ROUTING_REDUCTION,
                           "min_tree_msg_reduction": MIN_TREE_MSG_REDUCTION,
                           "min_tree_byte_reduction": MIN_TREE_BYTE_REDUCTION})

    if failures:
        print("\n  FAILED: " + "; ".join(failures))
        return 1
    print("\n  expected: the star pays latency once per level instead "
          "of once per\n  request, so fan-out wins ~linearly in the "
          "neighbour count; the chain has\n  nothing to parallelise "
          "and ties (reported, never barred); routed gathers\n  skip "
          "every exchange the mutation provably did not touch; on the "
          "deep tree,\n  aggregated subtree digests prune whole "
          "branches at zero messages; answers\n  are identical to the "
          "local session everywhere")
    return 0


if __name__ == "__main__":
    import sys
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    raise SystemExit(main())
