"""EX6 — Example 4: the combined (transitive) specification program.

Measures building + solving the combined program of Section 4.3 on the
Example 4 network.  Expected shape: 3 global solutions; the direct
semantics sees only 1 (the original instance) for P.
"""

from repro.core import (
    TransitiveSpecification,
    global_solutions,
    solutions_for_peer,
)
from repro.workloads import example4_system


def run_combined():
    return global_solutions(example4_system(), "P")


def run_direct():
    return solutions_for_peer(example4_system(), "P")


def test_ex6_combined(benchmark):
    solutions = benchmark(run_combined)
    assert len(solutions) == 3


def test_ex6_direct(benchmark):
    solutions = benchmark(run_direct)
    assert len(solutions) == 1


def test_ex6_shapes_differ():
    assert len(run_combined()) == 3 and len(run_direct()) == 1


def main() -> None:
    import time
    print("EX6 — Example 4: transitive vs direct semantics for P")
    start = time.perf_counter()
    combined = run_combined()
    combined_time = time.perf_counter() - start
    start = time.perf_counter()
    direct = run_direct()
    direct_time = time.perf_counter() - start
    print(f"  direct semantics:   {len(direct)} solution(s) "
          f"in {direct_time * 1000:.1f} ms (expected: 1 — no local "
          f"violation)")
    print(f"  combined program:   {len(combined)} solution(s) "
          f"in {combined_time * 1000:.1f} ms (expected: 3)")
    for solution in combined:
        print(f"    {solution}")
    spec = TransitiveSpecification(example4_system(), "P")
    print(f"  cycle check: has_cycles={spec.has_cycles} (expected: False)")


if __name__ == "__main__":
    main()
