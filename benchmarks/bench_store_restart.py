"""SR1 — warm-restart answering and delta sync vs full re-gather.

Durable peer nodes (``data_dir``) persist three things: their facts (a
delta-log + snapshot :class:`~repro.storage.durable.DurableFactStore`),
their answer cache keyed by content version, and the rows + versions
they last fetched from each neighbour.  This benchmark measures the two
paydays:

* **warm restart** — re-opening the same data directory and asking the
  same query answers from the persisted cache: zero protocol messages,
  zero bytes, and orders of magnitude less wall-clock than the cold
  gather + answer;
* **delta sync** — after a small update lands (one inserted fact), a
  re-gather ships versioned deltas instead of full relations, because
  every fetch names the content version the requester already holds;
  measured via ``ExchangeStats.bytes_estimate`` against the full
  re-gather a cache-less node would pay.

Script mode (the CI smoke step) enforces the differential guarantee
(reloaded answers ≡ fresh answers, from cache, zero traffic) and the
delta-sync bar (delta bytes ≤ ``MAX_DELTA_FRACTION`` of the full
re-gather bytes).
"""

import shutil
import tempfile
import time

from repro.core import PeerQuerySession
from repro.net import NetworkSession
from repro.relational.instance import Fact
from repro.workloads import topology_system

QUERY = "q(X, Y) := R0(X, Y)"
N_PEERS = 7
N_TUPLES = 40
SEED = 11
#: delta-sync traffic must be at most this fraction of a full re-gather
MAX_DELTA_FRACTION = 0.5


def make_system(extra_facts=()):
    system = topology_system(N_PEERS, topology="star",
                             n_tuples=N_TUPLES, seed=SEED)
    if extra_facts:
        system = system.with_global_instance(
            system.global_instance().with_facts(extra_facts))
    return system


def updated_system():
    return make_system([Fact("R1", ("k0", "freshly-synced"))])


def answer_once(system, data_dir):
    """One session lifetime: open, answer, close (flushes caches)."""
    session = NetworkSession(system, data_dir=data_dir)
    try:
        start = time.perf_counter()
        result = session.answer("P0", QUERY)
        elapsed = (time.perf_counter() - start) * 1000
        assert result.ok, result.error
        return result, elapsed
    finally:
        session.close()


# ---------------------------------------------------------------------------
# pytest harness (fast settings; the enforced bars live in script mode)
# ---------------------------------------------------------------------------

def test_sr1_restart_serves_identical_answers_from_disk(tmp_path):
    system = topology_system(4, topology="star", n_tuples=6, seed=SEED)
    cold, _ = answer_once(system, tmp_path / "n")
    warm, _ = answer_once(system, tmp_path / "n")
    assert warm.from_cache and warm.exchange.requests == 0
    assert (warm.answers, warm.solution_count, warm.method_used) == \
        (cold.answers, cold.solution_count, cold.method_used)


def test_sr1_delta_sync_ships_fewer_bytes(tmp_path):
    system = topology_system(4, topology="star", n_tuples=12, seed=SEED)
    session = NetworkSession(system, data_dir=tmp_path / "n")
    try:
        cold = session.answer("P0", QUERY)
        session.use_system(
            system.with_global_instance(system.global_instance()
                                        .with_facts([Fact("R1",
                                                          ("k0", "x"))])))
        warm = session.answer("P0", QUERY)
        assert warm.exchange.bytes_estimate < cold.exchange.bytes_estimate
    finally:
        session.close()


# ---------------------------------------------------------------------------
# Script mode (CI smoke step): print the report, enforce the bars
# ---------------------------------------------------------------------------

def main() -> int:
    failures = []
    data_dir = tempfile.mkdtemp(prefix="sr1-")
    try:
        system = make_system()
        print(f"SR1 — durable peers: warm restart + delta sync, "
              f"{N_PEERS}-peer star, {N_TUPLES} tuples/peer")

        cold, cold_ms = answer_once(system, data_dir)
        warm, warm_ms = answer_once(system, data_dir)
        identical = (warm.answers, warm.solution_count,
                     warm.method_used) == (cold.answers,
                                           cold.solution_count,
                                           cold.method_used)
        speedup = cold_ms / warm_ms if warm_ms else float("inf")
        print(f"  cold start : {cold_ms:8.1f} ms  "
              f"{cold.exchange.requests} requests, "
              f"~{cold.exchange.bytes_estimate} B")
        print(f"  warm restart: {warm_ms:7.1f} ms  "
              f"{warm.exchange.requests} requests, "
              f"~{warm.exchange.bytes_estimate} B  "
              f"(from_cache={warm.from_cache}, {speedup:.0f}x)")
        if not identical:
            failures.append("reloaded answers differ from cold answers")
        if not warm.from_cache or warm.exchange.requests:
            failures.append("warm restart was not served from the "
                            "persisted cache")
        local = PeerQuerySession(system).answer("P0", QUERY)
        if warm.answers != local.answers:
            failures.append("reloaded answers differ from the local "
                            "session")

        # delta sync: restart once more, push a one-row update, re-ask
        updated = updated_system()
        session = NetworkSession(system, data_dir=data_dir)
        try:
            session.use_system(updated)
            delta_result = session.answer("P0", QUERY)
            assert delta_result.ok, delta_result.error
        finally:
            session.close()
        full = NetworkSession(updated)  # cache-less: the full re-gather
        try:
            full_result = full.answer("P0", QUERY)
        finally:
            full.close()
        delta_bytes = delta_result.exchange.bytes_estimate
        full_bytes = full_result.exchange.bytes_estimate
        fraction = delta_bytes / full_bytes if full_bytes else 1.0
        print(f"  delta sync : ~{delta_bytes} B vs ~{full_bytes} B "
              f"full re-gather ({fraction:.1%})")
        if delta_result.answers != \
                PeerQuerySession(updated).answer("P0", QUERY).answers:
            failures.append("delta-synced answers differ from the "
                            "local session on the updated system")
        if fraction > MAX_DELTA_FRACTION:
            failures.append(
                f"delta sync shipped {fraction:.1%} of the full "
                f"re-gather bytes (bar: {MAX_DELTA_FRACTION:.0%})")
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

    if failures:
        print("\n  FAILED: " + "; ".join(failures))
        return 1
    print("\n  expected: the warm restart answers from the persisted "
          "answer cache\n  (zero messages); after the one-row update, "
          "every relation fetch names the\n  version it already holds "
          "and gets a delta back, so only the changed row\n  moves "
          "instead of every relation")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
