"""SC3 — Section 4.1 ablation: HCF shifting on vs off.

Sweeps the referential family (Section 3.1 shape) in the number of
violations, solving the same specification program with the disjunctive
solver versus the shifted normal program.

Expected series shape: identical model counts ((w+1)^v with w witnesses
per violation); the shifted run avoids per-candidate disjunctive
minimality checks and dominates as violations grow.
"""

import pytest

from repro.core import GavSpecification
from repro.core.trust import TrustLevel
from repro.datalog import AnswerSetEngine
from repro.workloads import referential_system

SIZES = [1, 2, 3]
WITNESSES = 2


def make_program(n_violations):
    system = referential_system(n_violations, WITNESSES)
    decs = [e.constraint
            for e in system.trusted_decs_of("P", TrustLevel.LESS)]
    spec = GavSpecification(system.global_instance(), decs,
                            changeable={"R1", "R2"})
    return spec.program


def expected_models(n_violations):
    # per violation: delete, or insert one of the (distinct) witnesses;
    # the chosen/diffchoice machinery contributes one model per choice
    # even for the deletion branch: (2 witnesses) x (delete or insert)
    return (2 * WITNESSES) ** n_violations


@pytest.mark.parametrize("n", SIZES)
def test_sc3_disjunctive(benchmark, n):
    program = make_program(n)
    models = benchmark(
        lambda: AnswerSetEngine(program, shift_hcf=False).answer_sets())
    assert len(models) == expected_models(n)
    benchmark.extra_info["violations"] = n


@pytest.mark.parametrize("n", SIZES)
def test_sc3_shifted(benchmark, n):
    program = make_program(n)
    models = benchmark(
        lambda: AnswerSetEngine(program, shift_hcf=True).answer_sets())
    assert len(models) == expected_models(n)
    benchmark.extra_info["violations"] = n


@pytest.mark.parametrize("n", SIZES)
def test_sc3_equivalence(n):
    program = make_program(n)
    def render(models):
        return sorted(sorted(str(l) for l in m) for m in models)
    disjunctive = AnswerSetEngine(program, shift_hcf=False).answer_sets()
    shifted = AnswerSetEngine(program, shift_hcf=True).answer_sets()
    assert render(disjunctive) == render(shifted)


def main() -> None:
    import time
    print("SC3 — HCF shifting ablation, referential family "
          f"(w={WITNESSES} witnesses/violation)")
    print(f"  {'violations':>10s} {'#models':>8s} {'disj_ms':>9s} "
          f"{'shift_ms':>9s} {'speedup':>8s}")
    for n in SIZES:
        program = make_program(n)
        start = time.perf_counter()
        disjunctive = AnswerSetEngine(program,
                                      shift_hcf=False).answer_sets()
        disj_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        shifted = AnswerSetEngine(program, shift_hcf=True).answer_sets()
        shift_ms = (time.perf_counter() - start) * 1000
        assert len(disjunctive) == len(shifted)
        speedup = disj_ms / shift_ms if shift_ms else float("inf")
        print(f"  {n:10d} {len(shifted):8d} {disj_ms:9.1f} "
              f"{shift_ms:9.1f} {speedup:8.2f}")
    print("  expected: identical models; shifting at least as fast, "
          "gap grows")


if __name__ == "__main__":
    main()
