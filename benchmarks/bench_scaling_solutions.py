"""SC1 — Section 3.2: exponential solution blow-up vs compact program.

The number of solutions doubles with each independent same-trust conflict
(2^n for n conflicts), while the ASP *specification* of all of them stays
linear in n — the paper's point that "Program Π represents in a compact
form all the solutions for a peer".  Peer-consistent answering therefore
pays for enumeration only when it must.

Expected series shape: #solutions = 2^n; program size O(n); enumeration
time grows exponentially while program construction stays flat.
"""

import pytest

from repro.core import GavSpecification, solutions_for_peer
from repro.core.trust import TrustLevel
from repro.workloads import conflict_chain_system

SIZES = [1, 2, 3, 4, 5, 6]


def _stage2_spec(system):
    same = [e.constraint for e in
            system.trusted_decs_of("P1", TrustLevel.SAME)]
    return GavSpecification(system.global_instance(), same,
                            changeable={"R1", "R3"})


@pytest.mark.parametrize("n", SIZES)
def test_sc1_asp_enumeration(benchmark, n):
    system = conflict_chain_system(n)

    def run():
        return _stage2_spec(system).solutions()

    solutions = benchmark(run)
    assert len(solutions) == 2 ** n
    benchmark.extra_info["conflicts"] = n
    benchmark.extra_info["solutions"] = len(solutions)


@pytest.mark.parametrize("n", [1, 2, 3, 4])
def test_sc1_model_theoretic(benchmark, n):
    system = conflict_chain_system(n)
    solutions = benchmark(lambda: solutions_for_peer(system, "P1"))
    assert len(solutions) == 2 ** n


@pytest.mark.parametrize("n", SIZES)
def test_sc1_program_size_linear(n):
    system = conflict_chain_system(n)
    program = _stage2_spec(system).program
    # facts + per-relation persistence + one rule per equality: O(n)
    assert len(program) <= 8 * n + 10


def main() -> None:
    import time
    print("SC1 — solution blow-up: n conflicts -> 2^n solutions")
    print(f"  {'n':>3s} {'#solutions':>11s} {'|program|':>10s} "
          f"{'build_ms':>9s} {'enum_ms':>9s}")
    for n in SIZES:
        system = conflict_chain_system(n)
        start = time.perf_counter()
        spec = _stage2_spec(system)
        program_size = len(spec.program)
        build = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        solutions = spec.solutions()
        enum = (time.perf_counter() - start) * 1000
        print(f"  {n:3d} {len(solutions):11d} {program_size:10d} "
              f"{build:9.1f} {enum:9.1f}")
    print("  expected: #solutions = 2^n, |program| linear in n")


if __name__ == "__main__":
    main()
