"""SH1 — shard fan-out and replica failover on the bulk-transfer family.

Three questions the shard layer must answer with numbers:

* **does fan-out beat one big server?** — a bulk relation is fetched
  once from a single logical server and once through a
  :class:`~repro.shard.ShardRouter` over N shards, with each server's
  service time *modeled* (a sleep proportional to the rows it serves,
  calibrated from the measured real-server rate).  The model is what
  makes the bar honest on this container: shard servers are separate
  OS processes, so on a multi-core host their service time genuinely
  overlaps, but the CI box has a single core (``os.cpu_count() == 1``)
  where real processes serialize and only the modeled sleeps can
  overlap.  Script mode enforces the fan-out speedup >=
  ``MIN_FANOUT_SPEEDUP`` and that the merged rows are identical.

* **what does sharding cost over real TCP?** — the same bulk fetch
  against live ``repro serve`` processes, single vs sharded.  On a
  single core the sharded run cannot win, so the enforced bar is a
  bounded overhead (``MAX_WIRE_OVERHEAD``x single) plus row-identical
  payloads; the measured ratio is recorded in the trajectory either
  way, with the core count alongside it.

* **is failover bounded, and does catch-up ship deltas?** — a sharded,
  2-replica cluster serves a full fetch (yielding a composed
  ``shards(...)`` version token), then loses the *preferred* replica
  of every shard.  The timed re-fetch that names the token must fail
  over within ``MAX_FAILOVER_MS``, come back as a delta, and ship
  under ``MAX_DELTA_FRACTION`` of the full fetch's frame bytes.

Script mode writes ``BENCH_SH1.json`` at the repo root.
"""

import os
import time

from repro.net.protocol import Answer, FetchRelation
from repro.net.transport import LoopbackTransport
from repro.shard import ShardMap, ShardRouter
from repro.wire import ClusterSupervisor, SocketTransport
from repro.wire.codec import encode_message
from repro.workloads import bulk_relation_system

RELATION = "R0"
PEER = "P0"
N_ROWS = 40_000
#: rows in the (process-spawning) failover drill — kept smaller
N_ROWS_FAILOVER = 8_000
N_SHARDS = 4
#: modeled per-row service time: sort + fingerprint + encode on the
#: serving side, ~3.75 us/row measured against a real ``repro serve``
#: process on this box (150 ms for the 40k-row fetch)
SERVICE_US_PER_ROW = 3.0

#: modeled N-shard fan-out must beat the single server by this factor
MIN_FANOUT_SPEEDUP = 2.0
#: real-TCP sharded fetch may cost at most this factor of the single
#: fetch (it cannot *win* on a 1-core container; see module docstring)
MAX_WIRE_OVERHEAD = 1.5
#: failover re-fetch (losing every preferred replica) must finish here
MAX_FAILOVER_MS = 2000.0
#: delta catch-up traffic vs the full fetch (exact frame bytes)
MAX_DELTA_FRACTION = 0.5


def shard_slices(rows, shard_map, peer=PEER, relation=RELATION):
    """Partition ``rows`` by the map's placement, sorted per shard."""
    slices = {shard: [] for shard in shard_map.shard_names(peer)}
    for row in rows:
        index = shard_map.shard_of(peer, relation, row)
        slices[f"{peer}#{index}"].append(row)
    return {shard: sorted(rows) for shard, rows in slices.items()}


def _serving(rows, version, service_s):
    """A scripted shard server: modeled service time, then the rows."""
    payload = tuple(rows)

    def handle(message):
        time.sleep(service_s)
        return Answer(sender=message.target, target=message.sender,
                      in_reply_to=message.correlation_id,
                      payload=payload, version=version)
    return handle


def run_modeled_fanout(n_rows, shards, service_us):
    """Fetch the bulk relation from one modeled server and through a
    shard router over ``shards`` modeled servers; return
    ``(single_ms, sharded_ms, identical)``."""
    system = bulk_relation_system(n_rows)
    rows = sorted(system.fetch_relation(PEER, RELATION))
    per_row_s = service_us / 1e6

    single = LoopbackTransport()
    single.register(PEER, _serving(rows, "v-single",
                                   len(rows) * per_row_s))
    message = FetchRelation(sender="bench", target=PEER,
                            relation=RELATION)
    start = time.perf_counter()
    single_reply = single.request(message)
    single_ms = (time.perf_counter() - start) * 1000

    shard_map = ShardMap({PEER: shards})
    slices = shard_slices(rows, shard_map)
    inner = LoopbackTransport()
    for shard, slice_rows in slices.items():
        inner.register(f"{shard}@0", _serving(
            slice_rows, f"v-{shard}", len(slice_rows) * per_row_s))
    router = ShardRouter(shard_map,
                         {shard: [f"{shard}@0"] for shard in slices},
                         inner, local_name="bench")
    start = time.perf_counter()
    sharded_reply = router.request(message)
    sharded_ms = (time.perf_counter() - start) * 1000

    identical = (frozenset(single_reply.payload)
                 == frozenset(sharded_reply.payload))
    return single_ms, sharded_ms, identical


def fetch_over_wire(transport, *, known_version=""):
    """One timed FetchRelation over ``transport``; returns
    ``(reply, elapsed_ms, frame_bytes)`` — bytes as the reply frame
    would cross the wire."""
    message = FetchRelation(sender="bench", target=PEER,
                            relation=RELATION,
                            known_version=known_version)
    start = time.perf_counter()
    reply = transport.request(message)
    elapsed = (time.perf_counter() - start) * 1000
    assert isinstance(reply, Answer), reply
    return reply, elapsed, len(encode_message(reply))


def best_of(runs, fetch):
    """The fastest of ``runs`` calls (first call also warms pools)."""
    best = None
    for _ in range(runs):
        reply, elapsed, frame = fetch()
        if best is None or elapsed < best[1]:
            best = (reply, elapsed, frame)
    return best


def run_wire_bulk(n_rows, shards, runs=3):
    """Real-TCP bulk fetch, single process vs ``shards`` shard
    processes; returns ``(single_ms, sharded_ms, bytes, identical)``."""
    system = bulk_relation_system(n_rows)
    supervisor = ClusterSupervisor(system)
    supervisor.start()
    try:
        transport = SocketTransport(supervisor.addresses(),
                                    local_name="bench", timeout=60.0)
        try:
            single_reply, single_ms, frame = best_of(
                runs, lambda: fetch_over_wire(transport))
        finally:
            transport.close()
    finally:
        supervisor.stop()

    shard_map = ShardMap({PEER: shards})
    supervisor = ClusterSupervisor(system, shard_map=shard_map)
    supervisor.start()
    try:
        router = ShardRouter.from_addresses(
            shard_map, supervisor.addresses(), local_name="bench",
            timeout=60.0)
        try:
            sharded_reply, sharded_ms, _ = best_of(
                runs, lambda: fetch_over_wire(router))
        finally:
            router.close()
    finally:
        supervisor.stop()

    identical = (frozenset(single_reply.payload)
                 == frozenset(sharded_reply.payload))
    return single_ms, sharded_ms, frame, identical


def run_failover_drill(n_rows, shards, replicas=2):
    """Full fetch -> composed token -> kill every preferred replica ->
    timed delta re-fetch over the survivors."""
    system = bulk_relation_system(n_rows)
    shard_map = ShardMap({PEER: shards})
    supervisor = ClusterSupervisor(system, shard_map=shard_map,
                                   replicas=replicas)
    supervisor.start()
    try:
        router = ShardRouter.from_addresses(
            shard_map, supervisor.addresses(), local_name="bench",
            timeout=60.0, connect_timeout=2.0)
        try:
            full_reply, full_ms, full_bytes = fetch_over_wire(router)
            assert not full_reply.delta
            token = full_reply.version
            for unit in router.primaries(PEER).values():
                supervisor.kill(unit)
            delta_reply, failover_ms, delta_bytes = fetch_over_wire(
                router, known_version=token)
            return {
                "full_ms": full_ms,
                "full_bytes": full_bytes,
                "token": token,
                "failover_ms": failover_ms,
                "delta": delta_reply.delta,
                "delta_bytes": delta_bytes,
                "delta_payload": delta_reply.payload,
            }
        finally:
            router.close()
    finally:
        supervisor.stop()


# ---------------------------------------------------------------------------
# pytest harness (small instances; the timing bars live in script mode)
# ---------------------------------------------------------------------------

def test_sh1_modeled_fanout_rows_identical():
    single_ms, sharded_ms, identical = run_modeled_fanout(
        2_000, shards=4, service_us=0.0)
    assert identical
    assert single_ms >= 0 and sharded_ms >= 0


def test_sh1_failover_catches_up_by_delta():
    drill = run_failover_drill(500, shards=2, replicas=2)
    assert drill["token"].startswith("shards(")
    assert drill["delta"], "survivors must honour the composed token"
    assert drill["delta_bytes"] < drill["full_bytes"]
    # nothing changed while the primaries died: the delta is empty
    assert drill["delta_payload"] == {"insert": (), "delete": ()}


# ---------------------------------------------------------------------------
# Script mode (CI smoke step): print the report, enforce the bars
# ---------------------------------------------------------------------------

def main() -> int:
    failures = []
    cores = os.cpu_count() or 1
    print(f"SH1 — shard fan-out & failover: {N_ROWS} bulk rows, "
          f"{N_SHARDS} shards, {cores} core(s)")

    # -- modeled fan-out ----------------------------------------------------
    single_ms, sharded_ms, identical = run_modeled_fanout(
        N_ROWS, N_SHARDS, SERVICE_US_PER_ROW)
    speedup = single_ms / sharded_ms if sharded_ms else float("inf")
    print(f"  modeled  single: {single_ms:8.1f} ms   sharded x"
          f"{N_SHARDS}: {sharded_ms:8.1f} ms   [{speedup:.2f}x, "
          f"{SERVICE_US_PER_ROW} us/row service]")
    if not identical:
        failures.append("modeled sharded rows differ from single")
    if speedup < MIN_FANOUT_SPEEDUP:
        failures.append(
            f"modeled fan-out speedup {speedup:.2f}x < "
            f"{MIN_FANOUT_SPEEDUP:.1f}x")

    # -- real TCP -----------------------------------------------------------
    wire_single_ms, wire_sharded_ms, wire_bytes, wire_identical = \
        run_wire_bulk(N_ROWS, N_SHARDS)
    overhead = (wire_sharded_ms / wire_single_ms
                if wire_single_ms else float("inf"))
    print(f"  wire     single: {wire_single_ms:8.1f} ms   sharded x"
          f"{N_SHARDS}: {wire_sharded_ms:8.1f} ms   [{overhead:.2f}x "
          f"single, {wire_bytes} B payload frame]")
    if not wire_identical:
        failures.append("wire sharded rows differ from single")
    if overhead > MAX_WIRE_OVERHEAD:
        failures.append(
            f"wire sharded fetch cost {overhead:.2f}x single "
            f"(bound: {MAX_WIRE_OVERHEAD}x)")

    # -- replica failover + delta catch-up ----------------------------------
    drill = run_failover_drill(N_ROWS_FAILOVER, N_SHARDS)
    fraction = (drill["delta_bytes"] / drill["full_bytes"]
                if drill["full_bytes"] else 1.0)
    print(f"  failover re-fetch: {drill['failover_ms']:6.1f} ms after "
          f"losing every preferred replica")
    print(f"  delta catch-up: {drill['delta_bytes']:8d} B vs "
          f"{drill['full_bytes']} B full fetch ({fraction:.1%}, exact "
          f"frame bytes)")
    if not drill["delta"]:
        failures.append("catch-up after failover was not a delta")
    if drill["failover_ms"] > MAX_FAILOVER_MS:
        failures.append(
            f"failover re-fetch took {drill['failover_ms']:.1f} ms "
            f"(bound: {MAX_FAILOVER_MS:.0f} ms)")
    if fraction > MAX_DELTA_FRACTION:
        failures.append(
            f"delta catch-up shipped {fraction:.1%} of the full fetch "
            f"bytes (bar: {MAX_DELTA_FRACTION:.0%})")

    from trajectory import write_trajectory
    write_trajectory(
        "SH1",
        {
            "cores": cores,
            "n_rows": N_ROWS,
            "n_shards": N_SHARDS,
            "modeled_single_ms": round(single_ms, 1),
            "modeled_sharded_ms": round(sharded_ms, 1),
            "modeled_speedup": round(speedup, 2),
            "wire_single_ms": round(wire_single_ms, 1),
            "wire_sharded_ms": round(wire_sharded_ms, 1),
            "wire_overhead": round(overhead, 2),
            "wire_payload_bytes": wire_bytes,
            "failover_ms": round(drill["failover_ms"], 1),
            "delta_bytes": drill["delta_bytes"],
            "full_bytes": drill["full_bytes"],
            "delta_fraction": round(fraction, 4),
        },
        ok=not failures,
        bars={
            "min_fanout_speedup": MIN_FANOUT_SPEEDUP,
            "max_wire_overhead": MAX_WIRE_OVERHEAD,
            "max_failover_ms": MAX_FAILOVER_MS,
            "max_delta_fraction": MAX_DELTA_FRACTION,
        },
    )

    if failures:
        print("\n  FAILED: " + "; ".join(failures))
        return 1
    print("\n  expected: with per-server service time overlapping "
          "(modeled here, real\n  on a multi-core host), N shards "
          "serve their slices concurrently and the\n  fan-out wins "
          "~linearly; over real TCP on this box the sharded fetch "
          "stays\n  within a bounded overhead; losing every preferred "
          "replica fails over in\n  bounded time and the catch-up "
          "names the composed token, so survivors\n  ship deltas, "
          "not the relation")
    return 0


if __name__ == "__main__":
    import sys
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    raise SystemExit(main())
