"""EX2 — Example 2: peer consistent answers by all three mechanisms.

Expected shape: every method returns {(a,b), (c,d), (a,e)}; FO rewriting
is the cheapest (one FO query evaluation), the model-theoretic route the
most expensive (solution enumeration), ASP in between.
"""

from repro.core import (
    answers_via_rewriting,
    asp_peer_consistent_answers,
    peer_consistent_answers,
)
from repro.workloads import example1_query, example1_system

EXPECTED = {("a", "b"), ("c", "d"), ("a", "e")}


def run_rewriting():
    return answers_via_rewriting(example1_system(), "P1",
                                 example1_query())


def run_model():
    return set(peer_consistent_answers(example1_system(), "P1",
                                       example1_query()).answers)


def run_asp():
    return set(asp_peer_consistent_answers(example1_system(), "P1",
                                           example1_query()).answers)


def test_ex2_rewriting(benchmark):
    assert benchmark(run_rewriting) == EXPECTED


def test_ex2_model_theoretic(benchmark):
    assert benchmark(run_model) == EXPECTED


def test_ex2_asp(benchmark):
    assert benchmark(run_asp) == EXPECTED


def main() -> None:
    import time
    print("EX2 — Example 2: PCAs to Q : R1(x,y) for P1")
    for label, fn in (("fo-rewriting", run_rewriting),
                      ("asp", run_asp),
                      ("model-theoretic", run_model)):
        start = time.perf_counter()
        answers = fn()
        elapsed = time.perf_counter() - start
        print(f"  {label:18s}: {sorted(answers)} "
              f"in {elapsed * 1000:.1f} ms")
    print("  expected (paper): (a,b), (c,d), (a,e)")


if __name__ == "__main__":
    main()
