"""EX4 — Example 3 / Section 4.1: shifting the HCF choice program.

Measures solving the Section 3.1 program with the disjunctive solver
(shift disabled) versus the shifted normal program.  Expected shape: the
same 4 answer sets either way; the shifted program avoids the disjunctive
minimality checks, so it is at least as fast — the gap widens with
instance size (SC3 sweeps it).
"""

from repro.core import GavSpecification
from repro.datalog import AnswerSetEngine
from repro.workloads import appendix_instance, section31_dec


def make_program():
    return GavSpecification(appendix_instance(), [section31_dec()],
                            changeable={"R1", "R2"}).program


def run_disjunctive():
    return AnswerSetEngine(make_program(), shift_hcf=False).answer_sets()


def run_shifted():
    return AnswerSetEngine(make_program(), shift_hcf=True).answer_sets()


def _projection(models):
    return sorted(sorted(str(l) for l in m
                         if not l.predicate.startswith(("chosen",
                                                        "diffchoice")))
                  for m in models)


def test_ex4_disjunctive(benchmark):
    models = benchmark(run_disjunctive)
    assert len(models) == 4


def test_ex4_shifted(benchmark):
    models = benchmark(run_shifted)
    assert len(models) == 4


def test_ex4_equivalence():
    assert _projection(run_disjunctive()) == _projection(run_shifted())


def main() -> None:
    import time
    print("EX4 — Example 3: HCF shift of the Section 3.1 choice program")
    for label, fn in (("disjunctive solver", run_disjunctive),
                      ("shifted (normal)", run_shifted)):
        start = time.perf_counter()
        models = fn()
        elapsed = time.perf_counter() - start
        print(f"  {label:20s}: {len(models)} models "
              f"in {elapsed * 1000:.1f} ms")
    print("  expected: identical answer sets (4), shift at least as fast")


if __name__ == "__main__":
    main()
