"""SC5 — engine ablation: the stratified fast path.

Import-only specifications (no conflicts, no disjunction) ground to
stratified normal programs; the engine then computes the single answer set
by iterated fixpoint instead of branch-and-bound search.  This ablation
measures the difference on the import-star family.

Measured finding (reproduce with ``python -m repro report``): the two
paths are nearly
indistinguishable here — on stratified programs the solver's propagation
(Fitting + unfounded-set) is already deterministic and complete, so no
branching ever happens and the search path degenerates to the same
fixpoint computation.  The fast path's real value is the *guarantee* of
no search (and skipping the final stability verification), not a big
constant factor.  Expected series shape: identical single answer set,
comparable cost (ratio ~1.0-1.1x).
"""

import pytest

from repro.core import GavSpecification
from repro.core.trust import TrustLevel
from repro.datalog import AnswerSetEngine
from repro.workloads import import_star_system

SIZES = [40, 120, 360]


def make_program(n):
    system = import_star_system(n, n_neighbours=2, conflicts=0, seed=5)
    decs = [e.constraint
            for e in system.trusted_decs_of("P0", TrustLevel.LESS)]
    spec = GavSpecification(system.global_instance(), decs,
                            changeable={"R0"})
    return spec.program


@pytest.mark.parametrize("n", SIZES)
def test_sc5_fast_path(benchmark, n):
    program = make_program(n)
    models = benchmark(lambda: AnswerSetEngine(
        program, use_stratified_fast_path=True).answer_sets())
    assert len(models) == 1
    benchmark.extra_info["n_tuples"] = n


@pytest.mark.parametrize("n", SIZES)
def test_sc5_search_path(benchmark, n):
    program = make_program(n)
    models = benchmark(lambda: AnswerSetEngine(
        program, use_stratified_fast_path=False).answer_sets())
    assert len(models) == 1
    benchmark.extra_info["n_tuples"] = n


@pytest.mark.parametrize("n", [40, 120])
def test_sc5_equivalence(n):
    program = make_program(n)
    fast = AnswerSetEngine(program,
                           use_stratified_fast_path=True).answer_sets()
    slow = AnswerSetEngine(program,
                           use_stratified_fast_path=False).answer_sets()
    assert [sorted(str(l) for l in m) for m in fast] == \
        [sorted(str(l) for l in m) for m in slow]


def main() -> None:
    import time
    print("SC5 — stratified fast path ablation, import-star family")
    print(f"  {'n':>5s} {'fast_ms':>9s} {'search_ms':>10s} {'speedup':>8s}")
    for n in SIZES:
        program = make_program(n)
        start = time.perf_counter()
        fast = AnswerSetEngine(
            program, use_stratified_fast_path=True).answer_sets()
        fast_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        slow = AnswerSetEngine(
            program, use_stratified_fast_path=False).answer_sets()
        search_ms = (time.perf_counter() - start) * 1000
        assert len(fast) == len(slow) == 1
        print(f"  {n:5d} {fast_ms:9.1f} {search_ms:10.1f} "
              f"{search_ms / fast_ms:8.2f}")
    print("  expected: identical single model; comparable cost "
          "(propagation already\n  decides stratified programs — see "
          "module docstring)")


if __name__ == "__main__":
    main()
