"""Shared configuration for the benchmark harness.

Run the full harness with::

    pytest benchmarks/ --benchmark-only

Each ``bench_*.py`` module is also runnable as a plain script
(``python benchmarks/bench_example1.py``) and then prints the experiment's
report rows — the paper-shape summaries also reachable via
``python -m repro report``.
"""
