"""Benchmark trajectory files: ``BENCH_<id>.json`` at the repo root.

Script-mode benchmark runs (the CI smoke steps) record their headline
metrics machine-readably so successive runs can be compared without
re-parsing stdout.  One file per benchmark id, overwritten on each
run — the *trajectory* lives in version control, where each commit
pins the numbers its code produced.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

#: the repository root (this file lives in <root>/benchmarks/)
ROOT = Path(__file__).resolve().parent.parent

__all__ = ["ROOT", "write_trajectory"]


def write_trajectory(bench_id: str, metrics: dict, *, ok: bool,
                     bars: dict | None = None) -> Path:
    """Write ``BENCH_<bench_id>.json`` at the repo root; return it.

    ``metrics`` holds the measured numbers (timings in ms, exact byte
    counts, ratios), ``bars`` the enforced bounds they were judged
    against, ``ok`` whether every bar held.
    """
    payload = {
        "bench": bench_id,
        "ok": ok,
        "unix_time": int(time.time()),
        "metrics": metrics,
    }
    if bars:
        payload["bars"] = bars
    path = ROOT / f"BENCH_{bench_id}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
    return path
