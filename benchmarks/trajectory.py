"""Benchmark trajectory files: ``BENCH_<id>.json`` at the repo root.

Script-mode benchmark runs (the CI smoke steps) record their headline
metrics machine-readably so successive runs can be compared without
re-parsing stdout.  One file per benchmark id, overwritten on each
run — the *trajectory* lives in version control, where each commit
pins the numbers its code produced.

Every record is stamped with the UTC wall-clock time and the git
commit it ran at, and benchmarks that measure request latencies can
attach a mergeable :class:`repro.obs.metrics.Histogram` whose
p50/p90/p99 summary rides along — the same bucket scheme the live
``GetStatus`` metrics use, so a trajectory record and a cluster
scrape speak comparable percentiles.
"""

from __future__ import annotations

import json
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path

#: the repository root (this file lives in <root>/benchmarks/)
ROOT = Path(__file__).resolve().parent.parent

__all__ = ["ROOT", "git_commit", "write_trajectory"]


def git_commit() -> str:
    """The short hash of the checked-out commit, or ``""`` when the
    tree is not a git checkout (tarball runs)."""
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=ROOT,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return ""
    return probe.stdout.strip() if probe.returncode == 0 else ""


def write_trajectory(bench_id: str, metrics: dict, *, ok: bool,
                     bars: dict | None = None,
                     latency=None) -> Path:
    """Write ``BENCH_<bench_id>.json`` at the repo root; return it.

    ``metrics`` holds the measured numbers (timings in ms, exact byte
    counts, ratios), ``bars`` the enforced bounds they were judged
    against, ``ok`` whether every bar held.  ``latency``, when given,
    is a :class:`repro.obs.metrics.Histogram` of per-request seconds
    (or an already-computed summary dict); its count/mean/p50/p90/p99
    summary is recorded under ``"latency"``.
    """
    payload = {
        "bench": bench_id,
        "ok": ok,
        "unix_time": int(time.time()),
        "utc_time": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "commit": git_commit(),
        "metrics": metrics,
    }
    if bars:
        payload["bars"] = bars
    if latency is not None:
        payload["latency"] = (latency.summary()
                              if hasattr(latency, "summary")
                              else dict(latency))
    path = ROOT / f"BENCH_{bench_id}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
    return path
