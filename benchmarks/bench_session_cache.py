"""SC6 — the session cache on repeated-query workloads.

A production peer answers many queries against the same (slowly changing)
data, but the per-peer solutions — the expensive object behind Definition
5 — do not depend on the query.  The legacy pattern (one
:class:`PeerConsistentEngine` per query) recomputes them every time;
:class:`PeerQuerySession` memoizes them per ``(system version, peer,
method)`` and reuses them across the whole workload, including
``answer_many`` batches.

Expected series shape: the first session answer pays the same enumeration
cost as the engine; every further query is answered at FO-evaluation
cost, so the speedup over the per-query baseline grows roughly linearly
with the number of repeated queries.
"""

import warnings

import pytest

from repro.core import PeerConsistentEngine, PeerQuerySession
from repro.relational import parse_query
from repro.workloads import import_star_system

QUERY_TEXTS = [
    "q(X, Y) := R0(X, Y)",
    "q(X) := exists Y R0(X, Y)",
    "q(Y) := exists X R0(X, Y)",
    "q(X) := R0(X, X)",
    "q(X, Y) := R0(X, Y) & R0(X, Y)",
    "q(X, Z) := exists Y (R0(X, Y) & R0(Z, Y))",
]
N_ROUNDS = 3  # each query family is posed this many times


def make_system(n=60):
    return import_star_system(n, n_neighbours=2, conflicts=2, seed=11)


def queries():
    return [parse_query(text) for text in QUERY_TEXTS] * N_ROUNDS


def run_engine_per_query(system):
    """Baseline: the legacy pattern — an engine per query, no reuse."""
    results = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for query in queries():
            engine = PeerConsistentEngine(system, method="asp")
            results.append(
                set(engine.peer_consistent_answers("P0", query).answers))
    return results


def run_session(system):
    """One session: solutions enumerated once, reused for every query."""
    session = PeerQuerySession(system, default_method="asp")
    return [set(r.answers) for r in session.answer_many(
        ("P0", query) for query in queries())]


def test_sc6_session_cached(benchmark):
    system = make_system()
    answers = benchmark(lambda: run_session(system))
    assert answers[0]
    benchmark.extra_info["queries"] = len(queries())


def test_sc6_engine_baseline(benchmark):
    system = make_system()
    answers = benchmark(lambda: run_engine_per_query(system))
    assert answers[0]
    benchmark.extra_info["queries"] = len(queries())


def test_sc6_same_answers():
    system = make_system(30)
    assert run_session(system) == run_engine_per_query(system)


def test_sc6_cache_hits():
    system = make_system(30)
    session = PeerQuerySession(system, default_method="asp")
    session.answer_many(("P0", query) for query in queries())
    info = session.cache_info()
    assert info.misses == 1
    assert info.hits == len(queries()) - 1


def main() -> None:
    import time
    print("SC6 — session cache vs per-query engine, import-star family, "
          f"{len(queries())} repeated queries")
    print(f"  {'n':>5s} {'engine_ms':>10s} {'session_ms':>11s} "
          f"{'speedup':>8s} {'agree':>6s}")
    for n in (30, 60, 120):
        system = make_system(n)
        start = time.perf_counter()
        baseline = run_engine_per_query(system)
        engine_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        cached = run_session(system)
        session_ms = (time.perf_counter() - start) * 1000
        speedup = engine_ms / session_ms if session_ms else float("inf")
        print(f"  {n:5d} {engine_ms:10.1f} {session_ms:11.1f} "
              f"{speedup:8.1f} {str(baseline == cached):>6s}")
    print("  expected: identical answers; the session amortises one "
          "solution\n  enumeration over the whole workload — speedup "
          "grows with the number of\n  repeated queries")


if __name__ == "__main__":
    main()
