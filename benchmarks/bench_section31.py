"""EX3 — Section 3.1: building and solving the GAV choice program.

Measures program construction + grounding + stable-model enumeration for
the referential-DEC specification on the Appendix instances.  Expected
shape: 4 stable models, 3 distinct solutions.
"""

from repro.core import GavSpecification
from repro.workloads import appendix_instance, section31_dec


def build_spec():
    return GavSpecification(appendix_instance(), [section31_dec()],
                            changeable={"R1", "R2"})


def run_build_program():
    return build_spec().program


def run_solve():
    return build_spec().answer_sets()


def run_solutions():
    return build_spec().solutions()


def test_ex3_build_program(benchmark):
    program = benchmark(run_build_program)
    assert len(program) > 0


def test_ex3_answer_sets(benchmark):
    models = benchmark(run_solve)
    assert len(models) == 4


def test_ex3_solutions(benchmark):
    solutions = benchmark(run_solutions)
    assert len(solutions) == 3


def main() -> None:
    import time
    print("EX3 — Section 3.1: GAV choice program on the Appendix data")
    start = time.perf_counter()
    spec = build_spec()
    models = spec.answer_sets()
    solutions = spec.solutions()
    elapsed = time.perf_counter() - start
    print(f"  stable models: {len(models)}   (expected: 4 = M1..M4)")
    print(f"  solutions:     {len(solutions)} (expected: 3 distinct)")
    print(f"  total time:    {elapsed * 1000:.1f} ms")
    for solution in solutions:
        print(f"    {solution}")


if __name__ == "__main__":
    main()
