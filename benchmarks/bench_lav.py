"""EX5 — Appendix: the LAV three-layer program.

Measures building + solving the annotated (td/ta/fa/tss) program.
Expected shape: 4 stable models M1-M4, 3 distinct solutions, identical to
the GAV route's output.
"""

from repro.core import GavSpecification, LavSpecification, SourceLabel
from repro.workloads import appendix_instance, section31_dec

LABELS = {
    "R1": SourceLabel.CLOSED,
    "R2": SourceLabel.OPEN,
    "S1": SourceLabel.CLOPEN,
    "S2": SourceLabel.CLOPEN,
}


def build_lav():
    return LavSpecification(appendix_instance(), [section31_dec()],
                            LABELS)


def run_lav_models():
    return build_lav().answer_sets()


def run_lav_solutions():
    return build_lav().solutions()


def test_ex5_lav_models(benchmark):
    models = benchmark(run_lav_models)
    assert len(models) == 4


def test_ex5_lav_solutions(benchmark):
    solutions = benchmark(run_lav_solutions)
    assert len(solutions) == 3


def test_ex5_lav_equals_gav():
    gav = GavSpecification(appendix_instance(), [section31_dec()],
                           changeable={"R1", "R2"})
    assert build_lav().solutions() == gav.solutions()


def main() -> None:
    import time
    print("EX5 — Appendix: LAV three-layer program (td/ta/fa/tss)")
    start = time.perf_counter()
    spec = build_lav()
    models = spec.answer_sets()
    elapsed = time.perf_counter() - start
    print(f"  stable models: {len(models)} (expected: M1..M4)")
    print(f"  time: {elapsed * 1000:.1f} ms")
    for index, model in enumerate(models, 1):
        tss = sorted(str(l) for l in model
                     if l.positive and l.atom.args
                     and str(l.atom.args[-1]) == "tss")
        print(f"    M{index}: {tss}")


if __name__ == "__main__":
    main()
