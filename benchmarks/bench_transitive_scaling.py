"""SC4 — Section 4.3: cost of the combined program over peer chains.

Sweeps import chains of growing length: the direct semantics stays flat
(P0 only consults its immediate neighbour, importing nothing because
intermediate peers are empty), while the combined program grows linearly
with the chain and propagates the far-end data all the way to the root.

Expected series shape: direct time ~ constant and imports nothing;
combined time grows roughly linearly in the chain length; the root's
relation in every global solution equals the far end's data.
"""

import pytest

from repro.core import global_solutions, solutions_for_peer
from repro.workloads import peer_chain_system

LENGTHS = [2, 3, 4, 5]
N_TUPLES = 3


@pytest.mark.parametrize("length", LENGTHS)
def test_sc4_combined(benchmark, length):
    system = peer_chain_system(length, n_tuples=N_TUPLES)
    solutions = benchmark(lambda: global_solutions(system, "P0"))
    assert len(solutions) == 1
    assert len(solutions[0].tuples("T0")) == N_TUPLES
    benchmark.extra_info["chain_length"] = length


@pytest.mark.parametrize("length", LENGTHS)
def test_sc4_direct(benchmark, length):
    system = peer_chain_system(length, n_tuples=N_TUPLES)
    solutions = benchmark(lambda: solutions_for_peer(system, "P0"))
    assert len(solutions) == 1
    assert solutions[0].tuples("T0") == frozenset()
    benchmark.extra_info["chain_length"] = length


def main() -> None:
    import time
    print(f"SC4 — transitive chains ({N_TUPLES} tuples at the far end)")
    print(f"  {'length':>6s} {'direct_ms':>10s} {'combined_ms':>12s} "
          f"{'T0_direct':>10s} {'T0_global':>10s}")
    for length in LENGTHS:
        system = peer_chain_system(length, n_tuples=N_TUPLES)
        start = time.perf_counter()
        direct = solutions_for_peer(system, "P0")
        direct_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        combined = global_solutions(system, "P0")
        combined_ms = (time.perf_counter() - start) * 1000
        print(f"  {length:6d} {direct_ms:10.1f} {combined_ms:12.1f} "
              f"{len(direct[0].tuples('T0')):10d} "
              f"{len(combined[0].tuples('T0')):10d}")
    print("  expected: direct imports nothing (0 tuples); the combined "
          "program\n  delivers all far-end tuples at every length")


if __name__ == "__main__":
    main()
