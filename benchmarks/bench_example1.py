"""EX1 — Example 1: the two solutions for P1.

Measures the model-theoretic (Definition 4) and ASP (Section 3.1, staged)
routes to the same two solutions.  Expected shape: both routes return
exactly the paper's r' and r''; the model-theoretic route is faster on
this tiny instance (no grounding/solving overhead), while ASP wins once
instances grow (see SC2).
"""

from repro.core import asp_solutions_for_peer, solutions_for_peer
from repro.workloads import example1_system

EXPECTED = sorted([
    tuple(sorted({"R1(a, b)", "R1(s, t)", "R1(c, d)", "R1(a, e)",
                  "R2(c, d)", "R2(a, e)"})),
    tuple(sorted({"R1(a, b)", "R1(c, d)", "R1(a, e)",
                  "R2(c, d)", "R2(a, e)", "R3(s, u)"})),
])


def _rendered(solutions):
    return sorted(tuple(sorted(str(f) for f in s.facts()))
                  for s in solutions)


def run_model_theoretic():
    return solutions_for_peer(example1_system(), "P1")


def run_asp():
    return asp_solutions_for_peer(example1_system(), "P1")


def test_ex1_model_theoretic(benchmark):
    solutions = benchmark(run_model_theoretic)
    assert _rendered(solutions) == EXPECTED
    benchmark.extra_info["solutions"] = len(solutions)


def test_ex1_asp(benchmark):
    solutions = benchmark(run_asp)
    assert _rendered(solutions) == EXPECTED
    benchmark.extra_info["solutions"] = len(solutions)


def main() -> None:
    import time
    print("EX1 — Example 1: solutions for P1")
    for label, fn in (("model-theoretic", run_model_theoretic),
                      ("asp (staged)", run_asp)):
        start = time.perf_counter()
        solutions = fn()
        elapsed = time.perf_counter() - start
        print(f"  {label:18s}: {len(solutions)} solutions "
              f"in {elapsed * 1000:.1f} ms")
        for solution in solutions:
            print(f"     {solution}")
    print("  expected (paper): 2 solutions — r' and r''")


if __name__ == "__main__":
    main()
