"""SC2 — FO rewriting vs ASP as instances grow.

The paper proposes FO rewriting as the light-weight mechanism (Section 2)
and ASP as the general one (Section 3).  This sweep runs both on the
import-star family (one peer importing from two more-trusted neighbours,
plus two equal-trust conflicts) at growing instance sizes.

Expected series shape: both methods return identical PCAs everywhere; the
rewriting's cost stays near-linear in the instance size, while the ASP
route pays grounding + enumeration and falls behind as n grows — rewriting
wins, by a factor that grows with n.
"""

import pytest

from repro.core import answers_via_rewriting, asp_peer_consistent_answers
from repro.relational import parse_query
from repro.workloads import import_star_system

QUERY_TEXT = "q(X, Y) := R0(X, Y)"
SIZES = [20, 60, 180]


def make_system(n):
    return import_star_system(n, n_neighbours=2, conflicts=2, seed=11)


@pytest.mark.parametrize("n", SIZES)
def test_sc2_rewriting(benchmark, n):
    system = make_system(n)
    query = parse_query(QUERY_TEXT)
    answers = benchmark(lambda: answers_via_rewriting(system, "P0",
                                                      query))
    assert answers  # the imports guarantee certified tuples
    benchmark.extra_info["n_tuples"] = n
    benchmark.extra_info["answers"] = len(answers)


@pytest.mark.parametrize("n", SIZES)
def test_sc2_asp(benchmark, n):
    system = make_system(n)
    query = parse_query(QUERY_TEXT)
    result = benchmark(lambda: asp_peer_consistent_answers(system, "P0",
                                                           query))
    assert result.answers
    benchmark.extra_info["n_tuples"] = n


@pytest.mark.parametrize("n", [20, 60])
def test_sc2_methods_agree(n):
    system = make_system(n)
    query = parse_query(QUERY_TEXT)
    rewriting = answers_via_rewriting(system, "P0", query)
    asp = set(asp_peer_consistent_answers(system, "P0", query).answers)
    assert rewriting == asp


def main() -> None:
    import time
    print("SC2 — FO rewriting vs ASP, import-star family")
    print(f"  {'n':>5s} {'rewrite_ms':>11s} {'asp_ms':>9s} "
          f"{'ratio':>6s} {'agree':>6s}")
    for n in SIZES:
        query = parse_query(QUERY_TEXT)
        system = make_system(n)
        start = time.perf_counter()
        rewriting = answers_via_rewriting(system, "P0", query)
        rewrite_ms = (time.perf_counter() - start) * 1000
        system = make_system(n)
        start = time.perf_counter()
        asp = set(asp_peer_consistent_answers(system, "P0",
                                              query).answers)
        asp_ms = (time.perf_counter() - start) * 1000
        ratio = asp_ms / rewrite_ms if rewrite_ms else float("inf")
        print(f"  {n:5d} {rewrite_ms:11.1f} {asp_ms:9.1f} "
              f"{ratio:6.1f} {str(rewriting == asp):>6s}")
    print("  expected: identical answers; rewriting wins, gap grows "
          "with n")


if __name__ == "__main__":
    main()
