"""EP — the indexed evaluation planner vs the naive FO evaluator.

Every mechanism in the reproduction bottoms out in FO evaluation, and
the naive evaluator's ``product(domain, repeat=k)`` fallback plus full
relation scans make it quadratic-and-worse in instance size and
exponential in unbound-variable count.  The planner
(:mod:`repro.relational.planner`) replaces that with selectivity-ordered
index joins; this benchmark measures the gap along both axes the ISSUE
names:

* **instance-size scaling** — a fixed join query
  ``q(X, Z) := ∃Y (R(X, Y) ∧ S(Y, Z))`` over growing random instances;
* **free-variable-count scaling** — path queries
  ``q(X0..Xk) := R(X0,X1) ∧ ... ∧ R(Xk-1,Xk)`` with every variable free,
  plus a guarded-∀ query in the shape the Example-2 rewriting produces.

Expected series shape: the naive evaluator grows ~quadratically on the
join (scan per candidate) while the planner stays near-linear in the
output, so the speedup widens with n; at the largest scaling point the
planner must be ≥5x faster (checked when run as a script, as CI does).
"""

import random
import time

import pytest

from repro.relational import (
    And,
    DatabaseInstance,
    DatabaseSchema,
    Exists,
    Forall,
    Implies,
    Query,
    RelAtom,
    Variable,
)

SCHEMA = DatabaseSchema.of({"R": 2, "S": 2})
X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")

#: instance-size axis (largest point carries the ≥5x acceptance bar)
SIZES = (100, 200, 400)
#: free-variable axis (path length = number of free variables)
FREE_VARS = (1, 2, 3)
PATH_INSTANCE_SIZE = 150


def make_instance(n: int, seed: int = 7) -> DatabaseInstance:
    """Random instance with n tuples per relation over ~n/2 values —
    dense enough for joins to produce work, sparse enough that output
    size stays manageable."""
    rng = random.Random(seed)
    values = [f"v{i}" for i in range(max(4, n // 2))]
    return DatabaseInstance(SCHEMA, {
        "R": {(rng.choice(values), rng.choice(values)) for _ in range(n)},
        "S": {(rng.choice(values), rng.choice(values)) for _ in range(n)},
    })


def join_query() -> Query:
    return Query("q", [X, Z],
                 Exists([Y], And(RelAtom("R", [X, Y]),
                                 RelAtom("S", [Y, Z]))))


def path_query(k: int) -> Query:
    """k-hop path with every variable free: answer arity k + 1."""
    variables = [Variable(f"X{i}") for i in range(k + 1)]
    atoms = [RelAtom("R", [variables[i], variables[i + 1]])
             for i in range(k)]
    formula = atoms[0] if len(atoms) == 1 else And(*atoms)
    return Query("q", variables, formula)


def guarded_query() -> Query:
    """The Example-2 rewriting shape: a guarded universal over a join."""
    return Query("q", [X, Y],
                 And(RelAtom("R", [X, Y]),
                     Forall([Z], Implies(RelAtom("S", [X, Z]),
                                         RelAtom("R", [Z, Y])))))


def run(query: Query, instance: DatabaseInstance,
        evaluator: str) -> set[tuple]:
    return query.answers(instance, evaluator=evaluator)


# ---------------------------------------------------------------------------
# pytest-benchmark harness (pytest benchmarks/ --benchmark-only)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n", SIZES)
def test_ep_join_planner(benchmark, n):
    instance = make_instance(n)
    answers = benchmark(lambda: run(join_query(), instance, "planner"))
    assert answers == run(join_query(), instance, "naive")
    benchmark.extra_info["n"] = n


@pytest.mark.parametrize("n", SIZES[:2])  # naive at 400 is too slow to
def test_ep_join_naive(benchmark, n):     # repeat under the harness
    instance = make_instance(n)
    answers = benchmark(lambda: run(join_query(), instance, "naive"))
    assert answers == run(join_query(), instance, "planner")
    benchmark.extra_info["n"] = n


@pytest.mark.parametrize("k", FREE_VARS)
def test_ep_free_vars_planner(benchmark, k):
    instance = make_instance(PATH_INSTANCE_SIZE)
    answers = benchmark(lambda: run(path_query(k), instance, "planner"))
    assert answers == run(path_query(k), instance, "naive")
    benchmark.extra_info["free_vars"] = k + 1


def test_ep_guarded_forall_agrees():
    instance = make_instance(80)
    assert run(guarded_query(), instance, "planner") == \
        run(guarded_query(), instance, "naive")


# ---------------------------------------------------------------------------
# Script mode (CI smoke step): print the report, enforce the speedup bar
# ---------------------------------------------------------------------------

def _timed(query: Query, instance: DatabaseInstance,
           evaluator: str) -> tuple[float, set[tuple]]:
    start = time.perf_counter()
    answers = run(query, instance, evaluator)
    return (time.perf_counter() - start) * 1000, answers


def main() -> int:
    print("EP — indexed planner vs naive FO evaluator")
    failures = []

    print("\n  instance-size scaling, q(X, Z) := exists Y "
          "(R(X, Y) & S(Y, Z))")
    print(f"  {'n':>6s} {'naive_ms':>10s} {'planner_ms':>11s} "
          f"{'speedup':>8s} {'answers':>8s} {'agree':>6s}")
    join_speedup = 0.0
    for n in SIZES:
        instance = make_instance(n)
        naive_ms, naive_answers = _timed(join_query(), instance, "naive")
        planner_ms, planner_answers = _timed(join_query(), instance,
                                             "planner")
        join_speedup = naive_ms / planner_ms if planner_ms else float("inf")
        agree = naive_answers == planner_answers
        if not agree:
            failures.append(f"join n={n}: evaluators disagree")
        print(f"  {n:6d} {naive_ms:10.1f} {planner_ms:11.1f} "
              f"{join_speedup:8.1f} {len(planner_answers):8d} "
              f"{str(agree):>6s}")

    print(f"\n  free-variable scaling, k-hop paths over "
          f"n={PATH_INSTANCE_SIZE}")
    print(f"  {'vars':>6s} {'naive_ms':>10s} {'planner_ms':>11s} "
          f"{'speedup':>8s} {'answers':>8s} {'agree':>6s}")
    instance = make_instance(PATH_INSTANCE_SIZE)
    for k in FREE_VARS:
        naive_ms, naive_answers = _timed(path_query(k), instance, "naive")
        planner_ms, planner_answers = _timed(path_query(k), instance,
                                             "planner")
        speedup = naive_ms / planner_ms if planner_ms else float("inf")
        agree = naive_answers == planner_answers
        if not agree:
            failures.append(f"path k={k}: evaluators disagree")
        print(f"  {k + 1:6d} {naive_ms:10.1f} {planner_ms:11.1f} "
              f"{speedup:8.1f} {len(planner_answers):8d} "
              f"{str(agree):>6s}")

    print("\n  guarded universal (Example-2 rewriting shape), n=80")
    instance = make_instance(80)
    naive_ms, naive_answers = _timed(guarded_query(), instance, "naive")
    planner_ms, planner_answers = _timed(guarded_query(), instance,
                                         "planner")
    agree = naive_answers == planner_answers
    if not agree:
        failures.append("guarded forall: evaluators disagree")
    print(f"  naive {naive_ms:.1f} ms, planner {planner_ms:.1f} ms, "
          f"speedup {naive_ms / max(planner_ms, 1e-9):.1f}x, "
          f"agree {agree}")

    if join_speedup < 5.0:
        failures.append(
            f"largest join point speedup {join_speedup:.1f}x < 5x")
    if failures:
        print("\n  FAILED: " + "; ".join(failures))
        return 1
    print("\n  expected: identical answers everywhere; speedup widens "
          "with n\n  (naive rescans per candidate, the planner probes "
          "hash buckets) and is\n  >=5x at the largest join point")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
