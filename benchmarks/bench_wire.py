"""WC1 — the wire runtime: socket overhead and cross-process delta sync.

Two questions a cross-process runtime must answer with numbers:

* **what does the wire cost?** — the same star workload answered over
  the in-process loopback transport and over real TCP sockets
  (in-process servers, so the comparison isolates serialization +
  socket cost from process startup).  Script mode enforces a sane
  overhead bound: the socket run must stay within
  ``MAX_WIRE_FACTOR``× the loopback run (or ``MAX_WIRE_ABS_MS`` ms,
  whichever is larger — tiny baselines make factors noisy), and the
  answers must be tuple-for-tuple identical.

* **does a restarted cluster re-sync by delta?** — a durable
  (``data_dir``) cluster of real OS processes is started, answered,
  stopped gracefully, and restarted against an updated system (one
  inserted row).  The restarted gather names the content versions it
  already holds, so providers answer with versioned deltas; script
  mode enforces that the re-sync moves at most ``MAX_DELTA_FRACTION``
  of the bytes a cache-less full re-gather pays — measured in *exact*
  wire bytes, because every frame really crossed a socket — and that
  the re-answers match the local session on the updated system.
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro.core import PeerQuerySession
from repro.net import NetworkSession
from repro.relational.instance import Fact
from repro.wire import (
    PeerServer,
    RemoteNetworkSession,
    free_port,
    open_wire_session,
)
from repro.workloads import topology_system

QUERY = "q(X, Y) := R0(X, Y)"
N_PEERS = 5
N_TUPLES = 30
SEED = 11

#: socket cold answer must stay within this factor of loopback...
MAX_WIRE_FACTOR = 50.0
#: ...or this absolute time, whichever bound is larger
MAX_WIRE_ABS_MS = 2000.0
#: delta re-sync traffic vs a full re-gather (exact wire bytes)
MAX_DELTA_FRACTION = 0.5


def make_system(n_peers=N_PEERS, n_tuples=N_TUPLES, extra_facts=()):
    system = topology_system(n_peers, topology="star",
                             n_tuples=n_tuples, seed=SEED)
    if extra_facts:
        system = system.with_global_instance(
            system.global_instance().with_facts(extra_facts))
    return system


def answer_loopback(system):
    session = NetworkSession(system)
    try:
        start = time.perf_counter()
        result = session.answer("P0", QUERY)
        elapsed = (time.perf_counter() - start) * 1000
        assert result.ok, result.error
        return result, elapsed
    finally:
        session.close()


def answer_socket_in_process(system):
    """The same cold answer with every message crossing localhost TCP
    (servers on threads: no process startup in the measurement)."""
    addresses = {name: f"127.0.0.1:{free_port()}"
                 for name in system.peers}
    servers = [PeerServer(system, name,
                          port=int(addresses[name].rsplit(":", 1)[1]),
                          addresses=addresses).start()
               for name in system.peers]
    session = RemoteNetworkSession(addresses)
    try:
        start = time.perf_counter()
        result = session.answer("P0", QUERY)
        elapsed = (time.perf_counter() - start) * 1000
        assert result.ok, result.error
        return result, elapsed
    finally:
        session.close()
        for server in servers:
            server.shutdown()


# ---------------------------------------------------------------------------
# pytest harness (small instances; the enforced bars live in script mode)
# ---------------------------------------------------------------------------

def test_wc1_socket_answers_match_loopback():
    system = make_system(n_peers=4, n_tuples=6)
    loopback, _ = answer_loopback(system)
    socketed, _ = answer_socket_in_process(system)
    assert socketed.answers == loopback.answers
    assert socketed.solution_count == loopback.solution_count
    assert socketed.method_used == loopback.method_used


def test_wc1_restarted_cluster_syncs_by_delta(tmp_path):
    base = make_system(n_peers=4, n_tuples=12)
    updated = make_system(
        n_peers=4, n_tuples=12,
        extra_facts=[Fact("R1", ("k0", "freshly-synced"))])
    with open_wire_session(base, data_dir=tmp_path) as session:
        cold = session.answer("P0", QUERY)
        assert cold.ok
    with open_wire_session(updated, data_dir=tmp_path) as session:
        warm = session.answer("P0", QUERY)
        assert warm.ok
    with open_wire_session(updated) as session:
        full = session.answer("P0", QUERY)
        assert full.ok
    assert warm.answers == \
        PeerQuerySession(updated).answer("P0", QUERY).answers
    assert warm.exchange.bytes_estimate < full.exchange.bytes_estimate


# ---------------------------------------------------------------------------
# Script mode (CI smoke step): print the report, enforce the bars
# ---------------------------------------------------------------------------

def main() -> int:
    failures = []
    system = make_system()
    print(f"WC1 — wire runtime: {N_PEERS}-peer star, "
          f"{N_TUPLES} tuples/peer")

    # -- loopback vs socket -------------------------------------------------
    loopback, loopback_ms = answer_loopback(system)
    socketed, socket_ms = answer_socket_in_process(system)
    factor = socket_ms / loopback_ms if loopback_ms else float("inf")
    print(f"  loopback cold: {loopback_ms:8.1f} ms  "
          f"{loopback.exchange.requests} requests, "
          f"~{loopback.exchange.bytes_estimate} B (estimated)")
    print(f"  socket   cold: {socket_ms:8.1f} ms  "
          f"{socketed.exchange.requests} requests, "
          f"{socketed.exchange.bytes_estimate} B (exact wire bytes)  "
          f"[{factor:.1f}x loopback]")
    if (socketed.answers, socketed.solution_count,
            socketed.method_used) != (loopback.answers,
                                      loopback.solution_count,
                                      loopback.method_used):
        failures.append("socket answers differ from loopback answers")
    bound_ms = max(MAX_WIRE_ABS_MS, MAX_WIRE_FACTOR * loopback_ms)
    if socket_ms > bound_ms:
        failures.append(
            f"socket run took {socket_ms:.1f} ms (bound: "
            f"{bound_ms:.1f} ms = max({MAX_WIRE_ABS_MS} ms, "
            f"{MAX_WIRE_FACTOR}x loopback))")

    # -- cross-process restart + delta sync ---------------------------------
    data_dir = Path(tempfile.mkdtemp(prefix="wc1-"))
    try:
        updated = make_system(
            extra_facts=[Fact("R1", ("k0", "freshly-synced"))])
        start = time.perf_counter()
        with open_wire_session(system, data_dir=data_dir) as session:
            startup_ms = (time.perf_counter() - start) * 1000
            cold = session.answer("P0", QUERY)
        if not cold.ok:
            failures.append(f"cold cluster answer failed: {cold.error}")
        print(f"  cluster start: {startup_ms:8.1f} ms  "
              f"({N_PEERS} OS processes)")

        with open_wire_session(updated, data_dir=data_dir) as session:
            warm = session.answer("P0", QUERY)
        with open_wire_session(updated) as session:
            full = session.answer("P0", QUERY)
        if not warm.ok or not full.ok:
            failures.append("restarted/full cluster answer failed")
        delta_bytes = warm.exchange.bytes_estimate
        full_bytes = full.exchange.bytes_estimate
        fraction = delta_bytes / full_bytes if full_bytes else 1.0
        print(f"  delta re-sync: {delta_bytes:8d} B vs {full_bytes} B "
              f"full re-gather ({fraction:.1%}, exact wire bytes)")
        local = PeerQuerySession(updated).answer("P0", QUERY)
        if (warm.answers, warm.solution_count, warm.method_used) != \
                (local.answers, local.solution_count,
                 local.method_used):
            failures.append("restarted cluster answers differ from the "
                            "local session on the updated system")
        if fraction > MAX_DELTA_FRACTION:
            failures.append(
                f"delta re-sync shipped {fraction:.1%} of the full "
                f"re-gather bytes (bar: {MAX_DELTA_FRACTION:.0%})")
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

    from trajectory import write_trajectory
    write_trajectory(
        "WC1",
        {
            "loopback_ms": round(loopback_ms, 1),
            "socket_ms": round(socket_ms, 1),
            "wire_factor": round(factor, 1),
            "socket_bytes": socketed.exchange.bytes_estimate,
            "cluster_start_ms": round(startup_ms, 1),
            "delta_bytes": delta_bytes,
            "full_bytes": full_bytes,
            "delta_fraction": round(fraction, 4),
        },
        ok=not failures,
        bars={
            "max_wire_factor": MAX_WIRE_FACTOR,
            "max_wire_abs_ms": MAX_WIRE_ABS_MS,
            "max_delta_fraction": MAX_DELTA_FRACTION,
        },
    )

    if failures:
        print("\n  FAILED: " + "; ".join(failures))
        return 1
    print("\n  expected: socket answers identical to loopback at a "
          "bounded serialization\n  overhead; after a graceful stop, "
          "an edit, and a restart, every fetch names\n  the version "
          "it already holds and providers reply with versioned "
          "deltas, so\n  the re-sync ships a fraction of the full "
          "re-gather's (exact) wire bytes")
    return 0


if __name__ == "__main__":
    import sys
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    raise SystemExit(main())
