"""WC2 — wire concurrency: hundreds of client sessions on one event loop.

The serving model moved from a thread per connection to a
:mod:`selectors` event loop with a bounded worker pool, so the claims
that need numbers are:

* **does one small cluster hold hundreds of concurrent sessions?** —
  ``N_SESSIONS`` client sessions (each its own
  :class:`~repro.wire.session.RemoteNetworkSession` over its own TCP
  connection) hammer a 3-peer cluster for ``DURATION_S`` seconds.
  Script mode enforces a sustained-QPS floor and a p99 latency
  ceiling, and every single answer must be ``ok`` — no resets, no
  hangs, no shed queries leaking through the session's retries.

* **does overload shed typed and fast?** — a deliberately tiny server
  (``workers=1``, ``pending_limit=4``, slowed handler) takes a burst
  far above its queue.  Every rejected request must surface as the
  retryable :class:`~repro.net.errors.ServerOverloaded` (the wire's
  ``code="overloaded"`` Failure) — never a reset or a hang — and a
  retries-enabled session over the same saturated server must absorb
  the sheds into plain latency.

The cluster runs in-process (servers on threads, real TCP sockets,
same as WC1): the point is the serving path, not process startup, and
the CI box has one core — the enforced bars are deliberately
conservative; the trajectory file carries the real numbers.
"""

import threading
import time

from repro.net import ServerOverloaded
from repro.obs import Histogram
from repro.net.protocol import Answer, FetchRelation
from repro.wire import (
    PeerServer,
    RemoteNetworkSession,
    SocketTransport,
    free_port,
)
from repro.workloads import topology_system

QUERY = "q(X, Y) := R0(X, Y)"
N_PEERS = 3
N_TUPLES = 12
SEED = 23

#: concurrent client sessions held against the cluster (the
#: acceptance floor is 200; a margin on top guards the claim)
N_SESSIONS = 240
#: measured window of sustained load
DURATION_S = 4.0

#: sustained throughput floor across the whole cluster (1-core CI:
#: 240 GIL-sharing client threads *and* 3 servers on the same box)
MIN_QPS = 30.0
#: p99 end-to-end latency ceiling under that load
MAX_P99_MS = 5000.0

#: overload drill: burst size against workers=1 / pending_limit=4
OVERLOAD_BURST = 48
OVERLOAD_HANDLE_S = 0.05


def query_for(peer):
    """Each topology peer ``Pi`` owns relation ``Ri``."""
    return f"q(X, Y) := R{peer[1:]}(X, Y)"


def make_cluster(**server_kwargs):
    system = topology_system(N_PEERS, topology="star",
                             n_tuples=N_TUPLES, seed=SEED)
    addresses = {name: f"127.0.0.1:{free_port()}"
                 for name in system.peers}
    servers = [PeerServer(system, name,
                          port=int(addresses[name].rsplit(":", 1)[1]),
                          addresses=addresses, **server_kwargs).start()
               for name in sorted(system.peers)]
    return system, addresses, servers


# ---------------------------------------------------------------------------
# Sustained concurrent sessions
# ---------------------------------------------------------------------------

def run_concurrent_sessions(addresses, *, n_sessions, duration_s,
                            warm_first=True, probe=None):
    """``n_sessions`` threads, each with its own session pinned to one
    peer round-robin, answering in a closed loop for ``duration_s``.

    Returns ``(latencies_ms, errors, wall_s, probed)``;
    ``latencies_ms`` has one entry per completed *ok* answer and
    ``probed`` is ``probe()`` sampled mid-window (``None`` without a
    probe).
    """
    peers = sorted(addresses)
    if warm_first:
        with RemoteNetworkSession(addresses) as warm:
            for peer in peers:
                result = warm.answer(peer, query_for(peer))
                assert result.ok, result.error
    latencies = []
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_sessions + 1)
    stop = threading.Event()

    def run_one(index):
        peer = peers[index % len(peers)]
        query = query_for(peer)
        session = RemoteNetworkSession(
            {peer: addresses[peer]}, retries=4, request_timeout=30.0)
        mine = []
        try:
            barrier.wait(timeout=60)
            while not stop.is_set():
                start = time.perf_counter()
                result = session.answer(peer, query)
                elapsed_ms = (time.perf_counter() - start) * 1000
                if result.ok:
                    mine.append(elapsed_ms)
                else:
                    with lock:
                        errors.append(result.error)
                    return
        except Exception as exc:  # noqa: BLE001 - a bench failure
            with lock:
                errors.append(exc)
        finally:
            session.close()
            with lock:
                latencies.extend(mine)

    threads = [threading.Thread(target=run_one, args=(index,),
                                daemon=True)
               for index in range(n_sessions)]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    wall_start = time.perf_counter()
    time.sleep(duration_s / 2)
    probed = probe() if probe is not None else None
    time.sleep(duration_s / 2)
    stop.set()
    for thread in threads:
        thread.join(timeout=60)
    wall_s = time.perf_counter() - wall_start
    return latencies, errors, wall_s, probed


# ---------------------------------------------------------------------------
# Overload drill
# ---------------------------------------------------------------------------

def run_overload_drill():
    """Burst far past one server's admission queue; classify every
    outcome.  Returns ``(served, shed, other_errors, burst_s,
    absorbed_ok)``.

    The full 3-peer cluster runs (the query gather needs the
    neighbours), but only ``P0`` is saturated: one worker, a 4-deep
    admission queue, and a deliberately slowed handler.  The absorbed
    check runs a retries-enabled session *concurrently with the
    burst*, so its retries really do race live sheds.
    """
    system = topology_system(N_PEERS, topology="star",
                             n_tuples=N_TUPLES, seed=SEED)
    addresses = {name: f"127.0.0.1:{free_port()}"
                 for name in system.peers}
    servers = []
    for name in sorted(system.peers):
        kwargs = ({"workers": 1, "pending_limit": 4}
                  if name == "P0" else {})
        servers.append(PeerServer(
            system, name,
            port=int(addresses[name].rsplit(":", 1)[1]),
            addresses=addresses, **kwargs).start())
    target = servers[0]  # P0, sorted first
    inner = target.node.handle

    def slow(message):
        time.sleep(OVERLOAD_HANDLE_S)
        return inner(message)

    target.node.handle = slow
    transport = SocketTransport(
        {"P0": addresses["P0"]}, local_name="wc2", timeout=60.0)
    outcomes = []
    lock = threading.Lock()
    barrier = threading.Barrier(OVERLOAD_BURST + 1)

    def fire():
        try:
            barrier.wait(timeout=60)
            reply = transport.request(FetchRelation(
                sender="wc2", target="P0", relation="R0"))
            with lock:
                outcomes.append(reply)
        except Exception as exc:  # noqa: BLE001 - classified below
            with lock:
                outcomes.append(exc)

    absorbed = []
    session = RemoteNetworkSession(
        {"P0": addresses["P0"]}, retries=30, request_timeout=60.0)

    def answer_through_the_storm():
        barrier.wait(timeout=60)
        absorbed.append(session.answer("P0", QUERY))

    threads = [threading.Thread(target=fire, daemon=True)
               for _ in range(OVERLOAD_BURST)]
    threads.append(threading.Thread(target=answer_through_the_storm,
                                    daemon=True))
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    burst_s = time.perf_counter() - start
    hung = sum(thread.is_alive() for thread in threads)
    served = sum(isinstance(o, Answer) for o in outcomes)
    shed = sum(isinstance(o, ServerOverloaded) for o in outcomes)
    other = [o for o in outcomes
             if not isinstance(o, (Answer, ServerOverloaded))]
    if hung:
        other.append(f"{hung} request thread(s) hung")
    session.close()
    transport.close()
    for server in servers:
        server.shutdown()
    absorbed_ok = bool(absorbed) and absorbed[0].ok
    return served, shed, other, burst_s, absorbed_ok


# ---------------------------------------------------------------------------
# pytest harness (scaled down; the enforced bars live in script mode)
# ---------------------------------------------------------------------------

def test_wc2_concurrent_sessions_all_ok():
    _system, addresses, servers = make_cluster()
    try:
        latencies, errors, wall_s, _ = run_concurrent_sessions(
            addresses, n_sessions=24, duration_s=0.8)
        assert not errors, errors[:3]
        assert latencies
        assert len(latencies) / wall_s > 0
    finally:
        for server in servers:
            server.shutdown()


def test_wc2_overload_sheds_typed():
    served, shed, other, _burst_s, absorbed_ok = run_overload_drill()
    assert not other, other[:3]
    assert served > 0
    assert shed > 0
    assert absorbed_ok


# ---------------------------------------------------------------------------
# Script mode (CI smoke step): print the report, enforce the bars
# ---------------------------------------------------------------------------

def main() -> int:
    failures = []
    print(f"WC2 — wire concurrency: {N_SESSIONS} sessions, "
          f"{N_PEERS}-peer cluster, {DURATION_S:.0f}s sustained")

    _system, addresses, servers = make_cluster()
    try:
        latencies, errors, wall_s, peak_connections = \
            run_concurrent_sessions(
                addresses, n_sessions=N_SESSIONS,
                duration_s=DURATION_S,
                probe=lambda: sum(server.connection_count()
                                  for server in servers))
    finally:
        for server in servers:
            server.shutdown()
    qps = len(latencies) / wall_s if wall_s else 0.0
    # the shared mergeable histogram (same buckets the live GetStatus
    # metrics use) — latencies arrive in ms, the buckets are seconds
    hist = Histogram()
    for latency_ms in latencies:
        hist.observe(latency_ms / 1000.0)
    summary = hist.summary()
    p50 = summary["p50"] * 1000.0 if latencies else float("inf")
    p99 = summary["p99"] * 1000.0 if latencies else float("inf")
    print(f"  sustained    : {len(latencies)} answers in {wall_s:.1f}s "
          f"= {qps:7.1f} q/s across {N_SESSIONS} sessions")
    print(f"  latency      : p50 {p50:7.1f} ms   p99 {p99:7.1f} ms")
    print(f"  connections  : {peak_connections} live server-side "
          f"mid-window")
    if errors:
        failures.append(
            f"{len(errors)} session(s) failed; first: {errors[0]}")
    if qps < MIN_QPS:
        failures.append(
            f"sustained {qps:.1f} q/s (floor: {MIN_QPS} q/s)")
    if p99 > MAX_P99_MS:
        failures.append(
            f"p99 {p99:.1f} ms (ceiling: {MAX_P99_MS} ms)")

    served, shed, other, burst_s, absorbed_ok = run_overload_drill()
    print(f"  overload     : burst {OVERLOAD_BURST} vs "
          f"workers=1/pending_limit=4 → {served} served, "
          f"{shed} shed typed in {burst_s:.1f}s")
    print(f"  under retries: saturated-server answer "
          f"{'ok' if absorbed_ok else 'FAILED'}")
    if other:
        failures.append(
            f"overload produced {len(other)} non-typed outcome(s); "
            f"first: {other[0]}")
    if shed == 0:
        failures.append("overload burst was never shed: admission "
                        "control did not engage")
    if served == 0:
        failures.append("overload burst starved admitted requests")
    if not absorbed_ok:
        failures.append("session retries did not absorb the sheds")

    from trajectory import write_trajectory
    write_trajectory(
        "WC2",
        {
            "sessions": N_SESSIONS,
            "duration_s": round(wall_s, 2),
            "answers": len(latencies),
            "qps": round(qps, 1),
            "p50_ms": round(p50, 1),
            "p99_ms": round(p99, 1),
            "peak_connections": peak_connections,
            "overload_burst": OVERLOAD_BURST,
            "overload_served": served,
            "overload_shed": shed,
            "overload_burst_s": round(burst_s, 2),
        },
        ok=not failures,
        bars={
            "min_sessions": 200,
            "min_qps": MIN_QPS,
            "max_p99_ms": MAX_P99_MS,
        },
        latency=hist,
    )

    if failures:
        print("\n  FAILED: " + "; ".join(failures))
        return 1
    print("\n  expected: one event loop per server holds hundreds of "
          "concurrent sessions\n  at a sustained rate with bounded "
          "tails; past the admission queue the server\n  sheds typed "
          "retryable failures instead of hanging or resetting, and "
          "the\n  session's retry budget turns saturation into "
          "latency")
    return 0


if __name__ == "__main__":
    import sys
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    raise SystemExit(main())
