"""Differential harness: indexed planner ≡ naive evaluator.

The evaluation planner (:mod:`repro.relational.planner`) replaces the
naive active-domain evaluator on every default path, so its semantics
must be *identical* — answers, truth values, and constraint verdicts.
This suite locks that in:

* 240 seeded-random query/instance pairs over the full FO repertoire
  (∧, ∨, ¬, →, ∃, ∀, comparisons), including empty relations, empty
  instances, constants absent from the data, and shadowed quantifiers;
* property tests asserting every constraint class gives identical
  ``holds_in``/``violations`` verdicts under both evaluators;
* the evaluator toggle itself (unknown names rejected, naive reachable).

Determinism: the generators use ``random.Random(seed)`` only, so a
failing seed reproduces exactly.  CI additionally runs this file under a
fixed ``PYTHONHASHSEED`` so set/dict iteration order inside the planner
cannot hide ordering bugs.
"""

import random

import pytest

from repro.datalog.terms import Constant, Variable
from repro.relational import (
    And,
    Cmp,
    DatabaseInstance,
    DatabaseSchema,
    DenialConstraint,
    EqualityGeneratingConstraint,
    Exists,
    Forall,
    FunctionalDependency,
    Implies,
    InclusionDependency,
    KeyConstraint,
    Not,
    Or,
    Query,
    QueryError,
    RelAtom,
    TupleGeneratingConstraint,
    evaluation_domain,
    plan_holds,
)
from repro.relational.query import holds

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
VARS = (X, Y, Z)
VALUES = ("a", "b", "c")
#: "zz" never occurs in generated instances: exercises constants outside
#: the active domain (they still join the evaluation domain).
CONSTANTS = VALUES + ("zz",)
SCHEMA = DatabaseSchema.of({"R": 2, "S": 1, "T": 2})


def random_instance(rng: random.Random) -> DatabaseInstance:
    """Small random instance; empty relations (and the empty instance)
    come up regularly."""
    def rows(arity: int, most: int) -> set:
        count = rng.randrange(most + 1)
        return {tuple(rng.choice(VALUES) for _ in range(arity))
                for _ in range(count)}
    return DatabaseInstance(SCHEMA, {"R": rows(2, 6), "S": rows(1, 3),
                                     "T": rows(2, 4)})


def random_formula(rng: random.Random, depth: int, free: tuple):
    """Random FO formula with free variables ⊆ ``free``."""
    if depth == 0 or rng.random() < 0.3:
        def term():
            pool = list(free) + [Constant(v) for v in CONSTANTS]
            return rng.choice(pool)
        kind = rng.randrange(4)
        if kind == 0:
            return RelAtom("R", [term(), term()])
        if kind == 1:
            return RelAtom("S", [term()])
        if kind == 2:
            return RelAtom("T", [term(), term()])
        return Cmp(rng.choice(["=", "!=", "<", "<="]), term(), term())
    kind = rng.randrange(6)
    if kind == 0:
        return And(random_formula(rng, depth - 1, free),
                   random_formula(rng, depth - 1, free))
    if kind == 1:
        return Or(random_formula(rng, depth - 1, free),
                  random_formula(rng, depth - 1, free))
    if kind == 2:
        return Not(random_formula(rng, depth - 1, free))
    if kind == 3:
        return Implies(random_formula(rng, depth - 1, free),
                       random_formula(rng, depth - 1, free))
    quantifier = Exists if kind == 4 else Forall
    variable = rng.choice(VARS)  # may shadow an outer quantifier
    body = random_formula(rng, depth - 1,
                          tuple(set(free) | {variable}))
    return quantifier([variable], body)


# ---------------------------------------------------------------------------
# The 240-pair differential sweep (acceptance: ≥200 randomized pairs)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(240))
def test_planner_matches_naive_on_random_pair(seed):
    rng = random.Random(seed)
    instance = random_instance(rng)
    free = tuple(rng.sample(VARS, rng.randrange(3)))
    formula = random_formula(rng, rng.randrange(1, 4), free)
    head = sorted(formula.free_variables(), key=lambda v: v.name)
    query = Query("q", head, formula)
    fast = query.answers(instance, evaluator="planner")
    slow = query.answers(instance, evaluator="naive")
    assert fast == slow, (
        f"seed {seed}: planner {sorted(fast)} != naive {sorted(slow)} "
        f"for {query} over {instance}")


@pytest.mark.parametrize("seed", range(60))
def test_planner_holds_matches_naive_closed(seed):
    """Boolean (closed-formula) truth agrees, via ``plan_holds``."""
    rng = random.Random(1000 + seed)
    instance = random_instance(rng)
    formula = random_formula(rng, rng.randrange(1, 4), ())
    remaining = sorted(formula.free_variables(), key=lambda v: v.name)
    if remaining:
        formula = Exists(remaining, formula)
    domain = evaluation_domain(instance, formula)
    assert plan_holds(formula, instance, {}, domain) == \
        holds(formula, instance, {}, domain)


# ---------------------------------------------------------------------------
# Edge cases the randomized sweep may not pin reliably
# ---------------------------------------------------------------------------

def test_empty_domain_exists_false_under_both():
    """∃Y φ over an empty active domain is false even when φ ignores Y,
    under the planner exactly as under the naive evaluator."""
    instance = DatabaseInstance(SCHEMA, {})
    formula = Exists([Y], Exists([Y], Forall([Y], RelAtom("R", [Y, Y]))))
    query = Query("q", [], formula)
    assert query.is_true(instance, evaluator="planner") is False
    assert query.is_true(instance, evaluator="naive") is False


def test_shadowed_quantifier_inner_wins_under_both():
    """∃X (S(X) ∧ ∃X R(X, X)): the inner X must not leak the outer
    binding."""
    instance = DatabaseInstance(
        SCHEMA, {"S": [("a",)], "R": [("b", "b")]})
    formula = Exists([X], And(RelAtom("S", [X]),
                              Exists([X], RelAtom("R", [X, X]))))
    query = Query("q", [], formula)
    assert query.is_true(instance, evaluator="planner") is True
    assert query.is_true(instance, evaluator="naive") is True


def test_forall_shadowing_under_both():
    """∀X inside a query already binding X ranges over the domain, not
    the outer value."""
    instance = DatabaseInstance(
        SCHEMA, {"S": [("a",), ("b",)], "R": [("a", "a")]})
    formula = And(RelAtom("S", [X]),
                  Forall([X], Implies(RelAtom("R", [X, X]),
                                      RelAtom("S", [X]))))
    query = Query("q", [X], formula)
    assert query.answers(instance, evaluator="planner") == \
        query.answers(instance, evaluator="naive") == {("a",), ("b",)}


def test_or_branch_binding_fewer_variables_completes_over_domain():
    """A disjunct ignoring an answer variable leaves it ranging over the
    whole evaluation domain (active-domain semantics), identically under
    both evaluators."""
    instance = DatabaseInstance(
        SCHEMA, {"S": [("a",)], "R": [("b", "c")]})
    formula = Or(RelAtom("R", [X, Y]), RelAtom("S", [X]))
    query = Query("q", [X, Y], formula)
    fast = query.answers(instance, evaluator="planner")
    slow = query.answers(instance, evaluator="naive")
    assert fast == slow
    assert ("a", "a") in fast and ("a", "c") in fast and ("b", "c") in fast


def test_unknown_evaluator_rejected():
    query = Query("q", [X], RelAtom("S", [X]))
    instance = DatabaseInstance(SCHEMA, {})
    with pytest.raises(QueryError):
        query.answers(instance, evaluator="vectorised")
    with pytest.raises(QueryError):
        Query("q", [], RelAtom("S", ["a"])).is_true(
            instance, evaluator="vectorised")


# ---------------------------------------------------------------------------
# Constraint checking: every IC class, identical verdicts (satellite 2)
# ---------------------------------------------------------------------------

def constraint_zoo():
    """One representative of every constraint class in
    :mod:`repro.relational.constraints`."""
    return [
        TupleGeneratingConstraint(          # full TGD with a condition
            antecedent=[RelAtom("R", [X, Y])],
            consequent=[RelAtom("T", [X, Y])],
            conditions=[Cmp("!=", X, Y)],
            name="tgd_full"),
        TupleGeneratingConstraint(          # existential TGD (rule (9))
            antecedent=[RelAtom("S", [X])],
            consequent=[RelAtom("R", [X, Z])],
            name="tgd_exist"),
        InclusionDependency("T", "R", child_arity=2, parent_arity=2,
                            name="ind_T_in_R"),
        EqualityGeneratingConstraint(       # Σ(P1,P3)-style EGD
            antecedent=[RelAtom("R", [X, Y]), RelAtom("T", [X, Z])],
            equalities=[(Y, Z)],
            name="egd_RT"),
        FunctionalDependency("R", [0], [1], arity=2),
        KeyConstraint("T", [0], arity=2),
        DenialConstraint(
            antecedent=[RelAtom("R", [X, X])],
            name="denial_diag"),
        DenialConstraint(
            antecedent=[RelAtom("R", [X, Y]), RelAtom("S", [Y])],
            conditions=[Cmp("<", X, Y)],
            name="denial_cond"),
    ]


@pytest.mark.parametrize("seed", range(40))
def test_constraint_verdicts_identical_across_evaluators(seed):
    rng = random.Random(2000 + seed)
    instance = random_instance(rng)
    for constraint in constraint_zoo():
        fast = constraint.holds_in(instance, evaluator="planner")
        slow = constraint.holds_in(instance, evaluator="naive")
        assert fast == slow, (
            f"seed {seed}: {constraint.name} verdict differs "
            f"(planner={fast}, naive={slow}) on {instance}")
        assert set(constraint.violations(instance, evaluator="planner")) \
            == set(constraint.violations(instance, evaluator="naive")), (
            f"seed {seed}: {constraint.name} violations differ")


@pytest.mark.parametrize("seed", range(15))
def test_tgd_witness_options_identical_across_evaluators(seed):
    """The repair engine's insertion search sees the same options."""
    rng = random.Random(3000 + seed)
    instance = random_instance(rng)
    tgd = TupleGeneratingConstraint(
        antecedent=[RelAtom("S", [X])],
        consequent=[RelAtom("R", [X, Z]), RelAtom("T", [X, Z])],
        name="tgd_guarded")
    for assignment in ({X: "a"}, {X: "b"}):
        fast = {(tuple(sorted((v.name, value)
                             for v, value in tau.items())), inserts)
                for tau, inserts in tgd.witness_options(
                    instance, assignment, insertable={"R"},
                    evaluator="planner")}
        slow = {(tuple(sorted((v.name, value)
                             for v, value in tau.items())), inserts)
                for tau, inserts in tgd.witness_options(
                    instance, assignment, insertable={"R"},
                    evaluator="naive")}
        assert fast == slow
