"""Unit tests for constraint satisfaction, violations, witness options."""

import pytest

from repro.relational import (
    ConstraintError,
    DatabaseInstance,
    DatabaseSchema,
    DenialConstraint,
    EqualityGeneratingConstraint,
    Fact,
    FunctionalDependency,
    InclusionDependency,
    KeyConstraint,
    RelAtom,
    TupleGeneratingConstraint,
    Cmp,
    Variable,
)

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
SCHEMA = DatabaseSchema.of({"R1": 2, "R2": 2, "R3": 2, "S1": 2, "S2": 2})


def inst(**data):
    return DatabaseInstance(SCHEMA, data)


class TestInclusionDependency:
    def test_full_inclusion_example1(self):
        # Σ(P1,P2): ∀xy (R2(x,y) → R1(x,y))
        ind = InclusionDependency("R2", "R1", child_arity=2, parent_arity=2)
        sat = inst(R1=[("a", "b"), ("c", "d")], R2=[("c", "d")])
        assert ind.holds_in(sat)
        unsat = inst(R1=[("a", "b")], R2=[("c", "d"), ("a", "e")])
        violations = unsat and ind.violations(unsat)
        assert {v.antecedent_facts[0] for v in violations} == {
            Fact("R2", ("c", "d")), Fact("R2", ("a", "e"))}

    def test_projected_inclusion(self):
        # R2[0] ⊆ R1[0]: uncovered R1 column becomes existential
        ind = InclusionDependency("R2", "R1", child_positions=[0],
                                  parent_positions=[0],
                                  child_arity=2, parent_arity=2)
        assert not ind.is_full()
        sat = inst(R1=[("a", "zzz")], R2=[("a", "b")])
        assert ind.holds_in(sat)

    def test_position_length_mismatch(self):
        with pytest.raises(ConstraintError):
            InclusionDependency("R2", "R1", child_positions=[0, 1],
                                parent_positions=[0],
                                child_arity=2, parent_arity=2)

    def test_needs_positions_or_arities(self):
        with pytest.raises(ConstraintError):
            InclusionDependency("R2", "R1")


class TestTGD:
    def make_paper_dec3(self):
        """(3): ∀xyz∃w (R1(x,y) ∧ S1(z,y) → R2(x,w) ∧ S2(z,w))"""
        return TupleGeneratingConstraint(
            antecedent=[RelAtom("R1", [X, Y]), RelAtom("S1", [Z, Y])],
            consequent=[RelAtom("R2", [X, W]), RelAtom("S2", [Z, W])],
            name="dec3")

    def test_satisfied_with_witness(self):
        tgd = self.make_paper_dec3()
        db = inst(R1=[("d", "m")], S1=[("a", "m")],
                  R2=[("d", "t")], S2=[("a", "t")])
        assert tgd.holds_in(db)

    def test_violated_without_witness(self):
        tgd = self.make_paper_dec3()
        db = inst(R1=[("d", "m")], S1=[("a", "m")], R2=[], S2=[("a", "t")])
        violations = tgd.violations(db)
        assert len(violations) == 1
        assert set(violations[0].antecedent_facts) == {
            Fact("R1", ("d", "m")), Fact("S1", ("a", "m"))}

    def test_existential_vars_detected(self):
        tgd = self.make_paper_dec3()
        assert tgd.existential_vars == {W}
        assert tgd.universal_vars == {X, Y, Z}
        assert not tgd.is_full()

    def test_witnesses(self):
        tgd = self.make_paper_dec3()
        db = inst(R1=[("d", "m")], S1=[("a", "m")],
                  R2=[("d", "t"), ("d", "u")], S2=[("a", "t")])
        witnesses = list(tgd.witnesses(db, {X: "d", Y: "m", Z: "a"}))
        assert [{W: "t"}] == witnesses

    def test_witness_options_guided_by_fixed_relation(self):
        # like rule (9): S2 is fixed, R2 insertable; W ranges over S2's
        # matching tuples
        tgd = self.make_paper_dec3()
        db = inst(R1=[("d", "m")], S1=[("a", "m")], R2=[],
                  S2=[("a", "e"), ("a", "f"), ("zz", "g")])
        options = sorted(
            (tau[W], inserts)
            for tau, inserts in tgd.witness_options(
                db, {X: "d", Y: "m", Z: "a"}, insertable={"R2"}))
        assert [o[0] for o in options] == ["e", "f"]
        assert options[0][1] == (Fact("R2", ("d", "e")),)

    def test_witness_options_no_fixed_match_empty(self):
        # no S2 tuple for z=a: deletion is the only repair (rule (6) case)
        tgd = self.make_paper_dec3()
        db = inst(R1=[("d", "m")], S1=[("a", "m")], R2=[],
                  S2=[("zz", "g")])
        options = list(tgd.witness_options(db, {X: "d", Y: "m", Z: "a"},
                                           insertable={"R2"}))
        assert options == []

    def test_witness_options_all_insertable_uses_domain(self):
        tgd = self.make_paper_dec3()
        db = inst(R1=[("d", "m")], S1=[("a", "m")])
        options = list(tgd.witness_options(
            db, {X: "d", Y: "m", Z: "a"}, insertable={"R2", "S2"},
            witness_domain=["w1", "w2"]))
        assert len(options) == 2
        taus = sorted(tau[W] for tau, _ in options)
        assert taus == ["w1", "w2"]
        for tau, inserts in options:
            assert len(inserts) == 2  # both R2 and S2 facts needed

    def test_conditions_on_antecedent(self):
        tgd = TupleGeneratingConstraint(
            antecedent=[RelAtom("R1", [X, Y])],
            consequent=[RelAtom("R2", [X, Y])],
            conditions=[Cmp("!=", X, "skip")])
        db = inst(R1=[("skip", "b"), ("a", "b")], R2=[])
        violations = tgd.violations(db)
        assert len(violations) == 1
        assert violations[0].antecedent_facts[0] == Fact("R1", ("a", "b"))

    def test_empty_antecedent_rejected(self):
        with pytest.raises(ConstraintError):
            TupleGeneratingConstraint(antecedent=[],
                                      consequent=[RelAtom("R1", [X, Y])])

    def test_condition_variable_not_in_antecedent(self):
        with pytest.raises(ConstraintError):
            TupleGeneratingConstraint(
                antecedent=[RelAtom("R1", [X, Y])],
                consequent=[RelAtom("R2", [X, Y])],
                conditions=[Cmp("=", Z, "a")])

    def test_to_formula_roundtrip_satisfaction(self):
        from repro.relational import evaluation_domain, holds
        tgd = self.make_paper_dec3()
        sat = inst(R1=[("d", "m")], S1=[("a", "m")],
                   R2=[("d", "t")], S2=[("a", "t")])
        unsat = inst(R1=[("d", "m")], S1=[("a", "m")], R2=[],
                     S2=[("a", "t")])
        for db, expected in ((sat, True), (unsat, False)):
            formula = tgd.to_formula()
            domain = evaluation_domain(db, formula)
            assert holds(formula, db, {}, domain) is expected
            assert tgd.holds_in(db) is expected


class TestEGD:
    def make_example1_egd(self):
        """Σ(P1,P3): ∀xyz (R1(x,y) ∧ R3(x,z) → y = z)"""
        return EqualityGeneratingConstraint(
            antecedent=[RelAtom("R1", [X, Y]), RelAtom("R3", [X, Z])],
            equalities=[(Y, Z)], name="sigma_p1_p3")

    def test_satisfied(self):
        egd = self.make_example1_egd()
        assert egd.holds_in(inst(R1=[("a", "b")], R3=[("a", "b")]))
        assert egd.holds_in(inst(R1=[("a", "b")], R3=[("x", "c")]))

    def test_violations(self):
        egd = self.make_example1_egd()
        db = inst(R1=[("a", "b"), ("s", "t")], R3=[("a", "f"), ("s", "u")])
        violations = egd.violations(db)
        assert len(violations) == 2
        facts = {frozenset(v.antecedent_facts) for v in violations}
        assert frozenset({Fact("R1", ("a", "b")),
                          Fact("R3", ("a", "f"))}) in facts

    def test_equality_variable_validation(self):
        with pytest.raises(ConstraintError):
            EqualityGeneratingConstraint(
                antecedent=[RelAtom("R1", [X, Y])],
                equalities=[(Y, W)])

    def test_constant_equality(self):
        egd = EqualityGeneratingConstraint(
            antecedent=[RelAtom("R1", [X, Y])],
            equalities=[(Y, "expected")])
        db = inst(R1=[("a", "expected"), ("b", "other")])
        violations = egd.violations(db)
        assert len(violations) == 1
        assert violations[0].antecedent_facts[0] == Fact("R1",
                                                         ("b", "other"))


class TestFDKey:
    def test_fd_section32(self):
        # ∀xyz (R1(x,y) ∧ R1(x,z) → y = z)
        fd = FunctionalDependency("R1", [0], [1], arity=2)
        assert fd.holds_in(inst(R1=[("a", "b"), ("c", "d")]))
        bad = inst(R1=[("a", "b"), ("a", "c")])
        assert not fd.holds_in(bad)
        assert len(bad.tuples("R1")) == 2

    def test_fd_violation_facts_are_pairs(self):
        fd = FunctionalDependency("R1", [0], [1], arity=2)
        bad = inst(R1=[("a", "b"), ("a", "c")])
        for violation in fd.violations(bad):
            assert len(set(violation.antecedent_facts)) == 2

    def test_fd_overlapping_positions_rejected(self):
        with pytest.raises(ConstraintError):
            FunctionalDependency("R1", [0], [0], arity=2)

    def test_fd_position_out_of_range(self):
        with pytest.raises(ConstraintError):
            FunctionalDependency("R1", [0], [5], arity=2)

    def test_key(self):
        key = KeyConstraint("R1", [0], arity=2)
        assert key.holds_in(inst(R1=[("a", "b"), ("c", "b")]))
        assert not key.holds_in(inst(R1=[("a", "b"), ("a", "c")]))

    def test_key_covering_all_columns_rejected(self):
        with pytest.raises(ConstraintError):
            KeyConstraint("R1", [0, 1], arity=2)


class TestDenial:
    def test_denial(self):
        den = DenialConstraint(
            antecedent=[RelAtom("R1", [X, Y]), RelAtom("R2", [X, Y])])
        assert den.holds_in(inst(R1=[("a", "b")], R2=[("c", "d")]))
        bad = inst(R1=[("a", "b")], R2=[("a", "b")])
        assert len(den.violations(bad)) == 1

    def test_denial_with_condition(self):
        den = DenialConstraint(antecedent=[RelAtom("R1", [X, Y])],
                               conditions=[Cmp("=", X, "bad")])
        assert den.holds_in(inst(R1=[("ok", "b")]))
        assert not den.holds_in(inst(R1=[("bad", "b")]))

    def test_empty_antecedent_rejected(self):
        with pytest.raises(ConstraintError):
            DenialConstraint(antecedent=[])
