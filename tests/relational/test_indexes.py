"""TupleIndex incremental-maintenance edge cases hit by delta replay.

A reloaded peer replays its delta log through the instance's functional
updates, which drive :meth:`TupleIndex.add`/:meth:`discard` on every
already-built column index.  These tests pin the awkward corners of
that path: buckets emptied and re-filled, multi-column ``matching``
after interleaved changes, and index isolation between a parent
instance and its derived copies.
"""

from repro.relational import DatabaseInstance, DatabaseSchema, Fact
from repro.relational.indexes import TupleIndex

SCHEMA = DatabaseSchema.of({"R": 2})


def instance(rows):
    return DatabaseInstance(SCHEMA, {"R": rows})


class TestBucketLifecycle:
    def test_discard_to_empty_bucket_then_re_add(self):
        index = TupleIndex([("a", "b"), ("c", "d")])
        assert index.matching({0: "a"}) == [("a", "b")]  # builds col 0
        assert index.discard(("a", "b"))
        # the "a" bucket emptied: it must be gone, not a stale empty set
        assert index.matching({0: "a"}) == []
        assert "a" not in index.column(0)
        assert index.add(("a", "z"))
        assert index.matching({0: "a"}) == [("a", "z")]
        assert index.matching({0: "a", 1: "z"}) == [("a", "z")]

    def test_re_add_the_exact_discarded_row(self):
        index = TupleIndex([("a", "b")])
        index.column(0)
        index.column(1)
        index.discard(("a", "b"))
        index.add(("a", "b"))
        assert index.matching({0: "a"}) == [("a", "b")]
        assert index.matching({1: "b"}) == [("a", "b")]
        assert len(index) == 1

    def test_noop_add_and_discard_report_false(self):
        index = TupleIndex([("a", "b")])
        index.column(0)
        assert not index.add(("a", "b"))
        assert not index.discard(("x", "y"))
        assert index.matching({0: "a"}) == [("a", "b")]


class TestMultiColumnMatchingAfterInterleavedDeltas:
    def test_matching_filters_all_bound_columns(self):
        index = TupleIndex()
        index.column(0)  # built before any row exists
        index.apply_delta(insertions=[("a", "b"), ("a", "c"),
                                      ("x", "b")])
        index.apply_delta(insertions=[("a", "d")],
                          deletions=[("a", "c")])
        index.apply_delta(insertions=[("a", "c")],
                          deletions=[("a", "d"), ("x", "b")])
        assert sorted(index) == [("a", "b"), ("a", "c")]
        assert index.matching({0: "a", 1: "c"}) == [("a", "c")]
        assert index.matching({0: "x", 1: "b"}) == []
        # a column built only after the deltas sees the same rows
        assert index.matching({1: "b"}) == [("a", "b")]

    def test_delete_then_reinsert_in_one_delta(self):
        # delta replay deletes first, inserts second: a row present in
        # both lists must end present
        index = TupleIndex([("a", "b")])
        index.column(0)
        index.apply_delta(insertions=[("a", "b")],
                          deletions=[("a", "b")])
        assert ("a", "b") in index
        assert index.matching({0: "a"}) == [("a", "b")]


class TestSharedIndexIsolation:
    def test_parent_index_untouched_by_with_facts(self):
        parent = instance([("a", "b")])
        parent_index = parent.index("R")
        assert parent.rows_matching("R", {0: "a"}) == [("a", "b")]
        derived = parent.with_facts([Fact("R", ("a", "c"))])
        assert sorted(derived.rows_matching("R", {0: "a"})) == \
            [("a", "b"), ("a", "c")]
        # the parent still answers from its own (uncloned) index
        assert parent.rows_matching("R", {0: "a"}) == [("a", "b")]
        assert parent.index("R") is parent_index
        assert derived.index("R") is not parent_index

    def test_parent_index_untouched_by_without_facts(self):
        parent = instance([("a", "b"), ("a", "c")])
        parent.index("R").column(0)
        derived = parent.without_facts([Fact("R", ("a", "b"))])
        assert derived.rows_matching("R", {0: "a"}) == [("a", "c")]
        assert sorted(parent.rows_matching("R", {0: "a"})) == \
            [("a", "b"), ("a", "c")]

    def test_untouched_relation_shares_the_index_object(self):
        schema = DatabaseSchema.of({"R": 2, "S": 2})
        parent = DatabaseInstance(schema, {"R": [("a", "b")],
                                           "S": [("s", "t")]})
        shared = parent.index("S")
        derived = parent.with_facts([Fact("R", ("c", "d"))])
        assert derived.index("S") is shared  # identical rows: share
        assert derived.index("R") is not parent.index("R")

    def test_sibling_derivatives_do_not_interfere(self):
        parent = instance([("a", "b")])
        parent.index("R").column(0)
        plus = parent.with_facts([Fact("R", ("a", "c"))])
        minus = parent.without_facts([Fact("R", ("a", "b"))])
        assert sorted(plus.rows_matching("R", {0: "a"})) == \
            [("a", "b"), ("a", "c")]
        assert minus.rows_matching("R", {0: "a"}) == []
        assert parent.rows_matching("R", {0: "a"}) == [("a", "b")]
