"""Unit tests for FO query evaluation (active-domain semantics)."""

import pytest

from repro.relational import (
    And,
    Cmp,
    DatabaseInstance,
    DatabaseSchema,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Query,
    QueryError,
    RelAtom,
    TRUE,
    FALSE,
    Variable,
    evaluation_domain,
    holds,
    parse_formula,
    parse_query,
)

SCHEMA = DatabaseSchema.of({"R": 2, "S": 2, "T": 1})
X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def inst(**data):
    return DatabaseInstance(SCHEMA, data)


class TestHolds:
    def setup_method(self):
        self.db = inst(R=[("a", "b"), ("b", "c")], S=[("a", "b")],
                       T=[("a",)])
        self.domain = ("a", "b", "c")

    def test_atom(self):
        assert holds(RelAtom("R", ["a", "b"]), self.db, {}, self.domain)
        assert not holds(RelAtom("R", ["b", "a"]), self.db, {}, self.domain)

    def test_atom_with_env(self):
        assert holds(RelAtom("R", [X, "b"]), self.db, {X: "a"}, self.domain)

    def test_unbound_variable_raises(self):
        with pytest.raises(QueryError):
            holds(RelAtom("R", [X, Y]), self.db, {}, self.domain)

    def test_cmp(self):
        assert holds(Cmp("!=", X, Y), self.db, {X: "a", Y: "b"},
                     self.domain)

    def test_and_or_not(self):
        f = And(RelAtom("R", [X, Y]), Not(RelAtom("S", [X, Y])))
        assert holds(f, self.db, {X: "b", Y: "c"}, self.domain)
        assert not holds(f, self.db, {X: "a", Y: "b"}, self.domain)
        g = Or(RelAtom("S", [X, Y]), RelAtom("R", [X, Y]))
        assert holds(g, self.db, {X: "a", Y: "b"}, self.domain)

    def test_implies(self):
        f = Implies(RelAtom("S", [X, Y]), RelAtom("R", [X, Y]))
        assert holds(f, self.db, {X: "a", Y: "b"}, self.domain)   # both
        assert holds(f, self.db, {X: "c", Y: "c"}, self.domain)   # vacuous

    def test_exists(self):
        f = Exists(Y, RelAtom("R", [X, Y]))
        assert holds(f, self.db, {X: "a"}, self.domain)
        assert not holds(f, self.db, {X: "c"}, self.domain)

    def test_forall(self):
        # every R-successor of a is b
        f = Forall(Y, Implies(RelAtom("R", [X, Y]), Cmp("=", Y, "b")))
        assert holds(f, self.db, {X: "a"}, self.domain)
        assert not holds(
            Forall(Y, RelAtom("R", [X, Y])), self.db, {X: "a"}, self.domain)

    def test_quantifier_shadowing(self):
        # inner X shadows outer binding
        f = Exists(X, RelAtom("T", [X]))
        assert holds(f, self.db, {X: "zzz"}, self.domain)

    def test_truth_constants(self):
        assert holds(TRUE, self.db, {}, self.domain)
        assert not holds(FALSE, self.db, {}, self.domain)

    def test_nested_quantifiers(self):
        # exists a path of length 2
        f = Exists([X, Y, Z], And(RelAtom("R", [X, Y]),
                                  RelAtom("R", [Y, Z])))
        assert holds(f, self.db, {}, self.domain)


class TestAnswers:
    def setup_method(self):
        self.db = inst(R=[("a", "b"), ("b", "c"), ("a", "c")],
                       S=[("a", "b")], T=[("a",)])

    def test_atom_query(self):
        q = Query("q", [X, Y], RelAtom("R", [X, Y]))
        assert q.answers(self.db) == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_projection_via_exists(self):
        q = Query("q", [X], Exists(Y, RelAtom("R", [X, Y])))
        assert q.answers(self.db) == {("a",), ("b",)}

    def test_join(self):
        q = Query("q", [X, Z], Exists(Y, And(RelAtom("R", [X, Y]),
                                             RelAtom("R", [Y, Z]))))
        assert q.answers(self.db) == {("a", "c")}

    def test_negation(self):
        q = Query("q", [X, Y], And(RelAtom("R", [X, Y]),
                                   Not(RelAtom("S", [X, Y]))))
        assert q.answers(self.db) == {("b", "c"), ("a", "c")}

    def test_disjunction_of_different_relations(self):
        q = Query("q", [X, Y], Or(RelAtom("R", [X, Y]),
                                  RelAtom("S", [X, Y])))
        assert q.answers(self.db) == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_disjunct_binding_subset_of_head(self):
        # second disjunct leaves Y unbound: active-domain completion
        q = Query("q", [X, Y], Or(RelAtom("R", [X, Y]), RelAtom("T", [X])))
        answers = q.answers(self.db)
        # T(a) contributes (a, d) for every d in the active domain
        assert ("a", "a") in answers and ("a", "b") in answers
        assert ("b", "b") not in answers

    def test_constant_in_query(self):
        q = Query("q", [Y], RelAtom("R", ["a", Y]))
        assert q.answers(self.db) == {("b",), ("c",)}

    def test_comparison_filter(self):
        q = Query("q", [X, Y], And(RelAtom("R", [X, Y]),
                                   Cmp("!=", Y, "c")))
        assert q.answers(self.db) == {("a", "b")}

    def test_boolean_query(self):
        q = Query("q", [], Exists([X, Y], RelAtom("R", [X, Y])))
        assert q.is_true(self.db)
        empty = inst()
        assert not q.is_true(empty)

    def test_free_variable_validation(self):
        with pytest.raises(QueryError):
            Query("q", [X], RelAtom("R", [X, Y]))  # Y free but not in head

    def test_repeated_head_variable_rejected(self):
        with pytest.raises(QueryError):
            Query("q", [X, X], RelAtom("R", [X, X]))

    def test_guarded_forall(self):
        # all R-successors of X are also S-successors of X
        q = Query("q", [X],
                  And(RelAtom("T", [X]),
                      Forall(Y, Implies(RelAtom("R", [X, Y]),
                                        RelAtom("S", [X, Y])))))
        db = inst(R=[("a", "b")], S=[("a", "b")], T=[("a",)])
        assert q.answers(db) == {("a",)}
        db2 = inst(R=[("a", "b"), ("a", "c")], S=[("a", "b")], T=[("a",)])
        assert q.answers(db2) == set()


class TestAnswersDeduplication:
    """Regression for the documented ``bindings`` leak: disjunction
    branches binding fewer variables yield duplicate *partial*
    environments, and ``answers`` used to re-run the full
    ``product(domain, repeat=unbound)`` completion for every repeat.
    Completed environments depend only on the candidate's base, so each
    base must be processed exactly once."""

    def test_partial_candidates_completed_once(self, monkeypatch):
        import repro.relational.query as query_module
        db = inst(T=[("a",), ("b",)])
        # both branches are identical, so `bindings` yields every
        # T-candidate twice, each leaving Y unbound
        q = Query("q", [X, Y], Or(RelAtom("T", [X]), RelAtom("T", [X])))
        calls = {"completions": 0}
        real_product = query_module.product

        def counting_product(*args, **kwargs):
            calls["completions"] += 1
            return real_product(*args, **kwargs)

        monkeypatch.setattr(query_module, "product", counting_product)
        answers = q.answers(db, evaluator="naive")
        domain = ("a", "b")
        assert answers == {(x, y) for x in domain for y in domain}
        # one completion product per *distinct* base — (a, ?) and
        # (b, ?) — not one per yielded candidate (which would be 4)
        assert calls["completions"] == 2

    def test_duplicate_full_candidates_also_deduplicated(self,
                                                         monkeypatch):
        import repro.relational.query as query_module
        db = inst(R=[("a", "b")], S=[("a", "b")])
        q = Query("q", [X, Y], Or(RelAtom("R", [X, Y]),
                                  RelAtom("S", [X, Y])))
        seen = []
        real_holds = query_module.holds

        def counting_holds(formula, instance, env, domain):
            if formula is q.formula:  # top-level verification only
                seen.append(dict(env))
            return real_holds(formula, instance, env, domain)

        monkeypatch.setattr(query_module, "holds", counting_holds)
        assert q.answers(db, evaluator="naive") == {("a", "b")}
        # the (a, b) environment reaches verification exactly once even
        # though both branches produce it
        assert len([e for e in seen if e == {X: "a", Y: "b"}]) == 1

    def test_dedup_matches_planner(self):
        db = inst(R=[("a", "b"), ("b", "c")], T=[("a",), ("c",)])
        q = Query("q", [X, Y], Or(RelAtom("R", [X, Y]),
                                  RelAtom("T", [X]),
                                  RelAtom("T", [X])))
        assert q.answers(db, evaluator="naive") == \
            q.answers(db, evaluator="planner")


class TestEvaluationDomain:
    def test_includes_constants(self):
        db = inst(R=[("a", "b")])
        domain = evaluation_domain(db, RelAtom("R", ["zzz", X]))
        assert "zzz" in domain and "a" in domain


class TestParser:
    def test_parse_formula_precedence(self):
        f = parse_formula("R(X, Y) & S(X, Y) | T(X)")
        assert isinstance(f, Or)  # & binds tighter than |

    def test_parse_implication_right_assoc(self):
        f = parse_formula("T(X) -> T(X) -> T(X)")
        assert isinstance(f, Implies)
        assert isinstance(f.conclusion, Implies)

    def test_parse_not(self):
        f = parse_formula("~T(X)")
        assert isinstance(f, Not)
        g = parse_formula("not T(X)")
        assert f == g

    def test_parse_quantifiers(self):
        f = parse_formula("exists X Y R(X, Y)")
        assert isinstance(f, Exists) and len(f.variables) == 2

    def test_parse_quantifier_body_atom_uppercase_relation(self):
        f = parse_formula("exists Z2 R2(X, Z2)")
        assert isinstance(f, Exists)
        assert f.variables == (Variable("Z2"),)

    def test_parse_example2_rewriting(self):
        text = ("(R1(X, Y) & forall Z1 ((R3(X, Z1) & "
                "~exists Z2 R2(X, Z2)) -> Z1 = Y)) | R2(X, Y)")
        f = parse_formula(text)
        assert isinstance(f, Or)

    def test_parse_query_headed(self):
        q = parse_query("answer(X) := exists Y R(X, Y)")
        assert q.name == "answer"
        assert q.head == (X,)

    def test_parse_query_bare(self):
        q = parse_query("R(X, Y) & T(X)")
        assert q.head == (X, Y)

    def test_parse_query_head_must_be_variables(self):
        with pytest.raises(QueryError):
            parse_query("q(a) := T(a)")

    def test_keywords_and_synonyms(self):
        f = parse_formula("T(X) and T(X) or not T(X)")
        assert isinstance(f, Or)

    def test_parse_equality_synonym(self):
        f = parse_formula("X = Y & T(X)")
        assert isinstance(f, And)

    def test_trailing_garbage(self):
        with pytest.raises(QueryError):
            parse_formula("T(X) T(Y)")

    def test_roundtrip_str(self):
        text = "(R(X, Y) -> exists Z S(Y, Z))"
        f = parse_formula(text)
        g = parse_formula(str(f))
        assert f == g

    def test_evaluation_of_parsed_query(self):
        db = inst(R=[("a", "b"), ("b", "c")], S=[("a", "b")])
        q = parse_query("q(X) := exists Y (R(X, Y) & ~S(X, Y))")
        assert q.answers(db) == {("b",)}
