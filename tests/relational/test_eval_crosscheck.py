"""Cross-check both FO evaluators against a textbook reference.

``holds`` special-cases guarded universals (enumerating the guard's
matches instead of the domain) and ``Query.answers`` drives enumeration
through atom bindings; the indexed evaluation planner
(:mod:`repro.relational.planner`) goes further — compiled plans, index
joins, restricted domain enumeration.  Both must coincide with the
textbook recursive evaluation that quantifies over the full active
domain, so every property here runs under ``evaluator="naive"`` *and*
``evaluator="planner"``.
"""

from itertools import product

from hypothesis import given, settings, strategies as st

from repro.datalog.terms import Comparison, Constant, Variable
from repro.relational import (
    And,
    Cmp,
    DatabaseInstance,
    DatabaseSchema,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Query,
    RelAtom,
    evaluation_domain,
    holds,
    plan_holds,
)
from repro.relational.query import _Truth

SCHEMA = DatabaseSchema.of({"R": 2, "S": 2})
VALUES = ["a", "b", "c"]
X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def holds_reference(formula, instance, env, domain) -> bool:
    """Textbook recursive FO evaluation (no optimisations)."""
    if isinstance(formula, _Truth):
        return formula.value
    if isinstance(formula, RelAtom):
        row = tuple(env[t] if isinstance(t, Variable) else t.value
                    for t in formula.terms)
        return row in instance.tuples(formula.relation)
    if isinstance(formula, Cmp):
        comparison = formula.comparison
        left = env[comparison.left] \
            if isinstance(comparison.left, Variable) \
            else comparison.left.value
        right = env[comparison.right] \
            if isinstance(comparison.right, Variable) \
            else comparison.right.value
        return Comparison(comparison.op, Constant(left),
                          Constant(right)).evaluate()
    if isinstance(formula, And):
        return all(holds_reference(p, instance, env, domain)
                   for p in formula.parts)
    if isinstance(formula, Or):
        return any(holds_reference(p, instance, env, domain)
                   for p in formula.parts)
    if isinstance(formula, Not):
        return not holds_reference(formula.sub, instance, env, domain)
    if isinstance(formula, Implies):
        return (not holds_reference(formula.premise, instance, env,
                                    domain)
                or holds_reference(formula.conclusion, instance, env,
                                   domain))
    if isinstance(formula, Exists):
        for combo in product(domain, repeat=len(formula.variables)):
            inner = dict(env)
            inner.update(zip(formula.variables, combo))
            if holds_reference(formula.sub, instance, inner, domain):
                return True
        return False
    if isinstance(formula, Forall):
        for combo in product(domain, repeat=len(formula.variables)):
            inner = dict(env)
            inner.update(zip(formula.variables, combo))
            if not holds_reference(formula.sub, instance, inner, domain):
                return False
        return True
    raise AssertionError(formula)


rows = st.lists(
    st.tuples(st.sampled_from(VALUES), st.sampled_from(VALUES)),
    max_size=5).map(lambda rs: list(set(rs)))


@st.composite
def instances(draw):
    return DatabaseInstance(SCHEMA, {"R": draw(rows), "S": draw(rows)})


@st.composite
def closed_formulas(draw, depth=3, free=()):
    """Random formulas whose free variables ⊆ ``free``."""
    free = tuple(free)
    if depth == 0 or (draw(st.booleans()) and depth < 2):
        terms = [draw(st.sampled_from(
            list(free) + [Constant(v) for v in VALUES]))
            for _ in range(2)] if free else \
            [Constant(draw(st.sampled_from(VALUES))) for _ in range(2)]
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0:
            return RelAtom("R", terms)
        if kind == 1:
            return RelAtom("S", terms)
        return Cmp(draw(st.sampled_from(["=", "!="])), terms[0],
                   terms[1])
    kind = draw(st.integers(min_value=0, max_value=5))
    if kind == 0:
        return And(draw(closed_formulas(depth=depth - 1, free=free)),
                   draw(closed_formulas(depth=depth - 1, free=free)))
    if kind == 1:
        return Or(draw(closed_formulas(depth=depth - 1, free=free)),
                  draw(closed_formulas(depth=depth - 1, free=free)))
    if kind == 2:
        return Not(draw(closed_formulas(depth=depth - 1, free=free)))
    if kind == 3:
        return Implies(draw(closed_formulas(depth=depth - 1, free=free)),
                       draw(closed_formulas(depth=depth - 1, free=free)))
    quantifier = Exists if kind == 4 else Forall
    var = draw(st.sampled_from([X, Y, Z]))
    body = draw(closed_formulas(depth=depth - 1,
                                free=tuple(set(free) | {var})))
    return quantifier([var], body)


def test_exists_over_empty_domain_is_false():
    """Regression: ∃Y φ must be false over an empty active domain even
    when φ ignores Y (shadowed/unused quantified variables let
    ``bindings`` certify a closed body without picking a witness)."""
    instance = DatabaseInstance(SCHEMA, {"R": [], "S": []})
    formula = Exists([Y], Exists([Y], Forall([Y], RelAtom("R", [Y, Y]))))
    domain = evaluation_domain(instance, formula)
    assert domain == ()
    assert holds(formula, instance, {}, domain) is False
    assert plan_holds(formula, instance, {}, domain) is False
    assert holds_reference(formula, instance, {}, domain) is False


@settings(max_examples=150, deadline=None)
@given(instances(), closed_formulas())
def test_holds_matches_reference_closed(instance, formula):
    if formula.free_variables():
        return  # only closed formulas here
    domain = evaluation_domain(instance, formula)
    expected = holds_reference(formula, instance, {}, domain)
    assert holds(formula, instance, {}, domain) == expected
    assert plan_holds(formula, instance, {}, domain) == expected


@settings(max_examples=120, deadline=None)
@given(instances(), closed_formulas(free=(X,)))
def test_answers_match_reference_enumeration(instance, formula):
    free = sorted(formula.free_variables(), key=lambda v: v.name)
    query = Query("q", free, formula)
    domain = evaluation_domain(instance, formula)
    expected = set()
    for combo in product(domain, repeat=len(free)):
        env = dict(zip(free, combo))
        if holds_reference(formula, instance, env, domain):
            expected.add(tuple(env[v] for v in free))
    assert query.answers(instance, evaluator="naive") == expected
    assert query.answers(instance, evaluator="planner") == expected


@settings(max_examples=120, deadline=None)
@given(instances(), closed_formulas(free=(X, Y)))
def test_guarded_forall_optimisation_sound(instance, body):
    """The guarded-∀ shortcut must agree with the reference on
    implication bodies specifically."""
    free_y = Y in body.free_variables()
    formula = Forall([Y], Implies(RelAtom("R", [X, Y]), body)) \
        if free_y else Forall([Y], Implies(RelAtom("R", [X, Y]),
                                           And(body, Cmp("=", Y, Y))))
    domain = evaluation_domain(instance, formula)
    for value in domain:
        env = {X: value}
        expected = holds_reference(formula, instance, env, domain)
        assert holds(formula, instance, env, domain) == expected
        assert plan_holds(formula, instance, env, domain) == expected
