"""Property-based tests (hypothesis) for the relational substrate."""

from hypothesis import given, settings, strategies as st

from repro.datalog.terms import Variable
from repro.relational import (
    And,
    Cmp,
    DatabaseInstance,
    DatabaseSchema,
    Exists,
    Fact,
    Forall,
    Implies,
    Not,
    Or,
    Query,
    RelAtom,
    evaluation_domain,
    holds,
)

SCHEMA = DatabaseSchema.of({"R": 2, "S": 2})
VALUES = ["a", "b", "c", "d"]
X, Y = Variable("X"), Variable("Y")

rows = st.lists(
    st.tuples(st.sampled_from(VALUES), st.sampled_from(VALUES)),
    max_size=6).map(lambda rs: list(set(rs)))


@st.composite
def instances(draw):
    return DatabaseInstance(SCHEMA, {"R": draw(rows), "S": draw(rows)})


@st.composite
def formulas(draw, depth=2):
    """Random FO formulas over R, S with free variables ⊆ {X, Y}."""
    if depth == 0:
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return RelAtom("R", [X, Y])
        if choice == 1:
            return RelAtom("S", [X, Y])
        return Cmp(draw(st.sampled_from(["=", "!="])), X, Y)
    choice = draw(st.integers(min_value=0, max_value=5))
    if choice == 0:
        return And(draw(formulas(depth=depth - 1)),
                   draw(formulas(depth=depth - 1)))
    if choice == 1:
        return Or(draw(formulas(depth=depth - 1)),
                  draw(formulas(depth=depth - 1)))
    if choice == 2:
        return Not(draw(formulas(depth=depth - 1)))
    if choice == 3:
        return Implies(draw(formulas(depth=depth - 1)),
                       draw(formulas(depth=depth - 1)))
    if choice == 4:
        return Exists([draw(st.sampled_from([X, Y]))],
                      draw(formulas(depth=depth - 1)))
    return Forall([draw(st.sampled_from([X, Y]))],
                  draw(formulas(depth=depth - 1)))


# ---------------------------------------------------------------------------
# Δ and ≤_r (Definition 1)
# ---------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(instances(), instances())
def test_delta_symmetric(r1, r2):
    assert r1.delta(r2) == r2.delta(r1)


@settings(max_examples=100, deadline=None)
@given(instances())
def test_delta_identity(r):
    assert r.delta(r) == set()


@settings(max_examples=100, deadline=None)
@given(instances(), instances(), instances())
def test_delta_triangle(r1, r2, r3):
    """Δ is a symmetric difference: Δ(r1,r3) ⊆ Δ(r1,r2) ∪ Δ(r2,r3)."""
    assert r1.delta(r3) <= r1.delta(r2) | r2.delta(r3)


@settings(max_examples=100, deadline=None)
@given(instances(), instances())
def test_closer_or_equal_reflexive_on_self(origin, other):
    assert DatabaseInstance.closer_or_equal(origin, origin, other)


@settings(max_examples=100, deadline=None)
@given(instances(), instances(), instances(), instances())
def test_closer_or_equal_transitive(origin, a, b, c):
    if DatabaseInstance.closer_or_equal(origin, a, b) and \
            DatabaseInstance.closer_or_equal(origin, b, c):
        assert DatabaseInstance.closer_or_equal(origin, a, c)


@settings(max_examples=100, deadline=None)
@given(instances(), instances())
def test_insertions_deletions_partition_delta(base, changed):
    delta = changed.delta(base)
    insertions = changed.insertions_from(base)
    deletions = changed.deletions_from(base)
    assert insertions | deletions == delta
    assert insertions & deletions == set()


@settings(max_examples=100, deadline=None)
@given(instances(), st.sets(st.tuples(st.sampled_from(VALUES),
                                      st.sampled_from(VALUES)),
                            max_size=4))
def test_with_without_roundtrip(instance, tuples):
    facts = [Fact("R", t) for t in tuples]
    extended = instance.with_facts(facts)
    for fact in facts:
        assert fact in extended
    reduced = extended.without_facts(facts)
    assert all(f not in reduced for f in facts)


# ---------------------------------------------------------------------------
# FO evaluation laws
# ---------------------------------------------------------------------------

def _answers(formula, instance):
    free = sorted(formula.free_variables(), key=lambda v: v.name)
    return Query("q", free, formula).answers(instance)


@settings(max_examples=80, deadline=None)
@given(instances(), formulas(), formulas())
def test_and_commutative(instance, f, g):
    assert _answers(And(f, g), instance) == _answers(And(g, f), instance)


@settings(max_examples=80, deadline=None)
@given(instances(), formulas(), formulas())
def test_de_morgan(instance, f, g):
    lhs = Not(And(f, g))
    rhs = Or(Not(f), Not(g))
    domain = tuple(sorted(evaluation_domain(instance, lhs)))
    free = sorted((f.free_variables() | g.free_variables()),
                  key=lambda v: v.name)
    from itertools import product
    for combo in product(domain, repeat=len(free)):
        env = dict(zip(free, combo))
        assert holds(lhs, instance, env, domain) == \
            holds(rhs, instance, env, domain)


@settings(max_examples=80, deadline=None)
@given(instances(), formulas())
def test_quantifier_duality(instance, f):
    """∀x φ ≡ ¬∃x ¬φ under active-domain semantics."""
    forall = Forall([X], f)
    as_exists = Not(Exists([X], Not(f)))
    domain = tuple(sorted(evaluation_domain(instance, forall)))
    free = sorted(forall.free_variables(), key=lambda v: v.name)
    from itertools import product
    for combo in product(domain, repeat=len(free)):
        env = dict(zip(free, combo))
        assert holds(forall, instance, env, domain) == \
            holds(as_exists, instance, env, domain)


@settings(max_examples=80, deadline=None)
@given(instances(), formulas())
def test_double_negation(instance, f):
    assert _answers(Not(Not(f)), instance) == _answers(f, instance)


@settings(max_examples=80, deadline=None)
@given(instances(), formulas())
def test_answers_subset_of_domain_product(instance, f):
    domain = set(evaluation_domain(instance, f))
    for row in _answers(f, instance):
        assert all(value in domain for value in row)


@settings(max_examples=80, deadline=None)
@given(instances())
def test_atom_query_equals_tuples(instance):
    assert _answers(RelAtom("R", [X, Y]), instance) == \
        set(instance.tuples("R"))


@settings(max_examples=60, deadline=None)
@given(instances(), formulas())
def test_monotone_under_or_true(instance, f):
    """f ∨ TRUE answers = full domain product over the free variables."""
    from repro.relational import TRUE
    free = sorted(f.free_variables(), key=lambda v: v.name)
    if not free:
        return
    answers = _answers(Or(f, TRUE), instance)
    domain = evaluation_domain(instance, f)
    assert len(answers) == len(domain) ** len(free)
