"""Unit tests for the named-column relational algebra."""

import pytest

from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    NamedRelation,
    QueryError,
    from_instance,
)

R = NamedRelation(("x", "y"), [("a", 1), ("b", 2), ("c", 2)])
S = NamedRelation(("y", "z"), [(1, "p"), (2, "q")])


class TestConstruction:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(QueryError):
            NamedRelation(("x", "x"), [])

    def test_row_width_checked(self):
        with pytest.raises(QueryError):
            NamedRelation(("x",), [("a", "b")])

    def test_set_semantics(self):
        rel = NamedRelation(("x",), [("a",), ("a",)])
        assert len(rel) == 1


class TestOperators:
    def test_select(self):
        out = R.select(lambda row: row["y"] == 2)
        assert out.rows == frozenset({("b", 2), ("c", 2)})

    def test_select_eq(self):
        assert R.select_eq("x", "a").rows == frozenset({("a", 1)})

    def test_project(self):
        out = R.project(["y"])
        assert out.rows == frozenset({(1,), (2,)})
        assert out.columns == ("y",)

    def test_project_reorder(self):
        out = R.project(["y", "x"])
        assert ("1", "a") not in out.rows
        assert (1, "a") in out.rows

    def test_project_unknown_column(self):
        with pytest.raises(QueryError):
            R.project(["zz"])

    def test_rename(self):
        out = R.rename({"x": "u"})
        assert out.columns == ("u", "y")
        assert out.rows == R.rows

    def test_natural_join(self):
        out = R.natural_join(S)
        assert out.columns == ("x", "y", "z")
        assert out.rows == frozenset({("a", 1, "p"), ("b", 2, "q"),
                                      ("c", 2, "q")})

    def test_natural_join_no_shared_is_cross(self):
        left = NamedRelation(("x",), [("a",)])
        right = NamedRelation(("y",), [(1,), (2,)])
        out = left.natural_join(right)
        assert len(out) == 2

    def test_union_and_difference(self):
        one = NamedRelation(("x",), [("a",), ("b",)])
        two = NamedRelation(("x",), [("b",), ("c",)])
        assert one.union(two).rows == frozenset({("a",), ("b",), ("c",)})
        assert one.difference(two).rows == frozenset({("a",)})

    def test_union_incompatible(self):
        with pytest.raises(QueryError):
            R.union(S)

    def test_cross_disjoint_required(self):
        with pytest.raises(QueryError):
            R.cross(R)

    def test_semijoin_antijoin(self):
        out = R.semijoin(S.select_eq("y", 2))
        assert out.rows == frozenset({("b", 2), ("c", 2)})
        anti = R.antijoin(S.select_eq("y", 2))
        assert anti.rows == frozenset({("a", 1)})


class TestFromInstance:
    def test_wraps_relation(self):
        schema = DatabaseSchema.of({"R": 2})
        inst = DatabaseInstance(schema, {"R": [("a", "b")]})
        rel = from_instance(inst, "R", ["c1", "c2"])
        assert rel.columns == ("c1", "c2")
        assert rel.rows == frozenset({("a", "b")})

    def test_default_columns_from_schema(self):
        schema = DatabaseSchema.of({"R": 2})
        inst = DatabaseInstance(schema, {"R": [("a", "b")]})
        assert from_instance(inst, "R").columns == ("a0", "a1")

    def test_column_count_checked(self):
        schema = DatabaseSchema.of({"R": 2})
        inst = DatabaseInstance(schema, {"R": []})
        with pytest.raises(QueryError):
            from_instance(inst, "R", ["only"])


class TestSelectionPushdown:
    def test_where_uses_index_layer(self):
        schema = DatabaseSchema.of({"R": 2})
        inst = DatabaseInstance(
            schema, {"R": [("a", 1), ("a", 2), ("b", 1)]})
        rel = from_instance(inst, "R", ["x", "y"], where={"x": "a"})
        assert rel.rows == frozenset({("a", 1), ("a", 2)})
        both = from_instance(inst, "R", ["x", "y"],
                             where={"x": "a", "y": 2})
        assert both.rows == frozenset({("a", 2)})

    def test_where_matches_post_hoc_select(self):
        schema = DatabaseSchema.of({"R": 2})
        inst = DatabaseInstance(
            schema, {"R": [("a", 1), ("b", 2), ("c", 2)]})
        pushed = from_instance(inst, "R", ["x", "y"], where={"y": 2})
        scanned = from_instance(inst, "R", ["x", "y"]).select_eq("y", 2)
        assert pushed == scanned

    def test_where_unknown_column(self):
        schema = DatabaseSchema.of({"R": 2})
        inst = DatabaseInstance(schema, {"R": []})
        with pytest.raises(QueryError):
            from_instance(inst, "R", ["x", "y"], where={"nope": 1})
