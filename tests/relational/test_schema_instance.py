"""Unit tests for schemas and instances (Definitions 1-3 vocabulary)."""

import pytest

from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    Fact,
    InstanceError,
    RelationSchema,
    SchemaError,
)


class TestRelationSchema:
    def test_default_attribute_names(self):
        schema = RelationSchema("R", 3)
        assert schema.attributes == ("a0", "a1", "a2")

    def test_named_attributes(self):
        schema = RelationSchema("emp", 2, ["name", "dept"])
        assert schema.position_of("dept") == 1

    def test_attribute_count_mismatch(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 2, ["only_one"])

    def test_duplicate_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 2, ["x", "x"])

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 1).position_of("zz")

    def test_negative_arity(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", -1)


class TestDatabaseSchema:
    def test_of_shorthand(self):
        schema = DatabaseSchema.of({"R1": 2, "R2": 3})
        assert schema.arity("R1") == 2
        assert schema.arity("R2") == 3

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([RelationSchema("R", 1), RelationSchema("R", 2)])

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            DatabaseSchema.of({"R": 1}).relation("S")

    def test_disjoint_union(self):
        left = DatabaseSchema.of({"R1": 2})
        right = DatabaseSchema.of({"S1": 2})
        union = left.disjoint_union(right)
        assert set(union.names) == {"R1", "S1"}

    def test_disjoint_union_rejects_overlap(self):
        left = DatabaseSchema.of({"R1": 2})
        right = DatabaseSchema.of({"R1": 2})
        with pytest.raises(SchemaError):
            left.disjoint_union(right)

    def test_restrict(self):
        schema = DatabaseSchema.of({"R1": 2, "R2": 2, "R3": 1})
        sub = schema.restrict(["R1", "R3"])
        assert set(sub.names) == {"R1", "R3"}

    def test_is_subschema(self):
        schema = DatabaseSchema.of({"R1": 2, "R2": 2})
        assert schema.restrict(["R1"]).is_subschema_of(schema)
        assert not schema.is_subschema_of(schema.restrict(["R1"]))


SCHEMA = DatabaseSchema.of({"R1": 2, "R2": 2})


def make(data):
    return DatabaseInstance(SCHEMA, data)


class TestDatabaseInstance:
    def test_empty_relations_present(self):
        inst = make({})
        assert inst.tuples("R1") == frozenset()
        assert inst.tuples("R2") == frozenset()

    def test_arity_enforced(self):
        with pytest.raises(InstanceError):
            make({"R1": [("a",)]})

    def test_unknown_relation_rejected(self):
        with pytest.raises(InstanceError):
            make({"R9": [("a", "b")]})

    def test_facts_sigma(self):
        inst = make({"R1": [("a", "b")], "R2": [("c", "d")]})
        assert inst.facts() == {Fact("R1", ("a", "b")),
                                Fact("R2", ("c", "d"))}

    def test_contains(self):
        inst = make({"R1": [("a", "b")]})
        assert Fact("R1", ("a", "b")) in inst
        assert Fact("R1", ("b", "a")) not in inst

    def test_active_domain(self):
        inst = make({"R1": [("a", "b")], "R2": [("a", 3)]})
        assert inst.active_domain() == {"a", "b", 3}

    def test_size(self):
        inst = make({"R1": [("a", "b"), ("c", "d")], "R2": [("a", "b")]})
        assert inst.size() == 3


class TestDelta:
    def test_delta_is_symmetric_difference(self):
        one = make({"R1": [("a", "b"), ("c", "d")]})
        two = make({"R1": [("a", "b")], "R2": [("x", "y")]})
        delta = one.delta(two)
        assert delta == {Fact("R1", ("c", "d")), Fact("R2", ("x", "y"))}
        assert one.delta(two) == two.delta(one)

    def test_delta_with_self_empty(self):
        inst = make({"R1": [("a", "b")]})
        assert inst.delta(inst) == set()

    def test_insertions_deletions(self):
        base = make({"R1": [("a", "b")]})
        changed = make({"R1": [("c", "d")]})
        assert changed.insertions_from(base) == {Fact("R1", ("c", "d"))}
        assert changed.deletions_from(base) == {Fact("R1", ("a", "b"))}

    def test_closer_or_equal(self):
        origin = make({"R1": [("a", "b"), ("c", "d")]})
        near = make({"R1": [("a", "b")]})                  # Δ = {cd}
        far = make({"R1": []})                             # Δ = {ab, cd}
        assert DatabaseInstance.closer_or_equal(origin, near, far)
        assert not DatabaseInstance.closer_or_equal(origin, far, near)

    def test_closer_or_equal_incomparable(self):
        origin = make({"R1": [("a", "b"), ("c", "d")]})
        drop_first = make({"R1": [("c", "d")]})
        drop_second = make({"R1": [("a", "b")]})
        assert not DatabaseInstance.closer_or_equal(
            origin, drop_first, drop_second)
        assert not DatabaseInstance.closer_or_equal(
            origin, drop_second, drop_first)


class TestFunctionalUpdates:
    def test_with_facts_is_functional(self):
        inst = make({"R1": [("a", "b")]})
        extended = inst.with_facts([Fact("R2", ("x", "y"))])
        assert Fact("R2", ("x", "y")) in extended
        assert Fact("R2", ("x", "y")) not in inst

    def test_without_facts(self):
        inst = make({"R1": [("a", "b"), ("c", "d")]})
        reduced = inst.without_facts([Fact("R1", ("a", "b"))])
        assert reduced.tuples("R1") == frozenset({("c", "d")})

    def test_without_absent_fact_ignored(self):
        inst = make({"R1": [("a", "b")]})
        assert inst.without_facts([Fact("R1", ("z", "z"))]) == inst

    def test_with_unknown_relation_rejected(self):
        inst = make({})
        with pytest.raises(InstanceError):
            inst.with_facts([Fact("R9", ("a", "b"))])

    def test_apply_change(self):
        inst = make({"R1": [("a", "b")]})
        changed = inst.apply_change(insertions=[Fact("R2", ("u", "v"))],
                                    deletions=[Fact("R1", ("a", "b"))])
        assert changed.facts() == {Fact("R2", ("u", "v"))}

    def test_replace_relations(self):
        inst = make({"R1": [("a", "b")]})
        replaced = inst.replace_relations({"R1": [("z", "z")]})
        assert replaced.tuples("R1") == frozenset({("z", "z")})


class TestRestrictCombine:
    def test_restrict(self):
        inst = make({"R1": [("a", "b")], "R2": [("c", "d")]})
        restricted = inst.restrict(["R1"])
        assert restricted.facts() == {Fact("R1", ("a", "b"))}
        assert "R2" not in restricted.schema

    def test_combine_disjoint(self):
        left = DatabaseInstance(DatabaseSchema.of({"R1": 2}),
                                {"R1": [("a", "b")]})
        right = DatabaseInstance(DatabaseSchema.of({"S1": 2}),
                                 {"S1": [("c", "d")]})
        combined = left.combine(right)
        assert combined.size() == 2

    def test_combine_overlapping_rejected(self):
        left = DatabaseInstance(DatabaseSchema.of({"R1": 2}))
        right = DatabaseInstance(DatabaseSchema.of({"R1": 2}))
        with pytest.raises(SchemaError):
            left.combine(right)


class TestDunder:
    def test_equality_and_hash(self):
        one = make({"R1": [("a", "b")]})
        two = make({"R1": [("a", "b")]})
        assert one == two
        assert hash(one) == hash(two)
        assert len({one, two}) == 1

    def test_str_sorted(self):
        inst = make({"R1": [("c", "d"), ("a", "b")]})
        assert str(inst) == "{R1(a, b), R1(c, d)}"

    def test_fact_ordering(self):
        facts = sorted([Fact("R2", ("a", "b")), Fact("R1", ("z", "z")),
                        Fact("R1", ("a", "a"))])
        assert [f.relation for f in facts] == ["R1", "R1", "R2"]

    def test_mixed_type_fact_ordering(self):
        assert sorted([Fact("R", (1,)), Fact("R", ("a",))])[0] == \
            Fact("R", (1,))


class TestIndexLayer:
    """The per-relation hash indexes behind the evaluation planner."""

    def test_rows_matching_exact(self):
        inst = make({"R1": [("a", "b"), ("a", "c"), ("b", "b")]})
        assert set(inst.rows_matching("R1", {0: "a"})) == \
            {("a", "b"), ("a", "c")}
        assert set(inst.rows_matching("R1", {0: "a", 1: "b"})) == \
            {("a", "b")}
        assert inst.rows_matching("R1", {0: "zz"}) == []
        assert set(inst.rows_matching("R1", {})) == \
            {("a", "b"), ("a", "c"), ("b", "b")}

    def test_rows_matching_unknown_relation(self):
        with pytest.raises(InstanceError):
            make({}).rows_matching("nope", {0: "a"})

    def test_with_facts_maintains_built_indexes(self):
        inst = make({"R1": [("a", "b")]})
        inst.index("R1").column(0)  # force the column index to exist
        grown = inst.with_facts([Fact("R1", ("a", "c")),
                                 Fact("R2", ("x", "y"))])
        assert set(grown.rows_matching("R1", {0: "a"})) == \
            {("a", "b"), ("a", "c")}
        assert set(grown.rows_matching("R2", {1: "y"})) == {("x", "y")}
        # the parent instance is untouched
        assert set(inst.rows_matching("R1", {0: "a"})) == {("a", "b")}

    def test_without_facts_maintains_built_indexes(self):
        inst = make({"R1": [("a", "b"), ("a", "c")]})
        inst.index("R1").column(0)
        shrunk = inst.without_facts([Fact("R1", ("a", "b")),
                                     Fact("R1", ("z", "z"))])  # absent ok
        assert set(shrunk.rows_matching("R1", {0: "a"})) == {("a", "c")}
        assert set(inst.rows_matching("R1", {0: "a"})) == \
            {("a", "b"), ("a", "c")}

    def test_untouched_relation_shares_index_object(self):
        inst = make({"R1": [("a", "b")], "R2": [("x", "y")]})
        inst.index("R2")
        grown = inst.with_facts([Fact("R1", ("c", "d"))])
        assert grown.index("R2") is inst.index("R2")
        assert grown.index("R1") is not inst.index("R1")

    def test_restrict_carries_indexes(self):
        inst = make({"R1": [("a", "b")], "R2": [("x", "y")]})
        inst.index("R1")
        restricted = inst.restrict(["R1"])
        assert restricted.index("R1") is inst.index("R1")
        assert set(restricted.rows_matching("R1", {0: "a"})) == \
            {("a", "b")}

    def test_with_facts_still_validates(self):
        inst = make({})
        with pytest.raises(InstanceError):
            inst.with_facts([Fact("R1", ("too", "many", "cols"))])
        with pytest.raises(InstanceError):
            inst.with_facts([Fact("nope", ("a",))])
        with pytest.raises(InstanceError):
            inst.replace_relations({"R1": [("a",)]})
