"""Observability over a live cluster: traced queries + GetStatus.

Spawns Example 1 as three real server processes, answers one traced
query, and then asks every unit what it is doing.  This is the
acceptance smoke for the tentpole: one reassembled span tree covering
every hop of the gather, and live metrics scraped from each process
plus the cluster-wide merge.
"""

import pytest

from repro.core import PeerQuerySession
from repro.obs import TraceCollector
from repro.wire import fetch_status, open_wire_session
from repro.workloads import example1_system

QUERY = "q(X, Y) := R1(X, Y)"


@pytest.fixture(scope="module")
def traced_cluster():
    system = example1_system()
    with open_wire_session(system, tracing=True) as session:
        result = session.answer("P1", QUERY)
        yield session, result


class TestTracedQuery:
    def test_answers_identical_to_local(self, traced_cluster):
        _session, result = traced_cluster
        expected = PeerQuerySession(example1_system()).answer(
            "P1", QUERY)
        assert result.ok
        assert result.answers == expected.answers
        assert result.solution_count == expected.solution_count

    def test_span_tree_covers_every_hop(self, traced_cluster):
        _session, result = traced_cluster
        collector = TraceCollector(result.trace)
        roots = collector.roots()
        assert len(roots) == 1
        # client -> server -> node -> gather -> neighbour fetches
        assert collector.depth() >= 2
        peers = {span.peer for span in collector.spans}
        assert {"P1", "P2", "P3"} <= peers
        names = {span.name for span in collector.spans}
        assert any(name.startswith("serve:") for name in names)
        assert "queue-wait" in names
        path = collector.critical_path()
        assert path[0] is roots[0]
        # nested spans: every step of the critical path fits inside
        # its parent's duration (plus scheduling slack)
        for parent, child in zip(path, path[1:]):
            assert child.duration <= parent.duration + 0.5

    def test_root_span_consistent_with_wall_time(self, traced_cluster):
        _session, result = traced_cluster
        root = TraceCollector(result.trace).roots()[0]
        assert 0.0 < root.duration <= result.elapsed + 0.25


class TestStatusScrape:
    def test_every_unit_answers_get_status(self, traced_cluster):
        session, _result = traced_cluster
        addresses = session.supervisor.addresses()
        assert set(addresses) == {"P1", "P2", "P3"}
        for unit, address in addresses.items():
            status = fetch_status(address)
            assert status["unit"] == unit
            counters = status["metrics"]["counters"]
            assert counters["server.requests_served"] > 0
            assert counters["server.frames_in"] > 0
            assert counters["server.bytes_in"] > 0
            assert counters["server.bytes_out"] > 0
            assert counters["server.connections_accepted"] > 0

    def test_cluster_merge_adds_counters(self, traced_cluster):
        session, _result = traced_cluster
        scraped = session.supervisor.metrics()
        assert set(scraped["units"]) == {"P1", "P2", "P3"}
        merged = scraped["cluster"]
        per_unit_served = [
            status["metrics"]["counters"]["server.requests_served"]
            for status in scraped["units"].values()]
        assert merged["counters"]["server.requests_served"] == \
            sum(per_unit_served)
        # the traced answer exercised the servers' latency histograms
        summaries = merged["summaries"]
        assert summaries["server.execute_s"]["count"] > 0
        assert summaries["server.queue_wait_s"]["count"] > 0

    def test_scrape_degrades_per_unit_when_one_dies(self, traced_cluster):
        session, _result = traced_cluster
        # an address nobody listens on: the scrape must degrade to a
        # typed per-unit error, not raise
        from repro.net.errors import NetworkError
        from repro.wire import free_port
        with pytest.raises(NetworkError):
            fetch_status(f"127.0.0.1:{free_port()}", timeout=2.0)
