"""Tracing end-to-end on the in-process network runtime.

The observability contract: turning tracing on changes *what you can
see*, never *what you get* — answers stay tuple-for-tuple identical to
the untraced (and local) runs, while the result grows a reassembled
span tree covering every hop plus a per-phase timing breakdown whose
numbers are consistent with the measured wall time.
"""

import pytest

from repro.core import PeerQuerySession
from repro.net import NetworkSession, open_session
from repro.obs import TraceCollector
from repro.workloads import example1_system, peer_chain_system

QUERY = "q(X, Y) := R1(X, Y)"


@pytest.fixture()
def traced_result():
    with NetworkSession(example1_system(), tracing=True) as session:
        yield session.answer("P1", QUERY)


class TestAnswerParity:
    def test_traced_answers_match_untraced_and_local(self):
        system = example1_system()
        local = PeerQuerySession(system).answer("P1", QUERY)
        with NetworkSession(system, tracing=False) as plain, \
                NetworkSession(system, tracing=True) as traced:
            untraced = plain.answer("P1", QUERY)
            result = traced.answer("P1", QUERY)
        assert result.answers == untraced.answers == local.answers
        assert result.solution_count == local.solution_count
        assert result.method_used == local.method_used

    def test_untraced_results_carry_no_trace(self):
        with NetworkSession(example1_system()) as session:
            result = session.answer("P1", QUERY)
        assert result.trace == ()
        assert result.timings is None

    def test_open_session_forwards_the_flag(self):
        with open_session(example1_system(), network=True,
                          tracing=True) as session:
            result = session.answer("P1", QUERY)
        assert result.trace


class TestSpanTree:
    def test_tree_covers_every_hop(self, traced_result):
        collector = TraceCollector(traced_result.trace)
        roots = collector.roots()
        assert len(roots) == 1
        assert roots[0].name == "answer"
        names = {span.name for span in collector.spans}
        assert "gather" in names
        assert "eval" in names
        # Example 1: P1 gathers from both neighbours
        peers = {span.peer for span in collector.spans}
        assert {"P1", "P2", "P3"} <= peers
        assert collector.depth() >= 3

    def test_one_trace_id_and_linked_parentage(self, traced_result):
        trace_ids = {span.trace_id for span in traced_result.trace}
        assert len(trace_ids) == 1
        known = {span.span_id for span in traced_result.trace}
        dangling = [span for span in traced_result.trace
                    if span.parent_span_id
                    and span.parent_span_id not in known]
        assert not dangling

    def test_critical_path_starts_at_the_root(self, traced_result):
        collector = TraceCollector(traced_result.trace)
        path = collector.critical_path()
        assert path and path[0].name == "answer"
        assert len(path) >= 2
        assert collector.render().startswith("* answer@P1")

    def test_timings_consistent_with_wall_time(self, traced_result):
        timings = traced_result.timings
        assert set(timings) == {"gather_s", "eval_s", "total_s"}
        assert timings["gather_s"] >= 0.0
        assert timings["eval_s"] >= 0.0
        assert timings["gather_s"] + timings["eval_s"] <= \
            timings["total_s"] + 1e-6
        # the root span and the result agree on the elapsed wall time
        collector = TraceCollector(traced_result.trace)
        root = collector.roots()[0]
        assert root.duration == pytest.approx(timings["total_s"],
                                              rel=0.5, abs=0.25)
        assert timings["total_s"] <= traced_result.elapsed + 0.25

    def test_transitive_chain_traces_the_relay(self):
        # a 4-peer chain forces multi-hop relays; every relay hop must
        # appear in the one tree
        system = peer_chain_system(4, n_tuples=2)
        with NetworkSession(system, tracing=True) as session:
            result = session.answer("P0", "q(X, Y) := T0(X, Y)")
        assert result.ok
        collector = TraceCollector(result.trace)
        peers = {span.peer for span in collector.spans}
        assert {"P0", "P1", "P2", "P3"} <= peers
        assert collector.depth() >= 4
