"""Unit coverage for :mod:`repro.obs.metrics`.

Histogram bucket mechanics (percentile interpolation, overflow bucket,
merge), the registry's three instrument kinds under concurrency, and
cross-process snapshot merging with recomputed summaries.
"""

import json
import threading

import pytest

from repro.obs import (
    LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)


class TestHistogram:
    def test_empty(self):
        hist = Histogram()
        assert hist.percentile(50) == 0.0
        assert hist.summary() == {"count": 0, "sum": 0.0, "mean": 0.0,
                                  "p50": 0.0, "p90": 0.0, "p99": 0.0}

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram([1.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])

    def test_percentiles_land_in_the_right_bucket(self):
        hist = Histogram([1.0, 10.0, 100.0])
        for value in [0.5] * 50 + [5.0] * 40 + [50.0] * 10:
            hist.observe(value)
        assert 0.0 < hist.percentile(25) <= 1.0
        assert 1.0 < hist.percentile(75) <= 10.0
        assert 10.0 < hist.percentile(99) <= 100.0

    def test_overflow_reports_the_highest_bound(self):
        hist = Histogram([1.0, 10.0])
        hist.observe(1e6)
        assert hist.percentile(99) == 10.0
        assert hist.count == 1 and hist.total == 1e6

    def test_merge_is_bucketwise(self):
        a, b = Histogram(), Histogram()
        for v in (0.001, 0.02):
            a.observe(v)
        for v in (0.3, 4.0):
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.total == pytest.approx(4.321)
        with pytest.raises(ValueError):
            a.merge(Histogram([1.0]))

    def test_dict_round_trip(self):
        hist = Histogram()
        for v in (0.002, 0.002, 0.7):
            hist.observe(v)
        revived = Histogram.from_dict(
            json.loads(json.dumps(hist.to_dict())))
        assert revived.counts == hist.counts
        assert revived.count == hist.count
        assert revived.summary() == hist.summary()

    def test_merged_percentiles_match_single_histogram(self):
        parts = [Histogram() for _ in range(3)]
        whole = Histogram()
        values = [0.001 * n for n in range(1, 301)]
        for n, v in enumerate(values):
            parts[n % 3].observe(v)
            whole.observe(v)
        merged = parts[0]
        merged.merge(parts[1])
        merged.merge(parts[2])
        assert merged.summary() == whole.summary()


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("requests")
        registry.inc("requests", 4)
        registry.gauge("pool", 7)
        registry.observe("latency_s", 0.02)
        assert registry.counter("requests") == 5
        assert registry.gauge_value("pool") == 7
        assert registry.summary("latency_s")["count"] == 1
        assert registry.summary("nope") is None
        assert registry.counter("nope") == 0

    def test_snapshot_is_json_safe_and_detached(self):
        registry = MetricsRegistry()
        registry.inc("n")
        registry.observe("h", 0.1)
        snap = json.loads(json.dumps(registry.snapshot()))
        registry.inc("n")
        assert snap["counters"]["n"] == 1
        assert snap["histograms"]["h"]["count"] == 1
        assert list(snap) == ["counters", "gauges", "histograms"]

    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()

        def pump():
            for _ in range(500):
                registry.inc("hits")
                registry.observe("lat", 0.001)

        threads = [threading.Thread(target=pump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("hits") == 4000
        assert registry.summary("lat")["count"] == 4000


class TestMergeSnapshots:
    def test_counters_and_gauges_add_histograms_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("served", 3)
        a.gauge("pool", 2)
        a.observe("lat", 0.01)
        b.inc("served", 4)
        b.inc("shed")
        b.gauge("pool", 5)
        b.observe("lat", 2.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {"served": 7, "shed": 1}
        assert merged["gauges"] == {"pool": 7.0}
        assert merged["summaries"]["lat"]["count"] == 2
        assert merged["histograms"]["lat"]["count"] == 2

    def test_garbage_entries_are_skipped(self):
        a = MetricsRegistry()
        a.inc("n")
        merged = merge_snapshots([a.snapshot(), None, "nope", {}])
        assert merged["counters"] == {"n": 1}

    def test_default_bounds_are_the_shared_seconds_scale(self):
        # every process shares these bounds, or snapshots stop merging
        assert LATENCY_BUCKETS_S[0] == 0.0005
        assert LATENCY_BUCKETS_S[-1] == 30.0
        assert list(LATENCY_BUCKETS_S) == sorted(LATENCY_BUCKETS_S)
