"""Unit coverage for :mod:`repro.obs.trace`.

Contexts (truthiness, root/descend), span wire round-trips with the
omit-when-empty vocabulary, the bounded thread-safe recorder, and the
collector's tree analysis — orphan promotion, depth, critical path,
cycle tolerance, render markers.
"""

import threading

from repro.obs import (
    Span,
    SpanRecorder,
    TraceCollector,
    TraceContext,
    new_id,
    span_bytes,
)


def make_span(span_id, parent="", *, name="op", peer="P1",
              start=0.0, duration=1.0, trace_id="t1", note=""):
    return Span(trace_id, span_id, parent, name, peer, start,
                duration, note)


class TestContextAndIds:
    def test_new_ids_are_distinct_hex(self):
        ids = {new_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_empty_context_is_falsy_tracing_off(self):
        assert not TraceContext()
        assert TraceContext(trace_id="t1")

    def test_root_then_descend_links_parentage(self):
        root = TraceContext.root()
        assert root and root.span_id == ""
        inner = root.descend("s1")
        assert inner.trace_id == root.trace_id
        assert inner.span_id == "s1"
        assert inner.parent_span_id == root.span_id
        deeper = inner.descend("s2")
        assert deeper.parent_span_id == "s1"


class TestSpanDicts:
    def test_round_trip(self):
        span = make_span("s1", "s0", note="déjà", peer="数")
        assert Span.from_dict(span.to_dict()) == span

    def test_empty_optionals_are_omitted(self):
        data = make_span("s1").to_dict()
        assert "parent_span_id" not in data
        assert "note" not in data

    def test_span_bytes_scales_with_text(self):
        short = make_span("s1")
        long = make_span("s1", name=short.name + "x" * 100)
        assert span_bytes([long]) == span_bytes([short]) + 100
        assert span_bytes([]) == 0


class TestSpanRecorder:
    def test_drain_pops_exactly_once(self):
        recorder = SpanRecorder()
        recorder.record(make_span("s1"))
        recorder.record(make_span("s2", trace_id="t2"))
        assert len(recorder) == 2
        drained = recorder.drain("t1")
        assert [s.span_id for s in drained] == ["s1"]
        assert recorder.drain("t1") == ()
        assert len(recorder) == 1

    def test_untraced_spans_are_ignored(self):
        recorder = SpanRecorder()
        recorder.record(make_span("s1", trace_id=""))
        assert len(recorder) == 0

    def test_bounded_evicts_oldest_trace(self):
        recorder = SpanRecorder(max_traces=2)
        for n in range(3):
            recorder.record(make_span(f"s{n}", trace_id=f"t{n}"))
        assert recorder.drain("t0") == ()
        assert recorder.drain("t1") and recorder.drain("t2")

    def test_concurrent_recording_loses_nothing(self):
        recorder = SpanRecorder()

        def pump(worker):
            for n in range(100):
                recorder.record(make_span(f"w{worker}-s{n}"))

        threads = [threading.Thread(target=pump, args=(w,))
                   for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(recorder.drain("t1")) == 800


def fan_out_trace():
    """root -> gather -> {fetch-a (slow, with child), fetch-b}."""
    return [
        make_span("root", duration=10.0, name="answer"),
        make_span("g", "root", duration=8.0, name="gather"),
        make_span("fa", "g", duration=6.0, name="fetch:a", peer="P2"),
        make_span("fb", "g", duration=2.0, name="fetch:b", peer="P3"),
        make_span("srv", "fa", duration=5.0, name="serve", peer="P2"),
    ]


class TestTraceCollector:
    def test_tree_shape_depth_and_children(self):
        collector = TraceCollector(fan_out_trace())
        roots = collector.roots()
        assert [s.span_id for s in roots] == ["root"]
        assert {s.span_id for s in collector.children("g")} == \
            {"fa", "fb"}
        assert collector.depth() == 4

    def test_critical_path_descends_by_duration(self):
        collector = TraceCollector(fan_out_trace())
        assert [s.span_id for s in collector.critical_path()] == \
            ["root", "g", "fa", "srv"]

    def test_orphans_are_promoted_to_roots(self):
        # the parent "lost" was never collected (e.g. an old peer that
        # recorded nothing); its child must surface, not vanish
        collector = TraceCollector([
            make_span("root", duration=3.0),
            make_span("orphan", "lost", duration=1.0),
        ])
        assert [s.span_id for s in collector.roots()] == \
            ["root", "orphan"]
        assert collector.depth() == 1

    def test_empty_collector_is_calm(self):
        collector = TraceCollector()
        assert collector.roots() == []
        assert collector.critical_path() == []
        assert collector.depth() == 0
        assert collector.render() == ""

    def test_cycles_do_not_hang(self):
        # corrupt links below a root — a second span reusing span id
        # "a" parented under "a"'s own subtree — must terminate in
        # every walk instead of recursing forever
        collector = TraceCollector([
            make_span("root", duration=5.0),
            make_span("a", "root", duration=3.0),
            make_span("a", "a", duration=1.0, name="dup"),
        ])
        assert collector.depth() == 3
        assert len(collector.critical_path()) == 3
        assert collector.render()

    def test_render_marks_critical_path_and_indents(self):
        rendered = TraceCollector(fan_out_trace()).render()
        lines = rendered.splitlines()
        assert lines[0].startswith("* answer@P1")
        assert any(line.startswith("    * fetch:a@P2")
                   for line in lines)
        assert any(line.startswith("    - fetch:b@P3")
                   for line in lines)
        assert any(line.startswith("      * serve@P2")
                   for line in lines)
        assert "10000.000 ms" in lines[0]

    def test_render_shows_notes(self):
        collector = TraceCollector(
            [make_span("s1", note="attempt 2/3")])
        assert "[attempt 2/3]" in collector.render()
