"""The wire differential harness: live processes ≡ local session.

The correctness contract of the cross-process runtime is the same as
the in-process network's, one level harder: running every peer as a
real OS process — serialization, sockets, independent interpreters —
changes the *execution*, never the *answers*.  Every paper workload and
a seeded family of ≥20 synthetic systems must come back tuple-for-tuple
identical to :class:`~repro.core.session.PeerQuerySession`: same
answers, same ``solution_count``, same resolved ``method_used``.

Fault drills ride along: killing a peer process mid-run must surface a
typed ``QueryResult.error`` (no hang, no traceback), and a ``data_dir``
cluster restarted from disk must re-answer identically while re-syncing
by versioned deltas instead of full relations.
"""

import itertools
import time

import pytest

from repro.core import PeerQuerySession
from repro.relational.instance import Fact
from repro.wire import ClusterSupervisor, RemoteNetworkSession, open_wire_session
from repro.workloads import (
    conflict_chain_system,
    example1_system,
    example4_system,
    peer_chain_system,
    referential_system,
    section31_system,
    topology_system,
)

#: 3 topologies x 7 seeds = 21 seeded synthetic systems (>= 20)
SEEDS = range(7)
TOPOLOGIES = ("chain", "star", "random")
SYNTHETIC_CASES = list(itertools.product(TOPOLOGIES, SEEDS))


def assert_wire_equivalent(system, peer, queries, *,
                           methods=("auto",), semantics=("certain",)):
    local = PeerQuerySession(system)
    with open_wire_session(system) as session:
        for query, method, kind in itertools.product(
                queries, methods, semantics):
            expected = local.answer(peer, query, method=method,
                                    semantics=kind)
            actual = session.answer(peer, query, method=method,
                                    semantics=kind)
            assert actual.ok, (query, method, kind, actual.error)
            assert actual.answers == expected.answers, \
                (query, method, kind)
            assert actual.solution_count == expected.solution_count, \
                (query, method, kind)
            assert actual.method_used == expected.method_used, \
                (query, method, kind)


class TestPaperWorkloads:
    def test_example1(self):
        assert_wire_equivalent(
            example1_system(), "P1",
            ["q(X, Y) := R1(X, Y)", "q(X) := exists Y R1(X, Y)"],
            methods=("auto", "asp", "model", "rewrite"),
        )

    def test_example1_possible_semantics(self):
        assert_wire_equivalent(
            example1_system(), "P1", ["q(X, Y) := R1(X, Y)"],
            methods=("asp", "model"),
            semantics=("certain", "possible"),
        )

    def test_section31(self):
        assert_wire_equivalent(
            section31_system(), "P",
            ["q(X, Y) := R2(X, Y)", "q(X, Y) := R1(X, Y)"],
            methods=("auto", "asp", "lav"),
        )

    def test_example4_direct_and_transitive(self):
        assert_wire_equivalent(
            example4_system(), "P", ["q(X, Y) := R2(X, Y)"],
            methods=("auto", "asp", "transitive"),
        )

    def test_conflict_chain(self):
        assert_wire_equivalent(
            conflict_chain_system(3, n_clean=2), "P1",
            ["q(X, Y) := R1(X, Y)"],
            methods=("auto", "asp"),
            semantics=("certain", "possible"),
        )

    def test_referential(self):
        assert_wire_equivalent(
            referential_system(2, n_witnesses=2, n_satisfied=1), "P",
            ["q(X, Y) := R2(X, Y)"],
        )

    def test_peer_chain_transitive(self):
        assert_wire_equivalent(
            peer_chain_system(3, n_tuples=2), "P0",
            ["q(X, Y) := T0(X, Y)"],
            methods=("auto", "transitive"),
        )


class TestSeededSynthetic:
    @pytest.mark.parametrize("topology,seed", SYNTHETIC_CASES)
    def test_seeded_system(self, topology, seed):
        system = topology_system(3, topology=topology, n_tuples=3,
                                 conflicts=(seed % 2), extra_edges=1,
                                 seed=seed)
        assert_wire_equivalent(
            system, "P0",
            ["q(X, Y) := R0(X, Y)", "q(X) := exists Y R0(X, Y)"],
        )


class TestNonRootPeers:
    def test_every_peer_of_example1(self):
        system = example1_system()
        local = PeerQuerySession(system)
        with open_wire_session(system) as session:
            for peer, relation in (("P1", "R1"), ("P2", "R2"),
                                   ("P3", "R3")):
                query = f"q(X, Y) := {relation}(X, Y)"
                assert session.answer(peer, query).answers == \
                    local.answer(peer, query).answers


class TestKilledPeerProcesses:
    """Killing a process mid-run: typed error, bounded time, no hang."""

    def test_killed_neighbour_yields_typed_error(self):
        system = topology_system(4, topology="star", n_tuples=4,
                                 seed=13)
        with ClusterSupervisor(system) as supervisor:
            session = RemoteNetworkSession(
                supervisor.addresses(), retries=1, timeout=30.0,
                request_timeout=10.0, connect_timeout=1.0)
            try:
                supervisor.kill("P2")  # a leaf the root must gather
                start = time.perf_counter()
                result = session.answer("P0", "q(X, Y) := R0(X, Y)")
                wall = time.perf_counter() - start
                assert result.failed
                assert result.error.code in ("peer-unreachable",
                                             "network")
                assert wall < 60.0  # typed failure, not a hang
            finally:
                session.close()

    def test_killed_root_yields_typed_error(self):
        system = topology_system(3, topology="chain", n_tuples=3,
                                 seed=5)
        with ClusterSupervisor(system) as supervisor:
            session = RemoteNetworkSession(
                supervisor.addresses(), retries=1, timeout=30.0,
                request_timeout=10.0, connect_timeout=1.0)
            try:
                first = session.answer("P0", "q(X, Y) := R0(X, Y)")
                assert first.ok, first.error
                supervisor.kill("P0")
                start = time.perf_counter()
                result = session.answer("P0", "q(X, Y) := R0(X, Y)")
                wall = time.perf_counter() - start
                assert result.failed
                assert result.error.code == "peer-unreachable"
                assert wall < 60.0
            finally:
                session.close()


class TestDurableClusterRestart:
    def test_restart_reanswers_identically_with_delta_sync(self, tmp_path):
        query = "q(X, Y) := R0(X, Y)"
        base = topology_system(4, topology="star", n_tuples=12, seed=11)
        updated = base.with_global_instance(
            base.global_instance().with_facts(
                [Fact("R1", ("k0", "freshly-synced"))]))

        with open_wire_session(base, data_dir=tmp_path) as session:
            cold = session.answer("P0", query)
            assert cold.ok, cold.error
        # graceful stop (SIGTERM): servers flushed caches + fetch state

        with open_wire_session(updated, data_dir=tmp_path) as session:
            warm = session.answer("P0", query)
            assert warm.ok, warm.error
        with open_wire_session(updated) as session:
            full = session.answer("P0", query)
            assert full.ok, full.error

        local = PeerQuerySession(updated).answer("P0", query)
        assert warm.answers == local.answers
        assert warm.solution_count == local.solution_count
        assert warm.method_used == local.method_used
        # the restarted gather named known versions and got deltas back:
        # it must move measurably fewer (exact) wire bytes than the
        # cache-less full re-gather of the same updated system
        assert warm.exchange.bytes_estimate < \
            0.8 * full.exchange.bytes_estimate

    def test_pure_warm_restart_answers_from_disk(self, tmp_path):
        query = "q(X, Y) := R0(X, Y)"
        system = topology_system(3, topology="chain", n_tuples=4,
                                 seed=3)
        with open_wire_session(system, data_dir=tmp_path) as session:
            cold = session.answer("P0", query)
            assert cold.ok
        with open_wire_session(system, data_dir=tmp_path) as session:
            warm = session.answer("P0", query)
            assert warm.ok
            assert warm.from_cache
            assert warm.exchange.requests == 0
            assert (warm.answers, warm.solution_count,
                    warm.method_used) == (cold.answers,
                                          cold.solution_count,
                                          cold.method_used)
