"""SocketTransport + PeerServer behaviour over real localhost TCP.

These tests run the servers *in-process* (``PeerServer.start()`` on a
daemon thread) so they exercise genuine sockets, framing, handshakes,
pooling, and timeouts without paying process spawn time — the
cross-process guarantees live in ``test_wire_differential.py``.
"""

import socket
import threading
import time

import pytest

from repro.core import PeerQuerySession
from repro.net import MessageDropped, NetworkError, PeerDown
from repro.net.protocol import Answer, AnswerQuery, FetchRelation
from repro.wire import (
    PeerServer,
    RemoteNetworkSession,
    SocketTransport,
    WireProtocolError,
    free_port,
)
from repro.wire.codec import (
    encode_frame,
    encode_message,
    hello_frame,
    message_to_dict,
    read_frame,
)
from repro.workloads import example1_system


@pytest.fixture()
def example1_servers():
    """All of example 1's peers served in-process over real sockets."""
    system = example1_system()
    addresses = {name: f"127.0.0.1:{free_port()}"
                 for name in system.peers}
    servers = [
        PeerServer(system, name,
                   port=int(addresses[name].rsplit(":", 1)[1]),
                   addresses=addresses).start()
        for name in system.peers
    ]
    try:
        yield system, addresses
    finally:
        for server in servers:
            server.shutdown()


class _ScriptedServer:
    """A hand-rolled one-connection server for fault scenarios."""

    def __init__(self, behaviour: str, protocol_version: int = 1):
        self.behaviour = behaviour
        self.protocol_version = protocol_version
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(4)
        self.port = self.listener.getsockname()[1]
        self.accepted = 0
        self.last_frame_sent = b""
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while True:
            try:
                connection, _ = self.listener.accept()
            except OSError:
                return
            self.accepted += 1
            threading.Thread(target=self._serve_one,
                             args=(connection,), daemon=True).start()

    def _serve_one(self, connection):
        stream = connection.makefile("rb")
        try:
            read_frame(stream)  # the client hello
            # advertise the name clients dial ("S"): the transport now
            # verifies the handshake identity against the dialed unit
            hello = hello_frame("S")
            hello["protocol"] = self.protocol_version
            connection.sendall(encode_frame(hello))
            while True:
                frame = read_frame(stream)
                if frame is None:
                    return
                if self.behaviour == "silent":
                    time.sleep(30)
                    return
                if self.behaviour == "hangup":
                    connection.close()
                    return
                reply = Answer(
                    sender="scripted", target=frame["sender"],
                    in_reply_to=frame["correlation_id"],
                    payload=(("a", "b"),), version="v1",
                    bytes_estimate=7)
                self.last_frame_sent = encode_frame(
                    message_to_dict(reply))
                connection.sendall(self.last_frame_sent)
        except (OSError, WireProtocolError):
            pass

    def close(self):
        self.listener.close()


# ---------------------------------------------------------------------------
# Round trips and accounting
# ---------------------------------------------------------------------------

def test_fetch_over_socket_returns_rows(example1_servers):
    system, addresses = example1_servers
    transport = SocketTransport(addresses, local_name="test")
    try:
        reply = transport.request(FetchRelation(
            sender="test", target="P2", relation="R2"))
        assert isinstance(reply, Answer)
        assert frozenset(reply.payload) == \
            system.instances["P2"].tuples("R2")
        assert reply.version  # stamped with the content version
    finally:
        transport.close()


def test_bytes_estimate_is_the_exact_frame_length():
    server = _ScriptedServer("echo")
    transport = SocketTransport({"S": f"127.0.0.1:{server.port}"})
    try:
        reply = transport.request(FetchRelation(
            sender="client", target="S", relation="R"))
        assert reply.bytes_estimate == len(server.last_frame_sent)
    finally:
        transport.close()
        server.close()


def test_connection_pooling_reuses_one_connection(example1_servers):
    _system, addresses = example1_servers
    transport = SocketTransport(addresses, local_name="test")
    try:
        for _ in range(3):
            transport.request(FetchRelation(
                sender="test", target="P2", relation="R2"))
        assert transport.pooled_connections("P2") == 1
    finally:
        transport.close()


def test_scripted_server_sees_a_single_connection():
    server = _ScriptedServer("echo")
    transport = SocketTransport({"S": f"127.0.0.1:{server.port}"})
    try:
        for _ in range(4):
            transport.request(FetchRelation(
                sender="client", target="S", relation="R"))
        assert server.accepted == 1
    finally:
        transport.close()
        server.close()


# ---------------------------------------------------------------------------
# Typed failures: down peers, timeouts, handshake mismatch
# ---------------------------------------------------------------------------

def test_unknown_peer_raises_peer_down():
    transport = SocketTransport({})
    with pytest.raises(PeerDown):
        transport.request(FetchRelation(sender="c", target="ghost",
                                        relation="R"))


def test_nobody_listening_raises_peer_down():
    transport = SocketTransport({"S": f"127.0.0.1:{free_port()}"},
                                connect_timeout=0.5)
    with pytest.raises(PeerDown):
        transport.request(FetchRelation(sender="c", target="S",
                                        relation="R"))


def test_read_timeout_raises_message_dropped():
    server = _ScriptedServer("silent")
    transport = SocketTransport({"S": f"127.0.0.1:{server.port}"},
                                timeout=0.3)
    try:
        with pytest.raises(MessageDropped):
            transport.request(FetchRelation(sender="c", target="S",
                                            relation="R"))
    finally:
        transport.close()
        server.close()


def test_mid_request_hangup_is_retryable():
    server = _ScriptedServer("hangup")
    transport = SocketTransport({"S": f"127.0.0.1:{server.port}"})
    try:
        with pytest.raises(MessageDropped):
            transport.request(FetchRelation(sender="c", target="S",
                                            relation="R"))
    finally:
        transport.close()
        server.close()


def test_protocol_version_mismatch_is_typed_not_retryable():
    server = _ScriptedServer("echo", protocol_version=999)
    transport = SocketTransport({"S": f"127.0.0.1:{server.port}"})
    try:
        with pytest.raises(WireProtocolError, match="version mismatch"):
            transport.request(FetchRelation(sender="c", target="S",
                                            relation="R"))
    finally:
        transport.close()
        server.close()


def test_server_rejects_client_from_another_protocol(example1_servers):
    """A mis-versioned *client* hello gets a typed failure frame back
    (the server replies with its own hello first, so the client can
    also see the server's version)."""
    _system, addresses = example1_servers
    address = addresses["P1"]
    host, port = address.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=5) as sock:
        stream = sock.makefile("rb")
        bad_hello = hello_frame("time-traveller")
        bad_hello["protocol"] = 999
        sock.sendall(encode_frame(bad_hello))
        server_hello = read_frame(stream)
        assert server_hello["protocol"] == 1
        failure = read_frame(stream)
        assert failure["type"] == "failure"
        assert failure["code"] == "protocol"


# ---------------------------------------------------------------------------
# The remote session against in-process servers
# ---------------------------------------------------------------------------

def test_remote_session_matches_local_answers(example1_servers):
    system, addresses = example1_servers
    local = PeerQuerySession(system)
    with RemoteNetworkSession(addresses) as session:
        for query in ("q(X, Y) := R1(X, Y)",
                      "q(X) := exists Y R1(X, Y)"):
            expected = local.answer("P1", query)
            actual = session.answer("P1", query)
            assert actual.ok, actual.error
            assert actual.answers == expected.answers
            assert actual.solution_count == expected.solution_count
            assert actual.method_used == expected.method_used


def test_remote_session_bad_query_raises_like_local(example1_servers):
    """Unparseable query text fails on the *client*, exactly as it does
    for the in-process sessions — before any frame is sent."""
    from repro.relational.errors import RelationalError
    _system, addresses = example1_servers
    with RemoteNetworkSession(addresses) as session:
        with pytest.raises(RelationalError):
            session.answer("P1", "q(X := broken")


def test_server_answers_bad_request_typed(example1_servers):
    """A foreign client shipping broken query text gets a typed
    bad-request failure, not a dead connection."""
    from repro.net.protocol import Failure
    _system, addresses = example1_servers
    transport = SocketTransport(addresses, local_name="foreign")
    try:
        reply = transport.request(AnswerQuery(
            sender="foreign", target="P1", query="q(X := broken"))
        assert isinstance(reply, Failure)
        assert reply.code == "bad-request"
    finally:
        transport.close()


def test_remote_session_unknown_peer_raises(example1_servers):
    _system, addresses = example1_servers
    with RemoteNetworkSession(addresses) as session:
        with pytest.raises(NetworkError, match="unknown peer"):
            session.answer("P9", "q(X, Y) := R1(X, Y)")


def test_remote_session_deadline_expires_typed():
    server = _ScriptedServer("silent")
    session = RemoteNetworkSession(
        {"S": f"127.0.0.1:{server.port}"},
        timeout=0.5, request_timeout=0.2, retries=50)
    try:
        start = time.perf_counter()
        result = session.answer("S", "q(X, Y) := R1(X, Y)")
        wall = time.perf_counter() - start
        assert result.failed
        assert result.error.code == "deadline-exceeded"
        assert wall < 5.0  # no hang: budget + one request timeout
    finally:
        session.close()
        server.close()


def test_answer_many_in_order(example1_servers):
    system, addresses = example1_servers
    local = PeerQuerySession(system)
    with RemoteNetworkSession(addresses) as session:
        results = session.answer_many([
            ("P1", "q(X, Y) := R1(X, Y)"),
            ("P2", "q(X, Y) := R2(X, Y)"),
            ("P3", "q(X, Y) := R3(X, Y)"),
        ])
        assert [r.ok for r in results] == [True, True, True]
        for result, (peer, relation) in zip(
                results, (("P1", "R1"), ("P2", "R2"), ("P3", "R3"))):
            query = f"q(X, Y) := {relation}(X, Y)"
            assert result.answers == \
                local.answer(peer, query).answers


# ---------------------------------------------------------------------------
# Pool staleness: a server restart under pooled connections
# ---------------------------------------------------------------------------

def _fill_pool(transport, target, width=3):
    """Issue ``width`` concurrent requests so the pool holds that many
    handshaken connections when they all come back."""
    barrier = threading.Barrier(width)
    errors = []

    def worker():
        try:
            barrier.wait(timeout=10)
            transport.request(FetchRelation(
                sender="test", target=target, relation="R2"))
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(width)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors


def test_restarted_server_under_pool_is_retryable_and_flushes():
    """A killed-and-restarted server must never hang or tear a frame:
    either the reader threads already noticed the EOF (the stale pool
    self-healed and the request just succeeds against the new server),
    or the request races the discovery and surfaces a *retryable*
    ``MessageDropped`` that condemns the whole stale pool, so the
    retry dials fresh."""
    system = example1_system()
    port = free_port()
    address = {"P2": f"127.0.0.1:{port}"}
    first = PeerServer(system, "P2", port=port).start()
    transport = SocketTransport(address, local_name="test",
                                timeout=10.0)
    try:
        _fill_pool(transport, "P2", width=3)
        assert transport.pooled_connections("P2") == 3
        first.shutdown()
        second = PeerServer(system, "P2", port=port).start()
        try:
            start = time.perf_counter()
            try:
                reply = transport.request(FetchRelation(
                    sender="test", target="P2", relation="R2"))
            except MessageDropped:
                # raced the readers: typed, retryable, and the stale
                # siblings are all flushed with it
                assert transport.pooled_connections("P2") == 0
                reply = transport.request(FetchRelation(
                    sender="test", target="P2", relation="R2"))
            assert time.perf_counter() - start < 5.0  # no hang
            assert isinstance(reply, Answer)
            assert frozenset(reply.payload) == \
                system.instances["P2"].tuples("R2")
        finally:
            second.shutdown()
    finally:
        transport.close()


def test_session_retries_transparently_over_restarted_server():
    """At the session level the restart is invisible: the built-in
    retry budget absorbs the stale-pool failure."""
    system = example1_system()
    port = free_port()
    address = {"P2": f"127.0.0.1:{port}"}
    first = PeerServer(system, "P2", port=port).start()
    session = RemoteNetworkSession(address, retries=1,
                                   request_timeout=10.0)
    try:
        warm = session.answer("P2", "q(X, Y) := R2(X, Y)")
        assert warm.ok, warm.error
        first.shutdown()
        second = PeerServer(system, "P2", port=port).start()
        try:
            again = session.answer("P2", "q(X, Y) := R2(X, Y)")
            assert again.ok, again.error
            assert again.answers == warm.answers
        finally:
            second.shutdown()
    finally:
        session.close()
