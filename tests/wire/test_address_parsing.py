"""Address parsing: IPv4, IPv6 brackets, and the ambiguous forms."""

import pytest

from repro.wire import format_address, parse_address
from repro.wire.codec import WireProtocolError


def test_ipv4_host_port():
    assert parse_address("127.0.0.1:8080") == ("127.0.0.1", 8080)


def test_hostname_port():
    assert parse_address("db.example.org:9") == ("db.example.org", 9)


def test_tuple_passthrough_normalises():
    assert parse_address(("localhost", "123")) == ("localhost", 123)


def test_bracketed_ipv6_literal():
    assert parse_address("[::1]:8080") == ("::1", 8080)


def test_bracketed_full_ipv6_literal():
    assert parse_address("[2001:db8::17]:47") == ("2001:db8::17", 47)


def test_bare_ipv6_is_rejected_as_ambiguous():
    # "::1:8080" reads as host="::1" port=8080 AND host="::1:80"
    # port=80; a naive right-split silently picks one, so reject
    with pytest.raises(WireProtocolError, match="ambiguous"):
        parse_address("::1:8080")


def test_bracketed_without_port_is_rejected():
    with pytest.raises(WireProtocolError):
        parse_address("[::1]")


def test_bracket_garbage_is_rejected():
    with pytest.raises(WireProtocolError):
        parse_address("[[::1]]:80")


def test_missing_port_is_rejected():
    with pytest.raises(WireProtocolError):
        parse_address("justahost")


def test_non_numeric_port_is_rejected():
    with pytest.raises(WireProtocolError, match="non-numeric"):
        parse_address("host:http")
    with pytest.raises(WireProtocolError, match="non-numeric"):
        parse_address("[::1]:http")


@pytest.mark.parametrize("address", [
    ("127.0.0.1", 8080),
    ("::1", 8080),
    ("2001:db8::17", 47),
    ("localhost", 1),
])
def test_round_trip_through_format(address):
    assert parse_address(format_address(address)) == address


def test_format_brackets_only_ipv6():
    assert format_address(("10.0.0.1", 5)) == "10.0.0.1:5"
    assert format_address(("::1", 5)) == "[::1]:5"
