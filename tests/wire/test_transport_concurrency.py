"""SocketTransport under concurrency: shared pools, pipelining over
one connection, desync quarantine, and restarts mid-flight."""

import socket
import threading
import time

import pytest

from repro.net import TransportError
from repro.net.protocol import Answer, FetchRelation
from repro.wire import PeerServer, SocketTransport, free_port
from repro.wire.codec import (
    WireProtocolError,
    encode_frame,
    hello_frame,
    message_to_dict,
    read_frame,
)
from repro.workloads import example1_system


def _server(**kwargs):
    return PeerServer(example1_system(), "P2", **kwargs).start()


# ---------------------------------------------------------------------------
# Many threads, one transport
# ---------------------------------------------------------------------------

def test_many_threads_share_one_transport():
    server = _server()
    transport = SocketTransport(
        {"P2": f"127.0.0.1:{server.port}"}, local_name="test",
        timeout=15.0)
    expected = example1_system().instances["P2"].tuples("R2")
    errors = []
    barrier = threading.Barrier(24)

    def worker():
        try:
            barrier.wait(timeout=10)
            for _ in range(5):
                reply = transport.request(FetchRelation(
                    sender="test", target="P2", relation="R2"))
                assert isinstance(reply, Answer)
                assert frozenset(reply.payload) == expected
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(24)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        # 24 threads never exceed the pool cap: the surplus pipelines
        assert 1 <= transport.pooled_connections("P2") <= 4
    finally:
        transport.close()
        server.shutdown()


def test_concurrency_multiplexes_over_a_single_connection():
    """pool_size=1 forces every concurrent request onto one TCP
    connection; the server accepts exactly one and everything still
    completes — the definition of multiplexing."""
    server = _server()
    transport = SocketTransport(
        {"P2": f"127.0.0.1:{server.port}"}, local_name="test",
        timeout=15.0, pool_size=1)
    errors = []
    barrier = threading.Barrier(8)

    def worker():
        try:
            barrier.wait(timeout=10)
            reply = transport.request(FetchRelation(
                sender="test", target="P2", relation="R2"))
            assert isinstance(reply, Answer)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert transport.pooled_connections("P2") == 1
        assert server.connection_count() == 1
    finally:
        transport.close()
        server.shutdown()


# ---------------------------------------------------------------------------
# Desync quarantine
# ---------------------------------------------------------------------------

class _DesyncServer:
    """Answers the handshake, then replies to a correlation id that
    was never issued — a desynced stream."""

    def __init__(self):
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(4)
        self.port = self.listener.getsockname()[1]
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self):
        while True:
            try:
                connection, _ = self.listener.accept()
            except OSError:
                return
            threading.Thread(target=self._serve_one,
                             args=(connection,), daemon=True).start()

    def _serve_one(self, connection):
        stream = connection.makefile("rb")
        try:
            read_frame(stream)  # client hello
            connection.sendall(encode_frame(hello_frame("S")))
            frame = read_frame(stream)
            if frame is None:
                return
            from repro.net.protocol import Answer as AnswerMessage
            rogue = AnswerMessage(
                sender="S", target=frame["sender"],
                in_reply_to=987654321,  # never issued
                payload=(("x",),), version="v1", bytes_estimate=1)
            connection.sendall(encode_frame(message_to_dict(rogue)))
        except (OSError, WireProtocolError):
            pass

    def close(self):
        self.listener.close()


def test_correlation_mismatch_quarantines_the_connection():
    server = _DesyncServer()
    transport = SocketTransport({"S": f"127.0.0.1:{server.port}"},
                                timeout=5.0)
    try:
        with pytest.raises(WireProtocolError,
                           match="correlation mismatch"):
            transport.request(FetchRelation(
                sender="client", target="S", relation="R"))
        # the desynced connection must be discarded, never repooled:
        # its stream can no longer be trusted to pair frames
        assert transport.pooled_connections("S") == 0
    finally:
        transport.close()
        server.close()


# ---------------------------------------------------------------------------
# Restart mid-flight
# ---------------------------------------------------------------------------

def test_server_dying_mid_flight_fails_typed_then_recovers():
    port = free_port()
    first = _server(port=port)
    inner = first.node.handle

    def stall(message):
        time.sleep(30)
        return inner(message)

    first.node.handle = stall
    transport = SocketTransport({"P2": f"127.0.0.1:{port}"},
                                local_name="test", timeout=20.0)
    outcome = []

    def fire():
        try:
            outcome.append(transport.request(FetchRelation(
                sender="test", target="P2", relation="R2")))
        except Exception as exc:  # noqa: BLE001 - inspected below
            outcome.append(exc)

    thread = threading.Thread(target=fire)
    try:
        thread.start()
        time.sleep(0.3)  # the request is in flight on the old server
        first.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive(), "in-flight request hung on kill"
        assert len(outcome) == 1
        assert isinstance(outcome[0], TransportError), outcome
        second = _server(port=port)
        try:
            reply = transport.request(FetchRelation(
                sender="test", target="P2", relation="R2"))
            assert isinstance(reply, Answer)
        finally:
            second.shutdown()
    finally:
        transport.close()
