"""Supervisor lifecycle edge cases: fast failures, no leaked processes."""

import glob
import subprocess
import time

import pytest

from repro.net import NetworkError
from repro.wire import ClusterError, ClusterSupervisor, open_wire_session
from repro.wire.codec import WireProtocolError
from repro.workloads import example1_system


def _no_cluster_processes() -> bool:
    """No spawned ``repro serve`` process is still running (they all
    carry the supervisor's repro-cluster-* temp path on their
    command line)."""
    probe = subprocess.run(["pgrep", "-f", "repro-cluster-"],
                           capture_output=True)
    return probe.returncode != 0


def test_dead_child_fails_fast_not_after_the_full_timeout():
    """A server that exits immediately (invalid arguments) must fail
    start() as soon as its stdout closes, not after startup_timeout."""
    supervisor = ClusterSupervisor(example1_system(), retries=-1,
                                   startup_timeout=60.0)
    own_file = supervisor._own_system_file
    start = time.monotonic()
    with pytest.raises(ClusterError, match="exited before"):
        supervisor.start()
    assert time.monotonic() - start < 30.0
    assert not supervisor.processes  # torn down
    assert not own_file.exists()  # temp definition cleaned up


def test_failed_session_construction_stops_the_cluster():
    """open_wire_session must not orphan the spawned processes when the
    client session itself cannot be built."""
    before = set(glob.glob("/tmp/repro-cluster-*.json"))
    with pytest.raises(WireProtocolError, match="timeouts must be > 0"):
        open_wire_session(example1_system(), request_timeout=0)
    assert _no_cluster_processes()
    assert set(glob.glob("/tmp/repro-cluster-*.json")) == before


def test_open_session_wire_rejects_foreign_kwargs_typed():
    from repro.net import open_session
    with pytest.raises(NetworkError, match="do not apply to the wire"):
        open_session(example1_system(), network="wire",
                     evaluator="naive")
