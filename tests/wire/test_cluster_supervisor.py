"""Supervisor lifecycle edge cases: fast failures, no leaked processes."""

import glob
import subprocess
import time

import pytest

from repro.net import NetworkError
from repro.wire import ClusterError, ClusterSupervisor, open_wire_session
from repro.wire.codec import WireProtocolError
from repro.workloads import example1_system


def _no_cluster_processes() -> bool:
    """No spawned ``repro serve`` process is still running (they all
    carry the supervisor's repro-cluster-* temp path on their
    command line)."""
    probe = subprocess.run(["pgrep", "-f", "repro-cluster-"],
                           capture_output=True)
    return probe.returncode != 0


def test_dead_child_fails_fast_not_after_the_full_timeout():
    """A server that exits immediately (invalid arguments) must fail
    start() as soon as its stdout closes, not after startup_timeout."""
    supervisor = ClusterSupervisor(example1_system(), retries=-1,
                                   startup_timeout=60.0)
    own_file = supervisor._own_system_file
    start = time.monotonic()
    with pytest.raises(ClusterError, match="exited before"):
        supervisor.start()
    assert time.monotonic() - start < 30.0
    assert not supervisor.processes  # torn down
    assert not own_file.exists()  # temp definition cleaned up


def test_failed_session_construction_stops_the_cluster():
    """open_wire_session must not orphan the spawned processes when the
    client session itself cannot be built."""
    before = set(glob.glob("/tmp/repro-cluster-*.json"))
    with pytest.raises(WireProtocolError, match="timeouts must be > 0"):
        open_wire_session(example1_system(), request_timeout=0)
    assert _no_cluster_processes()
    assert set(glob.glob("/tmp/repro-cluster-*.json")) == before


def test_open_session_wire_rejects_foreign_kwargs_typed():
    from repro.net import open_session
    with pytest.raises(NetworkError, match="do not apply to the wire"):
        open_session(example1_system(), network="wire",
                     evaluator="naive")


# ---------------------------------------------------------------------------
# Restarting killed peers
# ---------------------------------------------------------------------------

def test_restart_respawns_on_old_address_and_reanswers():
    from repro.core import PeerQuerySession
    from repro.wire import RemoteNetworkSession

    system = example1_system()
    query = "q(X, Y) := R2(X, Y)"
    expected = PeerQuerySession(system).answer("P2", query)
    with ClusterSupervisor(system) as supervisor:
        session = RemoteNetworkSession(supervisor.addresses(),
                                       retries=1, request_timeout=10.0,
                                       connect_timeout=1.0)
        try:
            old_address = supervisor.addresses()["P2"]
            supervisor.kill("P2")
            assert not supervisor.alive("P2")
            down = session.answer("P2", query)
            assert down.failed

            assert supervisor.restart("P2") == old_address
            assert supervisor.alive("P2")
            back = session.answer("P2", query)
            assert back.ok, back.error
            assert back.answers == expected.answers
        finally:
            session.close()


def test_restart_while_running_refuses_typed():
    with ClusterSupervisor(example1_system()) as supervisor:
        with pytest.raises(ClusterError, match="still running"):
            supervisor.restart("P2")


def test_restart_unknown_unit_refuses_typed():
    with ClusterSupervisor(example1_system()) as supervisor:
        with pytest.raises(ClusterError, match="no server process"):
            supervisor.restart("P9")


# ---------------------------------------------------------------------------
# The free_port bind race: bounded EADDRINUSE retry
# ---------------------------------------------------------------------------

def test_server_bind_retries_ride_out_a_transient_squatter():
    """free_port's bind-and-release is racy by construction: a squatter
    holding the port when the server binds must be absorbed by the
    bounded retry once it lets go."""
    import socket
    import threading

    from repro.wire import PeerServer, free_port

    port = free_port()
    squatter = socket.socket()
    squatter.bind(("127.0.0.1", port))
    squatter.listen(1)
    threading.Timer(0.25, squatter.close).start()
    try:
        server = PeerServer(example1_system(), "P1", port=port,
                            bind_retries=10)
        try:
            assert server.port == port
        finally:
            server.shutdown()
    finally:
        squatter.close()


def test_server_bind_gives_up_typed_after_bounded_retries():
    import errno
    import socket

    from repro.wire import PeerServer, free_port

    port = free_port()
    squatter = socket.socket()
    squatter.bind(("127.0.0.1", port))
    squatter.listen(1)
    try:
        start = time.monotonic()
        with pytest.raises(OSError) as excinfo:
            PeerServer(example1_system(), "P1", port=port,
                       bind_retries=2)
        assert excinfo.value.errno == errno.EADDRINUSE
        assert time.monotonic() - start < 10.0  # bounded, no spin
    finally:
        squatter.close()
