"""CLI coverage for the wire runtime: ``serve`` and ``cluster``."""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.core import dump_system
from repro.wire import RemoteNetworkSession, free_port
from repro.workloads import example1_system

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture()
def system_file(tmp_path):
    path = tmp_path / "system.json"
    dump_system(example1_system(), str(path))
    return str(path)


class TestClusterCommand:
    def test_answers_match_the_query_command(self, system_file, capsys):
        code = main(["cluster", system_file, "P1",
                     "q(X, Y) := R1(X, Y)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cluster up: 3 peer process(es)" in out
        assert "a, b" in out and "c, d" in out and "a, e" in out
        assert "s, t" not in out

    def test_json_output(self, system_file, capsys):
        code = main(["cluster", system_file, "P1",
                     "q(X, Y) := R1(X, Y)", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(map(tuple, payload["answers"])) == \
            [("a", "b"), ("a", "e"), ("c", "d")]
        assert payload["error"] is None

    def test_unknown_peer_is_a_clean_error(self, system_file, capsys):
        code = main(["cluster", system_file, "P9",
                     "q(X, Y) := R1(X, Y)"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err


class TestServeCommand:
    def test_serve_process_answers_and_stops_on_sigterm(
            self, system_file):
        import os
        port = free_port()
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + \
            env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", system_file,
             "P2", "--port", str(port)],
            env=env, stdout=subprocess.PIPE, text=True)
        try:
            ready = process.stdout.readline()
            assert ready.startswith("READY P2 ")
            address = ready.split()[2]
            with RemoteNetworkSession({"P2": address}) as session:
                result = session.answer("P2", "q(X, Y) := R2(X, Y)")
                assert result.ok, result.error
                assert result.answers
            process.terminate()
            assert process.wait(timeout=15) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
            process.stdout.close()


class TestDurableClusterCli:
    def test_rerun_against_data_dir_is_warm(self, system_file,
                                            tmp_path, capsys):
        data_dir = str(tmp_path / "cluster-state")
        code = main(["cluster", system_file, "P1",
                     "q(X, Y) := R1(X, Y)", "--data-dir", data_dir])
        assert code == 0
        capsys.readouterr()
        start = time.perf_counter()
        code = main(["cluster", system_file, "P1",
                     "q(X, Y) := R1(X, Y)", "--data-dir", data_dir,
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["from_cache"] is True
        assert payload["exchange_requests"] == 0
        assert time.perf_counter() - start < 120
