"""The event-loop server: multiplexing, admission control, idle
deadlines, and the unit-name handshake.

These are the regression tests for the serving-model rewrite: one
selector loop owns every connection (no thread per client), a bounded
worker pool answers admitted requests, request number
``pending_limit + 1`` is shed with a typed *retryable* ``overloaded``
failure, and a silent connection is reclaimed after ``idle_timeout``.
"""

import socket
import threading
import time

import pytest

from repro.net import ServerOverloaded
from repro.net.protocol import Answer, Failure, FetchRelation
from repro.shard import ShardMap
from repro.wire import (
    PeerServer,
    RemoteNetworkSession,
    SocketTransport,
    free_port,
)
from repro.wire.codec import (
    WireProtocolError,
    encode_frame,
    hello_frame,
    read_frame,
)


def _handshake(port):
    """Dial raw, complete the hello exchange, return (sock, stream,
    server hello frame)."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    stream = sock.makefile("rb")
    sock.sendall(encode_frame(hello_frame("raw-test-client")))
    hello = read_frame(stream)
    return sock, stream, hello


def _wait_until(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# Satellite 1: the handshake advertises the physical unit name
# ---------------------------------------------------------------------------

def test_hello_advertises_plain_peer_name():
    from repro.workloads import example1_system
    server = PeerServer(example1_system(), "P2").start()
    try:
        sock, _stream, hello = _handshake(server.port)
        try:
            assert hello is not None
            assert hello["sender"] == "P2"
        finally:
            sock.close()
    finally:
        server.shutdown()


def test_sharded_replica_advertises_unit_name():
    """A replica process must introduce itself by its *physical* name
    (``P2#1@1``), not the logical peer — two replicas of one peer are
    distinct processes with distinct stores, and a client that dialed
    one must be able to tell it reached the right one."""
    from repro.workloads import example1_system
    from repro.shard.shardmap import replica_name
    system = example1_system()
    shard_map = ShardMap({"P2": 2})
    port = free_port()
    # the peers map carries the full physical layout; only this unit
    # actually runs — the handshake never routes anywhere
    addresses = {replica_name("P2", s, r): f"127.0.0.1:{free_port()}"
                 for s in range(2) for r in range(2)}
    unit = replica_name("P2", 1, 1)
    addresses[unit] = f"127.0.0.1:{port}"
    server = PeerServer(system, "P2", port=port, addresses=addresses,
                        shard_map=shard_map, shard_index=1,
                        replica_index=1).start()
    try:
        assert server.unit == unit
        sock, _stream, hello = _handshake(port)
        try:
            assert hello is not None
            assert hello["sender"] == unit
        finally:
            sock.close()
    finally:
        server.shutdown()


def test_client_rejects_wrong_unit_behind_address():
    """Dialing an address that a *different* unit answers is a wiring
    error and must fail loudly, not answer from the wrong store."""
    from repro.workloads import example1_system
    server = PeerServer(example1_system(), "P2").start()
    transport = SocketTransport(
        {"P3": f"127.0.0.1:{server.port}"}, local_name="test")
    try:
        with pytest.raises(WireProtocolError, match="P3.*P2|P2.*P3"):
            transport.request(FetchRelation(
                sender="test", target="P3", relation="R"))
    finally:
        transport.close()
        server.shutdown()


# ---------------------------------------------------------------------------
# Satellite 2: idle connections are reclaimed (regression for the old
# thread-per-connection loop's settimeout(None) leak)
# ---------------------------------------------------------------------------

def test_silent_connection_is_reclaimed():
    from repro.workloads import example1_system
    system = example1_system()
    server = PeerServer(system, "P2", idle_timeout=0.4).start()
    try:
        sock, stream, hello = _handshake(server.port)
        try:
            assert hello is not None
            assert _wait_until(lambda: server.connection_count() == 1)
            # go silent: no request, no close — the server must
            # reclaim the connection on its own
            sock.settimeout(5.0)
            assert stream.readline() == b""  # server closed it
            assert _wait_until(lambda: server.connection_count() == 0)
        finally:
            sock.close()
    finally:
        server.shutdown()


def test_in_flight_request_is_not_reaped():
    """Idle means *nothing in flight*: a request that takes longer
    than the idle deadline keeps its connection."""
    from repro.workloads import example1_system
    system = example1_system()
    server = PeerServer(system, "P2", idle_timeout=0.3).start()
    inner = server.node.handle

    def slow(message):
        time.sleep(0.9)  # 3× the idle deadline
        return inner(message)

    server.node.handle = slow
    transport = SocketTransport(
        {"P2": f"127.0.0.1:{server.port}"}, local_name="test",
        timeout=10.0)
    try:
        reply = transport.request(FetchRelation(
            sender="test", target="P2", relation="R2"))
        assert isinstance(reply, Answer)
    finally:
        transport.close()
        server.shutdown()


# ---------------------------------------------------------------------------
# The tentpole: one loop, hundreds of connections, no thread each
# ---------------------------------------------------------------------------

def test_many_idle_connections_do_not_cost_threads():
    from repro.workloads import example1_system
    system = example1_system()
    server = PeerServer(system, "P2").start()
    sockets = []
    before = threading.active_count()
    try:
        for _ in range(80):
            sock, _stream, hello = _handshake(server.port)
            assert hello is not None
            sockets.append(sock)
        assert _wait_until(lambda: server.connection_count() == 80)
        # the old model would be +80 threads here; the event loop adds
        # none (workers are bounded and only spawn under request load)
        assert threading.active_count() - before <= server.workers
    finally:
        for sock in sockets:
            sock.close()
        server.shutdown()


def test_replies_multiplex_in_completion_order():
    """Two requests pipelined on ONE connection: the fast one must not
    wait behind the slow one (the wire carries correlation ids, so the
    server replies in completion order)."""
    from repro.workloads import example1_system
    system = example1_system()
    server = PeerServer(system, "P2").start()
    inner = server.node.handle

    def handle(message):
        if getattr(message, "relation", "") == "R2":
            time.sleep(0.8)
        return inner(message)

    server.node.handle = handle
    transport = SocketTransport(
        {"P2": f"127.0.0.1:{server.port}"}, local_name="test",
        timeout=10.0, pool_size=1)  # force sharing one connection
    done = {}

    def fire(relation):
        transport.request(FetchRelation(
            sender="test", target="P2", relation=relation))
        done[relation] = time.monotonic()

    try:
        slow = threading.Thread(target=fire, args=("R2",))
        slow.start()
        time.sleep(0.2)  # the slow request is in flight first
        fire("NoSuchRelation")  # fast (typed failure reply)
        slow.join(timeout=10)
        assert transport.pooled_connections("P2") == 1
        assert done["NoSuchRelation"] < done["R2"], \
            "fast reply queued behind slow one: no multiplexing"
    finally:
        transport.close()
        server.shutdown()


# ---------------------------------------------------------------------------
# Admission control: bounded queue, typed retryable shedding
# ---------------------------------------------------------------------------

def _slow_server(handle_seconds, **kwargs):
    from repro.workloads import example1_system
    system = example1_system()
    server = PeerServer(system, "P2", **kwargs).start()
    inner = server.node.handle

    def slow(message):
        time.sleep(handle_seconds)
        return inner(message)

    server.node.handle = slow
    return server


def test_overload_sheds_typed_and_retryable():
    server = _slow_server(0.5, workers=1, pending_limit=2)
    transport = SocketTransport(
        {"P2": f"127.0.0.1:{server.port}"}, local_name="test",
        timeout=15.0)
    outcomes = []

    def fire():
        try:
            outcomes.append(transport.request(FetchRelation(
                sender="test", target="P2", relation="R2")))
        except Exception as exc:  # noqa: BLE001 - inspected below
            outcomes.append(exc)

    threads = [threading.Thread(target=fire) for _ in range(8)]
    try:
        start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads), \
            "requests hung under overload"
        shed = [o for o in outcomes
                if isinstance(o, ServerOverloaded)]
        served = [o for o in outcomes if isinstance(o, Answer)]
        # 8 concurrent vs pending_limit=2: most are shed, and the
        # shedding is *fast* — the served ones pace the wall clock
        assert shed, outcomes
        assert served, outcomes
        assert len(shed) + len(served) == 8
        assert server.shed_requests >= len(shed)
        # nothing degenerated into a reset or an untyped error
        assert not [o for o in outcomes
                    if isinstance(o, Exception)
                    and not isinstance(o, ServerOverloaded)]
        assert time.monotonic() - start < 15.0
    finally:
        transport.close()
        server.shutdown()


def test_overload_failure_reply_is_marked_overloaded():
    """On the wire the shed is an ordinary typed Failure frame with
    ``code="overloaded"`` — old clients see a failure, new clients
    retry it."""
    server = _slow_server(0.6, workers=1, pending_limit=1)
    background = SocketTransport(
        {"P2": f"127.0.0.1:{server.port}"}, local_name="bg",
        timeout=15.0)
    filler = threading.Thread(
        target=lambda: background.request(FetchRelation(
            sender="bg", target="P2", relation="R2")))
    try:
        filler.start()
        assert _wait_until(lambda: server._pending >= 1, timeout=5.0)
        sock, stream, hello = _handshake(server.port)
        try:
            assert hello is not None
            from repro.wire.codec import message_to_dict
            request = FetchRelation(sender="raw-test-client",
                                    target="P2", relation="R2")
            sock.sendall(encode_frame(message_to_dict(request)))
            from repro.wire.codec import message_from_dict
            frame = read_frame(stream)
            assert frame is not None
            reply = message_from_dict(frame)
            assert isinstance(reply, Failure)
            assert reply.code == "overloaded"
            assert reply.in_reply_to == request.correlation_id
        finally:
            sock.close()
    finally:
        filler.join(timeout=20)
        background.close()
        server.shutdown()


def test_session_retries_absorb_overload():
    """A retries-enabled session never surfaces the shed: backoff plus
    the admission queue draining turns overload into latency."""
    server = _slow_server(0.1, workers=1, pending_limit=1)
    session = RemoteNetworkSession(
        {"P2": f"127.0.0.1:{server.port}"}, retries=25,
        request_timeout=15.0)
    results = []

    def fire():
        results.append(session.answer("P2", "q(X, Y) := R2(X, Y)"))

    threads = [threading.Thread(target=fire) for _ in range(6)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(results) == 6
        assert all(result.ok for result in results), \
            [result.error for result in results if not result.ok]
    finally:
        session.close()
        server.shutdown()
