"""Forward tolerance of the wire codec's routing vocabulary.

Routing rides on *optional* frame fields — peers predating them must
decode the new frames, peers carrying them must interoperate with old
frames, and a session with routing off must emit frames byte-identical
to the pre-routing vocabulary.  This suite pins all three directions,
plus round-trips of every routing-specific payload shape (piggybacked
digests, subsystem-unchanged acknowledgements, ``{"same": fp}`` relay
dedup markers) under unicode constants and empty relations.
"""

import random

import pytest

from repro.core.results import ExchangeStats
from repro.core.system import Peer
from repro.net.protocol import (
    Answer,
    AnswerQuery,
    Failure,
    FetchRelation,
    PeerQuery,
)
from repro.obs import Span
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.routing.digest import NeighbourDigests
from repro.wire import decode_message, encode_message
from repro.wire.codec import (
    WireProtocolError,
    encode_frame,
    message_from_dict,
    message_to_dict,
)


def subsystem_payload(instances, *, peers=None):
    schema = DatabaseSchema([RelationSchema("Rä", 2)])
    names = peers or list(instances)
    return {
        "peers": {name: Peer(name, schema) for name in names},
        "instances": instances,
        "decs": [],
        "trust": [],
        "stats": ExchangeStats(2, 5, 71, 1, neighbours_pruned=3,
                               neighbours_contacted=4),
    }


def make_instance(rows):
    schema = DatabaseSchema([RelationSchema("Rä", 2)])
    return DatabaseInstance(schema, {"Rä": frozenset(rows)})


class TestUnknownAndMissingFields:
    def test_decode_ignores_unknown_future_fields(self):
        """A frame from a *newer* release with fields this one never
        heard of must decode cleanly — unknown keys are skipped, not
        errors."""
        encoded = message_to_dict(PeerQuery(sender="P1", target="P2"))
        encoded["future_hint"] = {"anything": [1, 2]}
        decoded = message_from_dict(encoded)
        assert decoded.sender == "P1" and decoded.target == "P2"
        answer = message_to_dict(Answer(sender="P2", target="P1",
                                        in_reply_to=7, payload=()))
        answer["future_weight"] = 0.25
        assert message_from_dict(answer).in_reply_to == 7

    def test_old_frames_decode_to_routing_defaults(self):
        """Frames from a peer predating routing carry none of the new
        keys; they must decode with every hint at its default."""
        old = {"sender": "P1", "target": "P2", "correlation_id": 4,
               "type": "peer-query", "kind": "subsystem",
               "hop_budget": 5, "visited": ["P0"]}
        decoded = message_from_dict(old)
        assert decoded.digest_version == ""
        assert decoded.known_subsystem == ""
        assert decoded.known_instances is None
        answer = {"sender": "P2", "target": "P1", "correlation_id": 5,
                  "type": "answer", "in_reply_to": 4, "version": "",
                  "delta": False, "bytes_estimate": 3,
                  "payload": {"kind": "rows", "rows": [["a", "b"]]}}
        assert message_from_dict(answer).digests is None

    def test_routing_off_frames_carry_no_routing_keys(self):
        """The byte-identical guarantee: hints at their defaults are
        *omitted*, so non-routed traffic is indistinguishable from the
        pre-routing vocabulary."""
        query = message_to_dict(PeerQuery(sender="P1", target="P2"))
        assert "digest_version" not in query
        assert "known_subsystem" not in query
        assert "known_instances" not in query
        answer = message_to_dict(Answer(sender="P2", target="P1",
                                        in_reply_to=1, payload=()))
        assert "digests" not in answer


class TestRoutingRoundTrips:
    def test_peer_query_hints_round_trip(self):
        message = PeerQuery(
            sender="Pé", target="数", hop_budget=3,
            visited=("P0", "Pé"), digest_version="v-🛰",
            known_subsystem="sub-abc123",
            known_instances={"P0": "fp-déjà", "数": "fp-2"})
        decoded = decode_message(encode_message(message))
        assert decoded == message

    @pytest.mark.parametrize("seed", range(8))
    def test_piggybacked_digests_round_trip(self, seed):
        rng = random.Random(seed)
        rows = [(f"é{rng.randint(0, 99)}", "🛰")
                for _ in range(rng.randint(0, 6))]
        digests = NeighbourDigests.from_tables(
            "Pé", f"v{seed}", {"Rä": rows, "empty": []})
        message = Answer(sender="P2", target="P1", in_reply_to=9,
                         payload=(), version=f"v{seed}",
                         digests=digests)
        decoded = decode_message(encode_message(message))
        assert decoded.digests == digests
        assert decoded.digests.digest_for("empty").row_count == 0

    def test_subsystem_unchanged_round_trips_with_counters(self):
        stats = ExchangeStats(1, 0, 12, 2, neighbours_pruned=5,
                              neighbours_contacted=6)
        message = Answer(sender="P2", target="P1", in_reply_to=3,
                         payload={"unchanged": True, "stats": stats},
                         version="v1")
        decoded = decode_message(encode_message(message))
        assert decoded.payload["unchanged"] is True
        assert decoded.payload["stats"] == stats

    def test_dedup_markers_round_trip_beside_real_instances(self):
        instance = make_instance([("déjà", "vu"), ("", "🛰")])
        payload = subsystem_payload(
            {"P2": instance, "P3": {"same": "fp-xyz"}},
            peers=["P2", "P3"])
        message = Answer(sender="P2", target="P1", in_reply_to=2,
                         payload=payload, version="v2")
        decoded = decode_message(encode_message(message))
        revived = decoded.payload
        assert revived["instances"]["P2"].fingerprint() == \
            instance.fingerprint()
        assert revived["instances"]["P3"] == {"same": "fp-xyz"}
        assert revived["stats"] == payload["stats"]

    def test_marker_for_undescribed_peer_is_rejected(self):
        payload = subsystem_payload({"P9": {"same": "fp"}},
                                    peers=["P2"])
        message = Answer(sender="P2", target="P1", in_reply_to=2,
                         payload=payload, version="v2")
        with pytest.raises(WireProtocolError, match="undescribed"):
            decode_message(encode_message(message))

    def test_marker_named_like_a_relation_cannot_collide(self):
        """The marker travels under a separate "same" key, so an
        instance with a relation literally named "same" round-trips as
        data, never as a marker."""
        schema = DatabaseSchema([RelationSchema("same", 2)])
        instance = DatabaseInstance(schema,
                                    {"same": frozenset([("a", "b")])})
        payload = {
            "peers": {"P2": Peer("P2", schema)},
            "instances": {"P2": instance},
            "decs": [], "trust": [], "stats": ExchangeStats(),
        }
        message = Answer(sender="P2", target="P1", in_reply_to=8,
                         payload=payload, version="v3")
        decoded = decode_message(encode_message(message))
        revived = decoded.payload["instances"]["P2"]
        assert isinstance(revived, DatabaseInstance)
        assert revived.tuples("same") == frozenset([("a", "b")])


class TestTraceFieldTolerance:
    """The tracing vocabulary follows the same forward-tolerance
    contract as routing: optional keys, omitted when tracing is off,
    ignored by peers that never heard of them."""

    def test_untraced_frames_carry_no_trace_keys(self):
        """The byte-identical guarantee for tracing off: no trace_id /
        span_id / parent_span_id / spans keys on any message kind."""
        messages = [
            PeerQuery(sender="P1", target="P2"),
            FetchRelation(sender="P1", target="P2", relation="R1"),
            AnswerQuery(sender="c", target="P1", query="q(X) := R1(X)"),
            Answer(sender="P2", target="P1", in_reply_to=1, payload=()),
            Failure(sender="P2", target="P1", in_reply_to=1,
                    code="peer-unreachable"),
        ]
        for message in messages:
            encoded = message_to_dict(message)
            for key in ("trace_id", "span_id", "parent_span_id",
                        "spans"):
                assert key not in encoded, (type(message).__name__, key)

    def test_trace_fields_round_trip_on_every_message_kind(self):
        stamped = dict(trace_id="t" * 16, span_id="s" * 16,
                       parent_span_id="p" * 16)
        messages = [
            PeerQuery(sender="P1", target="P2", **stamped),
            FetchRelation(sender="P1", target="P2", relation="R1",
                          **stamped),
            AnswerQuery(sender="c", target="P1",
                        query="q(X) := R1(X)", **stamped),
        ]
        for message in messages:
            decoded = decode_message(encode_message(message))
            assert decoded.trace_id == stamped["trace_id"]
            assert decoded.span_id == stamped["span_id"]
            assert decoded.parent_span_id == stamped["parent_span_id"]

    def test_old_frames_decode_to_empty_trace_context(self):
        old = {"sender": "P1", "target": "P2", "correlation_id": 4,
               "type": "fetch", "relation": "R1", "purpose": "answer",
               "known_version": ""}
        decoded = message_from_dict(old)
        assert decoded.trace_id == ""
        assert decoded.span_id == ""
        assert decoded.parent_span_id == ""
        answer = {"sender": "P2", "target": "P1", "correlation_id": 5,
                  "type": "answer", "in_reply_to": 4, "version": "",
                  "delta": False, "bytes_estimate": 3,
                  "payload": {"kind": "rows", "rows": [["a", "b"]]}}
        assert message_from_dict(answer).spans == ()

    def test_span_from_dict_ignores_unknown_future_fields(self):
        """A span emitted by a newer release with extra keys must be
        accepted, not crash the whole frame."""
        span = Span.from_dict({
            "trace_id": "t1", "span_id": "s1", "parent_span_id": "s0",
            "name": "gather", "peer": "P1", "start": 1.5,
            "duration": 0.25, "future_flame_graph": {"deep": [1, 2]},
            "cpu_ns": 12345,
        })
        assert span.name == "gather" and span.peer == "P1"
        assert span.parent_span_id == "s0"
        assert span.duration == 0.25

    @pytest.mark.parametrize("peer", ["Pé", "数", "🛰-unit", ""])
    def test_span_payloads_round_trip_under_unicode_peers(self, peer):
        spans = (
            Span("t1", "s1", "", "answer", peer, 0.0, 1.25),
            Span("t1", "s2", "s1", f"fetch:Rä->{peer}", peer,
                 0.125, 0.5, note="déjà-vu"),
        )
        for message in (
                Answer(sender=peer, target="P1", in_reply_to=2,
                       payload=(), spans=spans),
                Failure(sender=peer, target="P1", in_reply_to=2,
                        code="relay", detail="boom", spans=spans)):
            decoded = decode_message(encode_message(message))
            assert decoded.spans == spans

    def test_traced_and_untraced_query_frames_differ_only_in_trace_keys(self):
        plain = message_to_dict(PeerQuery(sender="P1", target="P2"))
        traced = message_to_dict(PeerQuery(sender="P1", target="P2",
                                           trace_id="t1", span_id="s1"))
        # correlation ids are process-global and advance per message
        plain.pop("correlation_id")
        traced.pop("correlation_id")
        assert {key: value for key, value in traced.items()
                if key not in ("trace_id", "span_id")} == plain
