"""Property suite: every wire frame decodes back to what was encoded.

Seeded random generation (no flakes, reproducible failures) over the
whole message vocabulary, stressing exactly what a JSON wire format
gets wrong first: unicode constants (accents, CJK, emoji, embedded
newlines/quotes/backslashes), mixed-type rows (ints and strings in one
column), empty relations, and multi-step delta chains.  Beyond
equality, shipped instances must keep their *content fingerprints* —
that is what makes versioned delta sync correct across processes.
"""

import io
import random

import pytest

from repro.core.results import ExchangeStats, QueryError, QueryResult
from repro.core.system import DataExchange, Peer
from repro.core.trust import TrustLevel
from repro.net.protocol import (
    Answer,
    AnswerQuery,
    Failure,
    FetchRelation,
    PeerQuery,
)
from repro.relational.constraints import InclusionDependency
from repro.relational.instance import DatabaseInstance
from repro.relational.query_parser import parse_query
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.storage.deltas import delta_between, merge_relation_rows
from repro.wire import decode_message, encode_message
from repro.wire.codec import (
    WireProtocolError,
    check_hello,
    encode_frame,
    hello_frame,
    read_frame,
    result_from_dict,
    result_to_dict,
)

SEEDS = range(25)

#: alphabets chosen to break naive encodings: escapes, non-BMP, RTL,
#: JSON syntax characters, whitespace
_ALPHABETS = (
    "abcdefgh",
    "éüñß-ÅØ",
    "数据库系统",
    "🛰🔌🧵",
    "عربى",
    "\n\t\"\\,:{}[]' ",
)


def rand_value(rng: random.Random):
    kind = rng.randrange(3)
    if kind == 0:
        return rng.randint(-10_000, 10_000)
    alphabet = rng.choice(_ALPHABETS)
    return "".join(rng.choice(alphabet)
                   for _ in range(rng.randint(0, 6)))


def rand_row(rng: random.Random, arity: int) -> tuple:
    return tuple(rand_value(rng) for _ in range(arity))


def rand_rows(rng: random.Random, arity: int, *,
              allow_empty: bool = True) -> tuple:
    low = 0 if allow_empty else 1
    return tuple(rand_row(rng, arity)
                 for _ in range(rng.randint(low, 8)))


# ---------------------------------------------------------------------------
# Request messages
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_fetch_relation_roundtrip(seed):
    rng = random.Random(seed)
    message = FetchRelation(
        sender=f"P{rng.randrange(9)}", target=f"Q{rng.randrange(9)}",
        relation=rng.choice(("R1", "data", "числа")),
        purpose=rng.choice(("", "subsystem gather", "délta ✓")),
        known_version=rng.choice(("", "sha256:deadbeef")))
    assert decode_message(encode_message(message)) == message


@pytest.mark.parametrize("seed", SEEDS)
def test_peer_query_roundtrip(seed):
    rng = random.Random(seed)
    message = PeerQuery(
        sender="P1", target="P2",
        hop_budget=rng.randint(0, 16),
        visited=tuple(f"P{i}" for i in range(rng.randint(0, 5))))
    assert decode_message(encode_message(message)) == message


@pytest.mark.parametrize("seed", SEEDS)
def test_answer_query_roundtrip(seed):
    rng = random.Random(seed)
    message = AnswerQuery(
        sender="client", target="P1",
        query="q(X, Y) := R1(X, Y)",
        method=rng.choice(("", "auto", "asp", "rewrite")),
        semantics=rng.choice(("certain", "possible")))
    assert decode_message(encode_message(message)) == message


@pytest.mark.parametrize("seed", SEEDS)
def test_failure_roundtrip(seed):
    rng = random.Random(seed)
    message = Failure(
        sender="P2", target="P1", in_reply_to=rng.randint(1, 99999),
        code=rng.choice(("unknown-relation", "hop-budget-exhausted",
                         "deadline-exceeded")),
        detail="".join(rng.choice("".join(_ALPHABETS))
                       for _ in range(rng.randint(0, 40))))
    assert decode_message(encode_message(message)) == message


# ---------------------------------------------------------------------------
# Answers: rows, deltas, results
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_rows_answer_roundtrip(seed):
    rng = random.Random(seed)
    rows = rand_rows(rng, rng.randint(1, 4))
    message = Answer(sender="P2", target="P1",
                     in_reply_to=rng.randint(1, 99999),
                     payload=rows, version="v-abc",
                     bytes_estimate=rng.randint(1, 9999))
    decoded = decode_message(encode_message(message))
    assert decoded == message
    assert decoded.payload == rows


def test_empty_relation_roundtrip():
    message = Answer(sender="P2", target="P1", in_reply_to=7,
                     payload=(), version="v-empty", bytes_estimate=3)
    decoded = decode_message(encode_message(message))
    assert decoded.payload == ()
    assert decoded.version == "v-empty"


@pytest.mark.parametrize("seed", SEEDS)
def test_delta_chain_roundtrip_preserves_fingerprints(seed):
    """A delta chain collapsed and shipped over the wire must land the
    requester on the provider's exact content fingerprint."""
    rng = random.Random(seed)
    schema = DatabaseSchema([RelationSchema("R", 2)])
    rows = set(rand_rows(rng, 2, allow_empty=False))
    instances = [DatabaseInstance(schema, {"R": rows})]
    for _step in range(rng.randint(1, 4)):
        rows = set(rows)
        if rows and rng.random() < 0.6:
            rows.discard(rng.choice(sorted(rows, key=repr)))
        rows.add(rand_row(rng, 2))
        instances.append(DatabaseInstance(schema, {"R": rows}))
    chain = [delta_between(a, b)
             for a, b in zip(instances, instances[1:])]
    inserted, deleted = merge_relation_rows(chain, "R")
    message = Answer(
        sender="P2", target="P1", in_reply_to=1,
        payload={"insert": tuple(sorted(inserted, key=repr)),
                 "delete": tuple(sorted(deleted, key=repr))},
        version=instances[-1].fingerprint(), delta=True,
        bytes_estimate=17)
    decoded = decode_message(encode_message(message))
    assert decoded == message
    base = instances[0].tuples("R")
    replayed = ((base - frozenset(decoded.payload["delete"]))
                | frozenset(decoded.payload["insert"]))
    target = DatabaseInstance(schema, {"R": replayed})
    assert target.fingerprint() == decoded.version


@pytest.mark.parametrize("seed", SEEDS)
def test_query_result_roundtrip(seed):
    rng = random.Random(seed)
    failed = rng.random() < 0.3
    result = QueryResult(
        peer=f"P{rng.randrange(5)}",
        query=parse_query("q(X, Y) := R1(X, Y)"),
        answers=frozenset() if failed else
        frozenset(rand_rows(rng, 2)),
        semantics=rng.choice(("certain", "possible")),
        method_requested="auto",
        method_used=rng.choice(("asp", "rewrite", "lav")),
        solution_count=rng.choice((None, 0, rng.randint(1, 40))),
        elapsed=rng.random() * 3,
        exchange=ExchangeStats(rng.randint(0, 9), rng.randint(0, 99),
                               rng.randint(0, 9999), rng.randint(0, 4)),
        from_cache=rng.random() < 0.5,
        error=QueryError(code="peer-unreachable", message="gone ✗",
                         peer="P9") if failed else None,
    )
    revived = result_from_dict(result_to_dict(result))
    assert revived.peer == result.peer
    assert str(revived.query) == str(result.query)
    assert revived.answers == result.answers
    assert revived.semantics == result.semantics
    assert revived.method_used == result.method_used
    assert revived.method_requested == result.method_requested
    assert revived.solution_count == result.solution_count
    assert revived.elapsed == result.elapsed
    assert revived.exchange == result.exchange
    assert revived.from_cache == result.from_cache
    assert (revived.error is None) == (result.error is None)
    if result.error is not None:
        assert revived.error == result.error


# ---------------------------------------------------------------------------
# Subsystem payloads (the gather's full vocabulary)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(10))
def test_subsystem_payload_roundtrip(seed):
    rng = random.Random(seed)
    schema1 = DatabaseSchema([RelationSchema("R1", 2)])
    schema2 = DatabaseSchema(
        [RelationSchema("R2", 2, ("källa", "mål"))])
    peer1 = Peer("P1", schema1)
    peer2 = Peer("P2", schema2,
                 [InclusionDependency("R2", "R2", name="self✓",
                                      child_arity=2, parent_arity=2)])
    instance2 = DatabaseInstance(schema2, {"R2": rand_rows(rng, 2)})
    dec = DataExchange(
        "P1", "P2", InclusionDependency("R1", "R2", name="Σ(P1,P2)",
                                        child_arity=2, parent_arity=2))
    payload = {
        "peers": {"P1": peer1, "P2": peer2},
        "instances": {"P2": instance2},
        "decs": [dec],
        "trust": [("P1", TrustLevel.SAME, "P2")],
        "stats": ExchangeStats(3, 17, 412, 2),
    }
    message = Answer(sender="P2", target="P1", in_reply_to=5,
                     payload=payload, bytes_estimate=99)
    decoded = decode_message(encode_message(message))
    revived = decoded.payload
    assert set(revived["peers"]) == {"P1", "P2"}
    assert revived["peers"]["P2"].schema == schema2
    assert len(revived["peers"]["P2"].local_ics) == 1
    # the shipped instance must keep its exact content fingerprint —
    # versioned delta sync depends on it across processes
    assert revived["instances"]["P2"].fingerprint() == \
        instance2.fingerprint()
    assert len(revived["decs"]) == 1
    assert revived["decs"][0].owner == "P1"
    assert revived["decs"][0].constraint.name == "Σ(P1,P2)"
    assert revived["trust"] == [("P1", TrustLevel.SAME, "P2")]
    assert revived["stats"] == payload["stats"]


# ---------------------------------------------------------------------------
# Subtree aggregation (PR 9's routing surface)
# ---------------------------------------------------------------------------

def _rand_aggregate(rng: random.Random):
    from repro.routing.aggregate import build_subtree
    from repro.routing.digest import NeighbourDigests
    tables = {f"R{i}": rand_rows(rng, 2) for i in range(rng.randint(1, 3))}
    return build_subtree(
        f"P{rng.randrange(5)}",
        NeighbourDigests.from_tables("P", f"v{seed_marker(rng)}", tables),
        (), safe_root=rng.random() < 0.5, version=f"v{rng.randrange(9)}")


def seed_marker(rng: random.Random) -> int:
    return rng.randrange(100)


@pytest.mark.parametrize("seed", SEEDS)
def test_scoped_peer_query_roundtrip(seed):
    rng = random.Random(seed)
    message = PeerQuery(
        sender="P1", target="P2",
        hop_budget=rng.randint(0, 16),
        visited=("P0",),
        constants=tuple(rand_value(rng)
                        for _ in range(rng.randint(1, 4))),
        aggregate_token=rng.choice(("", "agg-0123456789abcdef")))
    assert decode_message(encode_message(message)) == message


@pytest.mark.parametrize("seed", SEEDS[:12])
def test_answer_with_aggregate_roundtrip(seed):
    rng = random.Random(seed)
    aggregate = _rand_aggregate(rng)
    message = Answer(
        sender="P2", target="P1", in_reply_to=rng.randint(1, 9999),
        payload={"peers": {}, "instances": {}, "decs": [], "trust": [],
                 "stats": ExchangeStats()},
        aggregate=aggregate, aggregate_token=aggregate.token,
        bytes_estimate=123)
    decoded = decode_message(encode_message(message))
    assert decoded.aggregate == aggregate
    assert decoded.aggregate_token == aggregate.token
    # the revived bits must keep proving exactly the same absences
    for probe in [rand_value(rng) for _ in range(20)]:
        assert (decoded.aggregate.disjoint_from([probe])
                == aggregate.disjoint_from([probe]))


def test_irrelevant_ack_roundtrip():
    stats = ExchangeStats(requests=2, subtrees_pruned=3,
                          neighbours_contacted=1)
    message = Answer(sender="P2", target="P1", in_reply_to=9,
                     payload={"irrelevant": True, "stats": stats},
                     aggregate_token="agg-feedfacecafebeef",
                     bytes_estimate=28)
    decoded = decode_message(encode_message(message))
    assert decoded.payload["irrelevant"] is True
    assert decoded.payload["stats"] == stats
    assert decoded.aggregate_token == "agg-feedfacecafebeef"


def test_subtrees_pruned_stat_survives_the_wire():
    stats = ExchangeStats(requests=5, subtrees_pruned=7)
    message = Answer(sender="P2", target="P1", in_reply_to=3,
                     payload={"peers": {}, "instances": {}, "decs": [],
                              "trust": [], "stats": stats},
                     bytes_estimate=50)
    decoded = decode_message(encode_message(message))
    assert decoded.payload["stats"].subtrees_pruned == 7


# ---------------------------------------------------------------------------
# Framing and the handshake
# ---------------------------------------------------------------------------

def test_frames_are_single_lines_even_with_embedded_newlines():
    message = Answer(sender="P2", target="P1", in_reply_to=1,
                     payload=(("a\nb", "c\r\nd"),), bytes_estimate=9)
    encoded = encode_message(message)
    assert encoded.endswith(b"\n")
    assert encoded.count(b"\n") == 1  # the terminator, nothing else
    assert decode_message(encoded).payload == (("a\nb", "c\r\nd"),)


def test_hello_handshake_accepts_itself():
    check_hello(hello_frame("P1"))  # must not raise


def test_hello_rejects_version_mismatch():
    frame = hello_frame("P1")
    frame["protocol"] = 999
    with pytest.raises(WireProtocolError, match="version mismatch"):
        check_hello(frame)


def test_hello_rejects_wrong_magic():
    with pytest.raises(WireProtocolError):
        check_hello({"type": "hello", "wire": "http", "protocol": 1})


def test_unknown_frame_type_is_typed():
    with pytest.raises(WireProtocolError, match="unknown frame type"):
        decode_message(b'{"type": "gossip", "sender": "a", '
                       b'"target": "b", "correlation_id": 1}\n')


def test_undecodable_frame_is_typed():
    with pytest.raises(WireProtocolError, match="undecodable"):
        decode_message(b"{torn json\n")


def test_read_frame_clean_eof_returns_none():
    assert read_frame(io.BytesIO(b"")) is None


def test_read_frame_torn_tail_is_typed():
    with pytest.raises(WireProtocolError, match="torn frame"):
        read_frame(io.BytesIO(b'{"type": "hello"'))


def test_read_frame_reads_exactly_one_frame():
    stream = io.BytesIO(encode_frame({"a": 1}) + encode_frame({"b": 2}))
    assert read_frame(stream) == {"a": 1}
    assert read_frame(stream) == {"b": 2}
    assert read_frame(stream) is None
