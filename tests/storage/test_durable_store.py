"""Unit tests for the durable FactStore backend (logs + snapshots)."""

import json

import pytest

from repro.relational import DatabaseInstance, DatabaseSchema, Fact
from repro.storage import (
    DurableFactStore,
    StorageError,
    apply_delta,
    describe_data_dir,
)

SCHEMA = DatabaseSchema.of({"R": 2, "S": 1})


def instance(**relations):
    return DatabaseInstance(SCHEMA, relations)


def store_at(path, **kwargs):
    return DurableFactStore(path, SCHEMA, **kwargs)


class TestInitialisation:
    def test_fresh_directory_seeds_a_snapshot(self, tmp_path):
        store = store_at(tmp_path / "s",
                         initial=instance(R=[("a", "b")]))
        assert (tmp_path / "s" / "snapshot.json").is_file()
        assert (tmp_path / "s" / "meta.json").is_file()
        assert store.tuples("R") == {("a", "b")}

    def test_missing_initial_means_empty(self, tmp_path):
        store = store_at(tmp_path / "s")
        assert store.instance == instance()

    def test_disk_state_wins_over_the_seed(self, tmp_path):
        first = store_at(tmp_path / "s", initial=instance(R=[("a", "b")]))
        first.apply_change(insertions=[Fact("S", ("x",))])
        first.close()
        # a restart passes the (stale) construction-time seed again
        second = store_at(tmp_path / "s", initial=instance())
        assert second.tuples("R") == {("a", "b")}
        assert second.tuples("S") == {("x",)}
        assert second.version() == first.version()

    def test_schema_mismatch_is_rejected(self, tmp_path):
        store_at(tmp_path / "s", initial=instance()).close()
        with pytest.raises(StorageError):
            DurableFactStore(tmp_path / "s",
                             DatabaseSchema.of({"R": 3, "S": 1}))

    def test_initial_with_wrong_schema_is_rejected(self, tmp_path):
        other = DatabaseInstance(DatabaseSchema.of({"T": 1}))
        with pytest.raises(StorageError):
            store_at(tmp_path / "s", initial=other)


class TestLogReplay:
    def test_reload_replays_deltas_and_history(self, tmp_path):
        store = store_at(tmp_path / "s", initial=instance(R=[("a", "b")]))
        v0 = store.version()
        store.apply_change(insertions=[Fact("R", ("c", "d"))])
        store.apply_change(deletions=[Fact("R", ("a", "b"))],
                           insertions=[Fact("S", ("x",))])
        expected = store.instance
        store.close()

        reloaded = store_at(tmp_path / "s")
        assert reloaded.instance == expected
        assert reloaded.version() == expected.fingerprint()
        # history survives the restart: old requesters still get deltas
        chain = reloaded.deltas_since(v0)
        assert chain is not None and len(chain) == 2
        assert apply_delta(instance(R=[("a", "b")]),
                           chain[0]) is not None

    def test_multi_relation_delta_is_grouped_on_replay(self, tmp_path):
        store = store_at(tmp_path / "s", initial=instance(R=[("a", "b")]))
        store.apply_change(insertions=[Fact("R", ("c", "d")),
                                       Fact("S", ("x",))],
                           deletions=[Fact("R", ("a", "b"))])
        store.close()
        reloaded = store_at(tmp_path / "s")
        assert reloaded.instance == instance(R=[("c", "d")], S=[("x",)])
        assert len(reloaded.history()) == 1

    def test_torn_log_tail_is_dropped_and_compacted(self, tmp_path):
        store = store_at(tmp_path / "s", initial=instance(R=[("a", "b")]))
        store.apply_change(insertions=[Fact("R", ("c", "d"))])
        good = store.instance
        store.close()
        log = tmp_path / "s" / "log" / "R.jsonl"
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 99, "base": "bogus"')  # torn write
        reloaded = store_at(tmp_path / "s")
        assert reloaded.instance == good
        # the recovery compacted: logs are clean again
        assert reloaded.pending_log_entries() == 0
        third = store_at(tmp_path / "s")
        assert third.instance == good

    def test_broken_chain_tail_is_dropped(self, tmp_path):
        store = store_at(tmp_path / "s", initial=instance(R=[("a", "b")]))
        store.apply_change(insertions=[Fact("R", ("c", "d"))])
        good = store.instance
        store.close()
        log = tmp_path / "s" / "log" / "R.jsonl"
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({
                "seq": 7, "base": "unrelated-version",
                "version": "nope", "insert": [["z", "z"]],
                "delete": []}) + "\n")
        reloaded = store_at(tmp_path / "s")
        assert reloaded.instance == good


class TestCompaction:
    def test_snapshot_every_n_deltas(self, tmp_path):
        store = store_at(tmp_path / "s", initial=instance(),
                         snapshot_every=3)
        for index in range(3):
            store.apply_change(insertions=[Fact("S", (f"x{index}",))])
        # the third delta triggered compaction: logs folded away
        assert store.pending_log_entries() == 0
        assert not list((tmp_path / "s" / "log").glob("*.jsonl"))
        with open(tmp_path / "s" / "snapshot.json",
                  encoding="utf-8") as handle:
            snapshot = json.load(handle)
        assert snapshot["version"] == store.version()
        reloaded = store_at(tmp_path / "s")
        assert reloaded.instance == store.instance

    def test_compacted_versions_fall_back_to_full(self, tmp_path):
        store = store_at(tmp_path / "s", initial=instance(),
                         snapshot_every=2)
        v0 = store.version()
        store.apply_change(insertions=[Fact("S", ("a",))])
        store.apply_change(insertions=[Fact("S", ("b",))])
        store.close()
        reloaded = store_at(tmp_path / "s")
        assert reloaded.deltas_since(v0) is None

    def test_explicit_compact(self, tmp_path):
        store = store_at(tmp_path / "s", initial=instance(R=[("a", "b")]))
        store.apply_change(insertions=[Fact("S", ("x",))])
        assert store.pending_log_entries() == 1
        store.compact()
        assert store.pending_log_entries() == 0
        assert store_at(tmp_path / "s").instance == store.instance


class TestSerialisationGuards:
    def test_non_json_values_raise_storage_error(self, tmp_path):
        store = store_at(tmp_path / "s", initial=instance())
        with pytest.raises(StorageError):
            store.apply_change(insertions=[Fact("S", (object(),))])


class TestDescribeDataDir:
    def test_describes_every_peer_store(self, tmp_path):
        for peer in ("P0", "P1"):
            store = DurableFactStore(tmp_path / peer / "store", SCHEMA,
                                     initial=instance(R=[("a", peer)]))
            store.apply_change(insertions=[Fact("S", ("x",))])
            store.close()
        described = describe_data_dir(tmp_path)
        assert sorted(described) == ["P0", "P1"]
        assert described["P0"]["relations"] == {"R": 1, "S": 1}
        assert described["P0"]["pending_log_entries"] == 1
        assert described["P0"]["version"] != described["P1"]["version"]

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(StorageError):
            describe_data_dir(tmp_path / "nowhere")


class TestReadOnly:
    def test_describe_does_not_mutate_the_directory(self, tmp_path):
        # inspection must never write: a live owner may be appending to
        # these very logs (regression: describe used to compact)
        store = store_at(tmp_path / "P0" / "store", initial=instance(),
                         snapshot_every=100)
        for index in range(70):  # past the inspector's old default
            store.apply_change(insertions=[Fact("S", (f"x{index}",))])
        store.close()
        before = {path: path.read_bytes() for path in
                  sorted((tmp_path / "P0").rglob("*")) if path.is_file()}
        describe_data_dir(tmp_path)
        after = {path: path.read_bytes() for path in
                 sorted((tmp_path / "P0").rglob("*")) if path.is_file()}
        assert before == after

    def test_readonly_store_rejects_mutation(self, tmp_path):
        store_at(tmp_path / "s", initial=instance()).close()
        reader = store_at(tmp_path / "s", readonly=True)
        with pytest.raises(StorageError):
            reader.apply_change(insertions=[Fact("S", ("x",))])
        with pytest.raises(StorageError):
            reader.compact()

    def test_readonly_needs_an_existing_store(self, tmp_path):
        with pytest.raises(StorageError):
            store_at(tmp_path / "missing", readonly=True)
