"""Unit tests for FactTable — the extracted in-memory fact storage."""

import pytest

from repro.storage import FactTable, row_sort_key


def table(**relations):
    return FactTable({name: frozenset(map(tuple, rows))
                      for name, rows in relations.items()})


class TestMappingProtocol:
    def test_getitem_iter_len(self):
        t = table(R=[("a", "b")], S=[])
        assert t["R"] == {("a", "b")}
        assert set(t) == {"R", "S"}
        assert len(t) == 2
        assert "R" in t and "T" not in t

    def test_equality_with_plain_dicts(self):
        t = table(R=[("a",)])
        assert t == {"R": frozenset({("a",)})}
        assert t == table(R=[("a",)])
        assert t != table(R=[("b",)])

    def test_size_and_row_count(self):
        t = table(R=[("a",), ("b",)], S=[("c",)])
        assert t.size() == 3
        assert t.row_count("R") == 2

    def test_pairs(self):
        t = table(R=[("a",)], S=[("b",)])
        assert set(t.pairs()) == {("R", ("a",)), ("S", ("b",))}


class TestFunctionalUpdates:
    def test_with_relations_replaces_without_mutating(self):
        t = table(R=[("a",)], S=[("b",)])
        u = t.with_relations({"R": frozenset({("z",)})})
        assert t["R"] == {("a",)}
        assert u["R"] == {("z",)}
        assert u["S"] is t["S"]

    def test_restrict_and_union(self):
        t = table(R=[("a",)], S=[("b",)])
        assert set(t.restrict(["R"])) == {"R"}
        u = t.restrict(["R"]).union(table(T=[("c",)]))
        assert set(u) == {"R", "T"}


class TestFingerprint:
    def test_deterministic_and_order_independent(self):
        one = table(R=[("a", "b"), ("c", "d")], S=[])
        two = table(S=[], R=[("c", "d"), ("a", "b")])
        assert one.fingerprint() == two.fingerprint()

    def test_sensitive_to_rows(self):
        assert table(R=[("a",)]).fingerprint() != \
            table(R=[("b",)]).fingerprint()

    def test_empty_relation_differs_from_missing(self):
        assert table(R=[("a",)], S=[]).fingerprint() != \
            table(R=[("a",)]).fingerprint()

    def test_distinguishes_value_types(self):
        # 1, "1", and True all print alike in naive encodings
        assert table(R=[(1,)]).fingerprint() != \
            table(R=[("1",)]).fingerprint()
        assert table(R=[(1,)]).fingerprint() != \
            table(R=[(True,)]).fingerprint()

    def test_row_sort_key_handles_mixed_types(self):
        rows = [("b", 2), (1, "a"), ("b", 1)]
        assert sorted(rows, key=row_sort_key) == \
            sorted(rows, key=row_sort_key)  # no TypeError, total order
        with pytest.raises(TypeError):
            sorted(rows)  # the failure mode the key exists for
