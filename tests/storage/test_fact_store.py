"""Unit tests for deltas and the in-memory FactStore backend."""

import pytest

from repro.relational import DatabaseInstance, DatabaseSchema, Fact
from repro.storage import (
    Delta,
    MemoryFactStore,
    StorageError,
    apply_delta,
    delta_between,
    merge_relation_rows,
)

SCHEMA = DatabaseSchema.of({"R": 2, "S": 1})


def instance(**relations):
    return DatabaseInstance(SCHEMA, relations)


class TestDelta:
    def test_delta_between_is_normalised(self):
        base = instance(R=[("a", "b")], S=[("x",)])
        target = instance(R=[("a", "b"), ("c", "d")])
        delta = delta_between(base, target)
        assert delta.insertions == (("R", ("c", "d")),)
        assert delta.deletions == (("S", ("x",)),)
        assert delta.base_version == base.fingerprint()
        assert delta.version == target.fingerprint()

    def test_apply_delta_reaches_exactly_the_target(self):
        base = instance(R=[("a", "b"), ("e", "f")], S=[("x",)])
        target = instance(R=[("c", "d"), ("e", "f")], S=[("x",), ("y",)])
        replayed = apply_delta(base, delta_between(base, target))
        assert replayed == target
        assert replayed.fingerprint() == target.fingerprint()

    def test_empty_delta_for_identical_content(self):
        base = instance(R=[("a", "b")])
        delta = delta_between(base, instance(R=[("a", "b")]))
        assert delta.empty
        assert delta.base_version == delta.version

    def test_dict_round_trip(self):
        delta = delta_between(instance(R=[("a", "b")]),
                              instance(S=[("x",)]))
        assert Delta.from_dict(delta.to_dict()) == delta

    def test_merge_relation_rows_cancels_across_the_chain(self):
        base = instance(R=[("a", "b")])
        mid = apply_delta(base, delta_between(
            base, instance(R=[("a", "b"), ("c", "d")])))
        d1 = delta_between(base, mid)
        d2 = delta_between(mid, instance(R=[("e", "f")]))
        inserted, deleted = merge_relation_rows([d1, d2], "R")
        # (c, d) was inserted then deleted again: it must cancel out
        assert inserted == {("e", "f")}
        assert deleted == {("a", "b")}

    def test_merge_ignores_other_relations(self):
        d = delta_between(instance(R=[("a", "b")], S=[("x",)]),
                          instance())
        inserted, deleted = merge_relation_rows([d], "S")
        assert inserted == set()
        assert deleted == {("x",)}


class TestMemoryFactStore:
    def test_versions_are_content_fingerprints(self):
        store = MemoryFactStore(instance(R=[("a", "b")]))
        twin = MemoryFactStore(instance(R=[("a", "b")]))
        assert store.version() == twin.version()
        assert store.version() == store.instance.fingerprint()

    def test_apply_change_logs_and_advances(self):
        store = MemoryFactStore(instance(R=[("a", "b")]))
        v0 = store.version()
        delta = store.apply_change(insertions=[Fact("R", ("c", "d"))])
        assert not delta.empty
        assert store.version() == delta.version != v0
        assert store.tuples("R") == {("a", "b"), ("c", "d")}
        assert store.deltas_since(v0) == [delta]
        assert store.deltas_since(store.version()) == []

    def test_noop_change_is_not_logged(self):
        store = MemoryFactStore(instance(R=[("a", "b")]))
        v0 = store.version()
        delta = store.apply_change(insertions=[Fact("R", ("a", "b"))],
                                   deletions=[Fact("S", ("zz",))])
        assert delta.empty
        assert store.version() == v0
        assert store.history() == ()

    def test_deltas_since_unknown_version_is_none(self):
        store = MemoryFactStore(instance(R=[("a", "b")]))
        assert store.deltas_since("not-a-version") is None

    def test_replace_diffs_against_current(self):
        store = MemoryFactStore(instance(R=[("a", "b")]))
        delta = store.replace(instance(R=[("c", "d")], S=[("x",)]))
        assert set(delta.insertions) == {("R", ("c", "d")),
                                         ("S", ("x",))}
        assert delta.deletions == (("R", ("a", "b")),)
        assert store.instance == instance(R=[("c", "d")], S=[("x",)])

    def test_replace_rejects_foreign_schema(self):
        store = MemoryFactStore(instance())
        other = DatabaseInstance(DatabaseSchema.of({"T": 1}))
        with pytest.raises(StorageError):
            store.replace(other)

    def test_chained_deltas_since_an_old_version(self):
        store = MemoryFactStore(instance())
        v0 = store.version()
        store.apply_change(insertions=[Fact("R", ("a", "b"))])
        v1 = store.version()
        store.apply_change(insertions=[Fact("S", ("x",))])
        chain = store.deltas_since(v0)
        assert [d.base_version for d in chain] == [v0, v1]
        replayed = instance()
        for delta in chain:
            replayed = apply_delta(replayed, delta)
        assert replayed == store.instance

    def test_history_trimmed_to_max(self):
        store = MemoryFactStore(instance(), max_history=2)
        v0 = store.version()
        for index in range(4):
            store.apply_change(insertions=[Fact("S", (f"x{index}",))])
        assert len(store.history()) == 2
        assert store.deltas_since(v0) is None  # trimmed away

    def test_replace_maintains_built_indexes_incrementally(self):
        store = MemoryFactStore(instance(R=[("a", "b")]))
        index = store.instance.index("R")
        assert index.matching({0: "a"}) == [("a", "b")]
        store.replace(instance(R=[("a", "b"), ("a", "c")]))
        # the new snapshot's index was derived, not rebuilt: column 0 is
        # already built and sees both rows
        new_index = store.instance.index("R")
        assert sorted(new_index.matching({0: "a"})) == \
            [("a", "b"), ("a", "c")]
        # the pre-update index object is untouched
        assert index.matching({0: "a"}) == [("a", "b")]
