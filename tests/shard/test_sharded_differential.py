"""The sharded differential harness: shard/replica clusters ≡ local.

The correctness contract of the shard layer: partitioning a peer's
facts across N shards × R replicas — behind the unchanged logical
surface — changes the *deployment*, never the *answers*.  Every paper
workload and ≥20 seeded synthetic systems must come back
tuple-for-tuple identical to
:class:`~repro.core.session.PeerQuerySession`, including through an
N→2N shard split and through the loss of one replica per shard; only a
shard losing its *last* replica may fail, and then as a typed error in
bounded time, never a hang.

All in-process (:class:`~repro.shard.runtime.ShardedNetwork` over a
shared loopback): the same router/node machinery the wire deployment
uses, without process spawns — which is what makes sweeping the full
seeded family affordable.  ``test_sharded_cluster.py`` re-checks the
contract's edges against real server processes.
"""

import itertools
import time

import pytest

from repro.core import PeerQuerySession
from repro.shard import ShardedNetwork, ShardMap
from repro.workloads import (
    conflict_chain_system,
    example1_system,
    example4_system,
    peer_chain_system,
    referential_system,
    section31_system,
    sharded_topology_system,
)

#: 3 topologies x 7 seeds = 21 seeded synthetic systems (>= 20)
SEEDS = range(7)
TOPOLOGIES = ("chain", "star", "random")
SYNTHETIC_CASES = list(itertools.product(TOPOLOGIES, SEEDS))


def assert_sharded_equivalent(system, peer, queries, *,
                              shards=2, replicas=1, shard_map=None,
                              methods=("auto",), semantics=("certain",)):
    local = PeerQuerySession(system)
    with ShardedNetwork(system, shards=shards, replicas=replicas,
                        shard_map=shard_map) as net:
        for query, method, kind in itertools.product(
                queries, methods, semantics):
            expected = local.answer(peer, query, method=method,
                                    semantics=kind)
            actual = net.answer(peer, query, method=method,
                                semantics=kind)
            assert actual.ok, (query, method, kind, actual.error)
            assert actual.answers == expected.answers, \
                (query, method, kind)
            assert actual.solution_count == expected.solution_count, \
                (query, method, kind)
            assert actual.method_used == expected.method_used, \
                (query, method, kind)


class TestPaperWorkloads:
    def test_example1(self):
        assert_sharded_equivalent(
            example1_system(), "P1",
            ["q(X, Y) := R1(X, Y)", "q(X) := exists Y R1(X, Y)"],
            shards=2, replicas=2,
            methods=("auto", "asp", "model", "rewrite"),
        )

    def test_example1_possible_semantics(self):
        assert_sharded_equivalent(
            example1_system(), "P1", ["q(X, Y) := R1(X, Y)"],
            shards=3,
            methods=("asp", "model"),
            semantics=("certain", "possible"),
        )

    def test_section31(self):
        assert_sharded_equivalent(
            section31_system(), "P",
            ["q(X, Y) := R2(X, Y)", "q(X, Y) := R1(X, Y)"],
            shards=2,
            methods=("auto", "asp", "lav"),
        )

    def test_example4_direct_and_transitive(self):
        assert_sharded_equivalent(
            example4_system(), "P", ["q(X, Y) := R2(X, Y)"],
            shards=2, replicas=2,
            methods=("auto", "asp", "transitive"),
        )

    def test_conflict_chain(self):
        assert_sharded_equivalent(
            conflict_chain_system(3, n_clean=2), "P1",
            ["q(X, Y) := R1(X, Y)"],
            shards=2,
            methods=("auto", "asp"),
            semantics=("certain", "possible"),
        )

    def test_referential(self):
        assert_sharded_equivalent(
            referential_system(2, n_witnesses=2, n_satisfied=1), "P",
            ["q(X, Y) := R2(X, Y)"],
            shards=3,
        )

    def test_peer_chain_transitive(self):
        assert_sharded_equivalent(
            peer_chain_system(3, n_tuples=2), "P0",
            ["q(X, Y) := T0(X, Y)"],
            shards=2,
            methods=("auto", "transitive"),
        )

    def test_partial_coverage(self):
        # only some peers sharded: the rest run as plain single nodes
        system = example1_system()
        assert_sharded_equivalent(
            system, "P1", ["q(X, Y) := R1(X, Y)"],
            shard_map=ShardMap({"P2": 2}),
        )


class TestSeededSynthetic:
    @pytest.mark.parametrize("topology,seed", SYNTHETIC_CASES)
    def test_seeded_system(self, topology, seed):
        system, shard_map = sharded_topology_system(
            3, shards=2 + seed % 2, topology=topology, n_tuples=3,
            conflicts=(seed % 2), extra_edges=1, seed=seed)
        assert_sharded_equivalent(
            system, "P0",
            ["q(X, Y) := R0(X, Y)", "q(X) := exists Y R0(X, Y)"],
            shard_map=shard_map, replicas=1 + seed % 2,
        )


class TestShardSplit:
    """N→2N resharding: same answers before, across, and after."""

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_split_preserves_answers(self, topology):
        system, shard_map = sharded_topology_system(
            3, shards=2, topology=topology, n_tuples=4, conflicts=1,
            seed=42)
        queries = ["q(X, Y) := R0(X, Y)", "q(X) := exists Y R0(X, Y)"]
        local = PeerQuerySession(system)
        expected = {q: local.answer("P0", q) for q in queries}
        for deployed in (shard_map, shard_map.split()):
            with ShardedNetwork(system, shard_map=deployed) as net:
                for query in queries:
                    actual = net.answer("P0", query)
                    assert actual.ok, (deployed, query, actual.error)
                    assert actual.answers == expected[query].answers
                    assert (actual.solution_count
                            == expected[query].solution_count)

    def test_split_one_peer_only(self):
        system = example1_system()
        shard_map = ShardMap.uniform(system.peers, 2).split("P2")
        assert shard_map.n_shards("P2") == 4
        assert_sharded_equivalent(
            system, "P1", ["q(X, Y) := R1(X, Y)"],
            shard_map=shard_map)


class TestReplicaLoss:
    def test_one_replica_per_shard_lost_still_answers(self):
        system, shard_map = sharded_topology_system(
            3, shards=2, topology="star", n_tuples=4, conflicts=1,
            seed=9)
        query = "q(X, Y) := R0(X, Y)"
        expected = PeerQuerySession(system).answer("P0", query)
        with ShardedNetwork(system, shard_map=shard_map, replicas=2,
                            cooldown=0.2) as net:
            before = net.answer("P0", query)
            assert before.ok and before.answers == expected.answers
            # kill the currently-preferred replica of *every* shard of
            # every peer: the drill the acceptance criteria name
            for peer in net.peers():
                for unit in net.client.primaries(peer).values():
                    net.kill(unit)
            after = net.answer("P0", query)
            assert after.ok, after.error
            assert after.answers == expected.answers
            assert after.solution_count == expected.solution_count

    def test_last_replica_loss_is_typed_and_bounded(self):
        system, shard_map = sharded_topology_system(
            3, shards=2, topology="star", n_tuples=3, seed=2)
        with ShardedNetwork(system, shard_map=shard_map, replicas=1,
                            retries=1) as net:
            for unit in net.units():
                if unit.startswith("P1#"):
                    net.kill(unit)
            start = time.perf_counter()
            result = net.answer("P1", "q(X, Y) := R1(X, Y)")
            wall = time.perf_counter() - start
            assert result.failed
            assert result.error.code == "peer-unreachable"
            assert wall < 60.0  # typed failure, not a hang

    def test_revived_replica_is_rediscovered(self):
        system, shard_map = sharded_topology_system(
            2, shards=2, topology="chain", n_tuples=3, seed=6)
        query = "q(X, Y) := R0(X, Y)"
        expected = PeerQuerySession(system).answer("P0", query)
        with ShardedNetwork(system, shard_map=shard_map, replicas=1,
                            cooldown=0.05) as net:
            victim = next(unit for unit in net.units()
                          if unit.startswith("P1#"))
            net.kill(victim)
            lost = net.answer("P0", query)
            assert lost.failed
            net.revive(victim)
            net.reset_health()
            back = net.answer("P0", query)
            assert back.ok, back.error
            assert back.answers == expected.answers
