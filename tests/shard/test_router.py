"""ShardRouter unit tests over scripted loopback handlers.

The router's contracts, checked without any real nodes: fetch fan-out
and merge (full, delta, mixed), composed version tokens, single-shard
query routing, replica failover with health benching, typed
last-replica errors, and pass-through for uncovered peers.
"""

import pytest

from repro.net.errors import PeerDown
from repro.net.protocol import Answer, AnswerQuery, Failure, FetchRelation
from repro.net.transport import LoopbackTransport
from repro.shard import ReplicaSet, ShardError, ShardMap, ShardRouter


def make_router(replicas=1, *, cooldown=0.2, counts=None):
    shard_map = ShardMap(counts or {"P": 2})
    transport = LoopbackTransport()
    layout = {
        shard: [f"{shard}@{r}" for r in range(replicas)]
        for peer in shard_map.counts
        for shard in shard_map.shard_names(peer)
    }
    router = ShardRouter(shard_map, layout, transport,
                         local_name="client", cooldown=cooldown)
    return router, transport, layout


def fetch_handler(rows, version, *, delta_to=None, calls=None):
    """A scripted shard server for one relation.

    With ``delta_to`` set, a request already knowing ``version`` gets
    an (empty or given) delta stamped at the same version; anything
    else gets the full rows.
    """
    def handle(message):
        if calls is not None:
            calls.append(message)
        if delta_to is not None and message.known_version == version:
            return Answer(sender=message.target, target=message.sender,
                          in_reply_to=message.correlation_id,
                          payload=delta_to, version=version, delta=True)
        return Answer(sender=message.target, target=message.sender,
                      in_reply_to=message.correlation_id,
                      payload=tuple(rows), version=version)
    return handle


class TestFetchMerge:
    def test_full_fetch_unions_shards_and_composes_version(self):
        router, transport, _ = make_router()
        transport.register("P#0@0", fetch_handler([("a", 1)], "v0"))
        transport.register("P#1@0", fetch_handler([("b", 2)], "v1"))
        message = FetchRelation(sender="client", target="P",
                                relation="R")
        reply = router.request(message)
        assert isinstance(reply, Answer)
        assert frozenset(reply.payload) == {("a", 1), ("b", 2)}
        assert reply.version == "shards(P#0=v0,P#1=v1)"
        assert reply.in_reply_to == message.correlation_id
        assert not reply.delta

    def test_known_composed_token_fetches_deltas(self):
        calls0, calls1 = [], []
        router, transport, _ = make_router()
        transport.register("P#0@0", fetch_handler(
            [("a", 1)], "v0",
            delta_to={"insert": (("c", 3),), "delete": ()},
            calls=calls0))
        transport.register("P#1@0", fetch_handler(
            [("b", 2)], "v1", delta_to={"insert": (), "delete": ()},
            calls=calls1))
        reply = router.request(FetchRelation(
            sender="client", target="P", relation="R",
            known_version="shards(P#0=v0,P#1=v1)"))
        assert reply.delta
        assert frozenset(reply.payload["insert"]) == {("c", 3)}
        assert reply.payload["delete"] == ()
        assert reply.version == "shards(P#0=v0,P#1=v1)"
        # each shard saw its own slice of the composed token
        assert calls0[0].known_version == "v0"
        assert calls1[0].known_version == "v1"

    def test_pre_split_token_falls_back_to_full_fetch(self):
        calls = []
        router, transport, _ = make_router()
        transport.register("P#0@0", fetch_handler(
            [("a", 1)], "v0", delta_to={"insert": (), "delete": ()},
            calls=calls))
        transport.register("P#1@0", fetch_handler([("b", 2)], "v1"))
        reply = router.request(FetchRelation(
            sender="client", target="P", relation="R",
            known_version="shards(P#0=old0)"))  # one-shard-era token
        assert not reply.delta
        assert frozenset(reply.payload) == {("a", 1), ("b", 2)}
        assert calls[0].known_version == ""

    def test_mixed_replies_refetch_delta_shards_in_full(self):
        # shard 0 honours the known version (delta), shard 1 moved on
        # (full): the merged reply must be full and coherent
        router, transport, _ = make_router()
        transport.register("P#0@0", fetch_handler(
            [("a", 1)], "v0", delta_to={"insert": (), "delete": ()}))
        transport.register("P#1@0", fetch_handler([("b", 2)], "v9"))
        reply = router.request(FetchRelation(
            sender="client", target="P", relation="R",
            known_version="shards(P#0=v0,P#1=v1)"))
        assert not reply.delta
        assert frozenset(reply.payload) == {("a", 1), ("b", 2)}
        assert reply.version == "shards(P#0=v0,P#1=v9)"

    def test_failure_reply_passes_through(self):
        router, transport, _ = make_router()
        transport.register("P#0@0", fetch_handler([("a", 1)], "v0"))

        def failing(message):
            return Failure(sender=message.target, target=message.sender,
                           in_reply_to=message.correlation_id,
                           code="internal", detail="boom")
        transport.register("P#1@0", failing)
        reply = router.request(FetchRelation(
            sender="client", target="P", relation="R"))
        assert isinstance(reply, Failure)
        assert reply.code == "internal"


class TestQueryRouting:
    def test_query_goes_to_exactly_one_shard(self):
        served = []

        def answering(message):
            served.append(message.target)
            return Answer(sender=message.target, target=message.sender,
                          in_reply_to=message.correlation_id,
                          payload="result")
        router, transport, _ = make_router()
        transport.register("P#0@0", answering)
        transport.register("P#1@0", answering)
        reply = router.request(AnswerQuery(
            sender="client", target="P", query="q(X) := R(X)"))
        assert reply.payload == "result"
        assert len(served) == 1, "answers must never union across shards"

    def test_uncovered_peer_passes_through(self):
        router, transport, _ = make_router()
        transport.register("plain", fetch_handler([("z", 0)], "vz"))
        reply = router.request(FetchRelation(
            sender="client", target="plain", relation="R"))
        assert frozenset(reply.payload) == {("z", 0)}
        assert reply.version == "vz", "no composed token for plain peers"


class TestFailover:
    def test_replica_failover_and_benching(self):
        router, transport, _ = make_router(replicas=2, cooldown=30.0)
        transport.register("P#0@0", fetch_handler([("a", 1)], "v0"))
        transport.register("P#0@1", fetch_handler([("a", 1)], "v0"))
        transport.register("P#1@0", fetch_handler([("b", 2)], "v1"))
        transport.register("P#1@1", fetch_handler([("b", 2)], "v1"))
        replica_set = router.replica_sets("P")["P#0"]
        primary = replica_set.primary()
        transport.set_down(primary)
        message = FetchRelation(sender="client", target="P",
                                relation="R")
        reply = router.request(message)
        assert frozenset(reply.payload) == {("a", 1), ("b", 2)}
        assert replica_set.status()[primary] == "down"
        # the benched replica is skipped without another attempt
        assert replica_set.primary() != primary
        router.reset_health()
        assert replica_set.status()[primary] == "up"

    def test_last_replica_loss_is_typed(self):
        router, transport, _ = make_router(replicas=2)
        transport.register("P#0@0", fetch_handler([("a", 1)], "v0"))
        transport.register("P#0@1", fetch_handler([("a", 1)], "v0"))
        transport.register("P#1@0", fetch_handler([("b", 2)], "v1"))
        transport.register("P#1@1", fetch_handler([("b", 2)], "v1"))
        transport.set_down("P#1@0")
        transport.set_down("P#1@1")
        with pytest.raises(PeerDown) as excinfo:
            router.request(FetchRelation(sender="client", target="P",
                                         relation="R"))
        assert "last replica" in str(excinfo.value)

    def test_query_tries_other_shards_before_giving_up(self):
        router, transport, _ = make_router()
        transport.register("P#0@0", fetch_handler([("a", 1)], "v0"))

        def answering(message):
            return Answer(sender=message.target, target=message.sender,
                          in_reply_to=message.correlation_id,
                          payload="from-shard-1")
        transport.register("P#1@0", answering)
        transport.set_down("P#0@0")
        reply = router.request(AnswerQuery(
            sender="client", target="P", query="q(X) := R(X)"))
        assert reply.payload == "from-shard-1"
        transport.set_down("P#1@0")
        with pytest.raises(PeerDown) as excinfo:
            router.request(AnswerQuery(sender="client", target="P",
                                       query="q(X) := R(X)"))
        assert "no shard has a reachable replica" in str(excinfo.value)


class TestReplicaSet:
    def test_rotation_is_deterministic_per_seed(self):
        replicas = ["s@0", "s@1", "s@2"]
        a = ReplicaSet("s", replicas, offset=1)
        assert a.candidates() == ["s@1", "s@2", "s@0"]
        b = ReplicaSet("s", replicas, offset=1)
        assert a.candidates() == b.candidates()

    def test_empty_replica_set_rejected(self):
        with pytest.raises(ShardError):
            ReplicaSet("s", [])


class TestLayoutValidation:
    def test_partial_deployment_rejected(self):
        shard_map = ShardMap({"P": 2})
        with pytest.raises(ShardError) as excinfo:
            ShardRouter(shard_map, {"P#0": ["P#0@0"]},
                        LoopbackTransport())
        assert "partially deployed" in str(excinfo.value)

    def test_undeployed_covered_peer_passes_through(self):
        # covered by the map but absent from this router's layout:
        # requests go to the inner transport under the logical name
        shard_map = ShardMap({"P": 2, "Q": 2})
        transport = LoopbackTransport()
        transport.register("Q", fetch_handler([("q", 1)], "vq"))
        router = ShardRouter(
            shard_map, {"P#0": ["P#0@0"], "P#1": ["P#1@0"]}, transport)
        reply = router.request(FetchRelation(
            sender="client", target="Q", relation="R"))
        assert frozenset(reply.payload) == {("q", 1)}

    def test_addresses_show_logical_surface(self):
        router, _transport, _ = make_router(replicas=2)
        assert router.addresses() == {"P": "sharded:2x2"}
