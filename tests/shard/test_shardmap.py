"""ShardMap: deterministic placement, partitioning, naming, tokens."""

import pytest

from repro.shard import (
    ShardError,
    ShardMap,
    cluster_units,
    compose_shard_versions,
    decompose_shard_versions,
    parse_replica_name,
    replica_layout,
    replica_name,
    shard_name,
)
from repro.workloads import example1_system, topology_system


class TestPlacement:
    def test_deterministic_across_instances(self):
        a = ShardMap.uniform(["P"], 4)
        b = ShardMap.from_json(a.to_json())
        rows = [(f"k{i}", f"v{i}") for i in range(50)]
        for row in rows:
            assert a.shard_of("P", "R", row) == b.shard_of("P", "R", row)

    def test_placement_is_not_python_hash(self):
        # blake2b of the canonical key: a known, frozen placement —
        # if this changes, deployed clients and servers disagree
        shard_map = ShardMap.uniform(["P"], 2)
        placements = [shard_map.shard_of("P", "R", (f"k{i}", "v"))
                      for i in range(8)]
        assert placements == [
            shard_map.shard_of("P", "R", (f"k{i}", "other"))
            for i in range(8)
        ], "placement must depend only on relation and key"
        assert len(set(placements)) == 2, "both shards must be used"

    def test_single_shard_and_uncovered_peers(self):
        shard_map = ShardMap({"P": 1})
        assert shard_map.shard_of("P", "R", ("k", "v")) == 0
        assert shard_map.n_shards("other") == 1
        assert not shard_map.covers("other")

    def test_restrict_partitions_instance(self):
        system = topology_system(3, topology="star", n_tuples=9, seed=3)
        shard_map = ShardMap.uniform(system.peers, 3)
        for peer, instance in system.instances.items():
            slices = [shard_map.restrict(instance, peer, shard)
                      for shard in range(3)]
            for relation in instance.relations():
                parts = [s.tuples(relation) for s in slices]
                whole = frozenset().union(*parts)
                assert whole == instance.tuples(relation)
                assert sum(len(p) for p in parts) == len(whole), \
                    "slices must be disjoint"

    def test_restrict_range_checked(self):
        system = example1_system()
        shard_map = ShardMap.uniform(system.peers, 2)
        with pytest.raises(ShardError):
            shard_map.restrict(system.instances["P1"], "P1", 2)

    def test_counts_validated(self):
        with pytest.raises(ShardError):
            ShardMap({"P": 0})
        with pytest.raises(ShardError):
            ShardMap({"P": "two"})


class TestSplit:
    def test_split_doubles_and_repartitions(self):
        system = example1_system()
        shard_map = ShardMap.uniform(system.peers, 2)
        doubled = shard_map.split()
        assert doubled.counts == {p: 4 for p in system.peers}
        instance = system.instances["P1"]
        whole = frozenset().union(
            *[doubled.restrict(instance, "P1", s).tuples("R1")
              for s in range(4)])
        assert whole == instance.tuples("R1")

    def test_split_one_peer(self):
        shard_map = ShardMap({"P": 2, "Q": 2})
        split = shard_map.split("P")
        assert split.counts == {"P": 4, "Q": 2}
        with pytest.raises(ShardError):
            shard_map.split("missing")


class TestNaming:
    def test_roundtrip(self):
        assert shard_name("P2", 1) == "P2#1"
        name = replica_name("P2", 1, 3)
        assert name == "P2#1@3"
        assert parse_replica_name(name) == ("P2", 1, 3)

    def test_plain_names_do_not_parse(self):
        assert parse_replica_name("P2") is None
        assert parse_replica_name("P2#1") is None

    def test_cluster_units_and_layout(self):
        shard_map = ShardMap({"P": 2})
        units = cluster_units(shard_map, ["P", "Q"], replicas=2)
        assert units == ("P#0@0", "P#0@1", "P#1@0", "P#1@1", "Q")
        layout = replica_layout(shard_map, units)
        assert layout == {"P#0": ["P#0@0", "P#0@1"],
                          "P#1": ["P#1@0", "P#1@1"]}

    def test_cluster_units_needs_a_replica(self):
        with pytest.raises(ShardError):
            cluster_units(ShardMap({"P": 2}), ["P"], replicas=0)


class TestSerialization:
    def test_json_roundtrip(self):
        shard_map = ShardMap({"P": 2, "Q": 5})
        assert ShardMap.from_json(shard_map.to_json()) == shard_map

    def test_foreign_format_rejected(self):
        payload = ShardMap({"P": 2}).to_dict()
        payload["format"] = 99
        with pytest.raises(ShardError):
            ShardMap.from_dict(payload)
        payload = ShardMap({"P": 2}).to_dict()
        payload["algorithm"] = "md5-key1"
        with pytest.raises(ShardError):
            ShardMap.from_dict(payload)
        with pytest.raises(ShardError):
            ShardMap.from_json("not json")


class TestComposedVersions:
    def test_roundtrip(self):
        versions = {"P#0": "aaa", "P#1": "bbb"}
        token = compose_shard_versions(versions)
        assert token == "shards(P#0=aaa,P#1=bbb)"
        assert decompose_shard_versions(token) == versions

    def test_foreign_tokens_decompose_to_none(self):
        assert decompose_shard_versions("deadbeef") is None
        assert decompose_shard_versions("shards(broken") is None
        assert decompose_shard_versions("shards(nosep)") is None

    def test_token_is_layout_sensitive(self):
        # the decomposed shard set is what _fetch_sharded compares
        # against the live layout to detect a pre-split token
        token = compose_shard_versions({"P#0": "a", "P#1": "b"})
        decomposed = decompose_shard_versions(token)
        live = ShardMap({"P": 4}).shard_names("P")
        assert set(decomposed) != set(live)
