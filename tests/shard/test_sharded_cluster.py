"""Sharded clusters over real server processes.

The process-level edge of the shard differential contract: the same
equivalences ``test_sharded_differential.py`` sweeps in-process must
hold when every shard replica is a live ``repro serve`` process —
serialization, sockets, supervisor kills and restarts included.  Kept
to a focused set of drills; the broad seeded sweep stays in-process.
"""

import time

import pytest

from repro.core import PeerQuerySession
from repro.shard import ShardMap, open_sharded_session
from repro.wire import ClusterError, ClusterSupervisor
from repro.workloads import example1_system, sharded_topology_system

QUERIES = ["q(X, Y) := R1(X, Y)", "q(X) := exists Y R1(X, Y)"]


class TestDifferential:
    def test_example1_sharded_replicated(self):
        system = example1_system()
        local = PeerQuerySession(system)
        with open_sharded_session(system, shards=2,
                                  replicas=2) as session:
            assert session.peers() == ("P1", "P2", "P3")
            for query in QUERIES:
                expected = local.answer("P1", query)
                actual = session.answer("P1", query)
                assert actual.ok, (query, actual.error)
                assert actual.answers == expected.answers
                assert actual.solution_count == expected.solution_count
                assert actual.method_used == expected.method_used

    def test_seeded_system_through_split(self):
        system, shard_map = sharded_topology_system(
            3, shards=2, topology="random", n_tuples=3, conflicts=1,
            extra_edges=1, seed=4)
        query = "q(X, Y) := R0(X, Y)"
        expected = PeerQuerySession(system).answer("P0", query)
        for deployed in (shard_map, shard_map.split()):
            with open_sharded_session(system,
                                      shard_map=deployed) as session:
                actual = session.answer("P0", query)
                assert actual.ok, (deployed, actual.error)
                assert actual.answers == expected.answers
                assert (actual.solution_count
                        == expected.solution_count)


class TestFaultDrills:
    def test_kill_one_replica_per_shard_still_answers(self):
        system = example1_system()
        query = "q(X, Y) := R1(X, Y)"
        expected = PeerQuerySession(system).answer("P1", query)
        with open_sharded_session(system, shards=2, replicas=2,
                                  cooldown=0.2) as session:
            supervisor = session.supervisor
            for peer in session.peers():
                for unit in supervisor.shard_units(peer):
                    if unit.endswith("@0"):
                        supervisor.kill(unit)
            actual = session.answer("P1", query)
            assert actual.ok, actual.error
            assert actual.answers == expected.answers

    def test_last_replica_loss_is_typed_and_bounded(self):
        system = example1_system()
        with open_sharded_session(system, shards=2, replicas=1,
                                  retries=1, request_timeout=10.0,
                                  connect_timeout=1.0) as session:
            supervisor = session.supervisor
            for unit in supervisor.shard_units("P1"):
                supervisor.kill(unit)
            start = time.perf_counter()
            result = session.answer("P1", "q(X, Y) := R1(X, Y)")
            wall = time.perf_counter() - start
            assert result.failed
            assert result.error.code == "peer-unreachable"
            assert wall < 60.0  # typed failure, not a hang

    def test_restart_rejoins_on_old_address(self):
        system = example1_system()
        query = "q(X, Y) := R2(X, Y)"
        expected = PeerQuerySession(system).answer("P2", query)
        with open_sharded_session(system, shards=2, replicas=1,
                                  cooldown=0.2) as session:
            supervisor = session.supervisor
            victim = supervisor.shard_units("P2")[0]
            old_address = supervisor.addresses()[victim]
            supervisor.kill(victim)
            lost = session.answer("P2", query)
            assert lost.failed  # last replica of that shard
            assert supervisor.restart(victim) == old_address
            session.transport.reset_health()
            back = session.answer("P2", query)
            assert back.ok, back.error
            assert back.answers == expected.answers


class TestSupervisorSurface:
    def test_units_enumerate_shard_replicas(self):
        system = example1_system()
        shard_map = ShardMap({"P1": 2})
        supervisor = ClusterSupervisor(system, shard_map=shard_map,
                                       replicas=2)
        assert supervisor.units == ("P1#0@0", "P1#0@1", "P1#1@0",
                                    "P1#1@1", "P2", "P3")
        assert supervisor.shard_units("P1") == (
            "P1#0@0", "P1#0@1", "P1#1@0", "P1#1@1")
        assert supervisor.shard_units("P2") == ("P2",)

    def test_restart_of_running_unit_refuses_typed(self):
        system = example1_system()
        with open_sharded_session(system, shards=2,
                                  replicas=1) as session:
            supervisor = session.supervisor
            unit = supervisor.shard_units("P1")[0]
            with pytest.raises(ClusterError, match="still running"):
                supervisor.restart(unit)
