"""Unit suite for the fused per-node routing index.

Covers the three learned signals (descriptions, digests, traffic), the
subsystem payload cache (token stability, stats exclusion, LRU bound),
and the synthesis guards that keep pruning a pure optimisation: no
description, unclaimed targets, or a relation-less peer all refuse.
"""

from repro.core.messaging import ExchangeLog
from repro.core.results import ExchangeStats
from repro.relational.instance import DatabaseInstance
from repro.routing.digest import NeighbourDigests
from repro.routing.index import RoutingIndex, subsystem_fingerprint
from repro.workloads import example1_system


def system_payload(system, *, exclude=()):
    """A subsystem payload as a gather would merge it, minus ``exclude``
    (the owner never describes itself in a payload it receives)."""
    names = [name for name in system.peers if name not in exclude]
    return {
        "peers": {name: system.peers[name] for name in names},
        "instances": {name: system.instances[name] for name in names},
        "decs": [dec for dec in system.exchanges
                 if dec.owner not in exclude],
        "trust": [edge for edge in system.trust.edges()
                  if edge[0] not in exclude],
        "stats": ExchangeStats(),
    }


class TestTopologyLearning:
    def test_descriptions_mined_with_owner_scoped_decs(self):
        system = example1_system()
        index = RoutingIndex("P1")
        index.learn_topology(system_payload(system, exclude=("P1",)))
        assert index.description("P1") is None  # never self
        description = index.description("P2")
        assert description is not None
        assert description.peer is system.peers["P2"]
        assert all(dec.owner == "P2" for dec in description.decs)
        assert description.targets == frozenset(
            dec.other for dec in system.exchanges if dec.owner == "P2")
        assert all(edge[0] == "P2" for edge in description.trust)

    def test_synthesize_requires_claimed_targets(self):
        # in Example 1 only P1 owns DECs (P1->P2, P1->P3), so learn it
        # from P2's side and synthesize P1's reply
        system = example1_system()
        index = RoutingIndex("P2")
        index.learn_topology(system_payload(system, exclude=("P2",)))
        targets = frozenset(dec.other for dec in system.exchanges
                            if dec.owner == "P1")
        assert targets == {"P2", "P3"}
        claimed = frozenset({"P1", "P2"}) | targets
        synthesized = index.synthesize("P1", claimed)
        assert synthesized is not None
        assert set(synthesized["peers"]) == {"P1"}
        assert synthesized["instances"] == {}
        assert tuple(synthesized["decs"]) == index.description("P1").decs
        # an unclaimed target means the real gather would recurse:
        # synthesis must refuse rather than guess
        assert index.synthesize("P1", claimed - {"P3"}) is None

    def test_synthesize_refuses_unknown_and_relationless_peers(self):
        system = example1_system()
        index = RoutingIndex("P1")
        assert index.synthesize("P2", frozenset(system.peers)) is None
        index.learn_topology(system_payload(system, exclude=("P1",)))
        assert index.synthesize("nobody", frozenset(system.peers)) is None


class TestSubsystemCache:
    def test_token_excludes_stats_but_tracks_content(self):
        system = example1_system()
        payload = system_payload(system, exclude=("P1",))
        token = subsystem_fingerprint(payload)
        assert token
        restamped = {**payload, "stats": ExchangeStats(requests=9)}
        assert subsystem_fingerprint(restamped) == token
        name = "P2"
        schema = system.peers[name].schema
        relation = sorted(schema.names)[0]
        mutated = {**payload, "instances": {
            **payload["instances"],
            name: DatabaseInstance(schema,
                                   {relation: frozenset([("x", "y")])})}}
        assert subsystem_fingerprint(mutated) != token

    def test_recall_round_trips_remember(self):
        system = example1_system()
        payload = system_payload(system, exclude=("P1",))
        token = subsystem_fingerprint(payload)
        index = RoutingIndex("P1")
        context = frozenset({"P1", "P2"})
        assert index.recall_subsystem("P2", context) == ("", None)
        index.remember_subsystem("P2", context, token, payload)
        held_token, entry = index.recall_subsystem("P2", context)
        assert held_token == token
        assert entry["instances"] == payload["instances"]
        # a different gather context is a different cache line
        assert index.recall_subsystem(
            "P2", frozenset({"P1", "P2", "P3"})) == ("", None)

    def test_payload_cache_is_lru_bounded(self):
        system = example1_system()
        payload = system_payload(system, exclude=("P1",))
        index = RoutingIndex("P1", max_payloads=2)
        contexts = [frozenset({"P1", f"X{i}"}) for i in range(3)]
        for i, context in enumerate(contexts[:2]):
            index.remember_subsystem("P2", context, f"t{i}", payload)
        # touching the oldest entry makes the *other* one the victim
        assert index.recall_subsystem("P2", contexts[0])[0] == "t0"
        index.remember_subsystem("P2", contexts[2], "t2", payload)
        assert index.recall_subsystem("P2", contexts[0])[0] == "t0"
        assert index.recall_subsystem("P2", contexts[1]) == ("", None)
        assert index.recall_subsystem("P2", contexts[2])[0] == "t2"


class TestDigestsAndTraffic:
    def test_observed_digests_are_versioned_per_peer(self):
        index = RoutingIndex("P1")
        assert index.digest_version("P2") == ""
        assert index.digests_for("P2") is None
        digests = NeighbourDigests.from_tables("P2", "v7",
                                               {"R": [("a", 1)]})
        index.observe_digests(digests)
        assert index.digest_version("P2") == "v7"
        assert index.digests_for("P2") is digests
        fresher = NeighbourDigests.from_tables("P2", "v8", {"R": []})
        index.observe_digests(fresher)
        assert index.digest_version("P2") == "v8"

    def test_ingest_log_mines_only_own_requests_incrementally(self):
        log = ExchangeLog()
        index = RoutingIndex("P1")
        log.record("P1", "P2", "R", 5, "gather", bytes_estimate=50)
        log.record("P9", "P3", "R", 9, "gather", bytes_estimate=90)
        index.ingest_log(log)
        assert index.traffic.known_providers() == ("P2",)
        # already-seen events are not re-ingested
        log.record("P1", "P3", "R", 0, "gather")
        index.ingest_log(log)
        index.ingest_log(log)
        assert index.traffic.known_providers() == ("P2", "P3")
        assert index.order(["P3", "P2"]) == ["P2", "P3"]
