"""Seeded property suite for the Bloom-style relation digests.

The routing layer's load-bearing guarantee is **no false negatives**:
:meth:`~repro.routing.digest.RelationDigest.may_contain` may only return
``False`` for first-column values that are provably absent, so
``disjoint_from`` proving disjointness means the relation cannot
contribute a matching tuple.  The suite pins that direction over seeded
random relations (unicode constants, mixed types, empty relations),
plus the shard-merge algebra and the wire dict round-trip.
"""

import random

import pytest

from repro.routing.digest import (
    DIGEST_BITS,
    DIGEST_MAX_BITS,
    NeighbourDigests,
    RelationDigest,
    adaptive_nbits,
    digest_bytes,
    merge_neighbour_digests,
)

SEEDS = range(20)

#: alphabets chosen to break naive hashing/encoding assumptions
_ALPHABETS = (
    "abcdefgh",
    "éüñß-ÅØ",
    "数据库系统",
    "🛰🔌🧵",
    "\n\t\"\\,:{}[]' ",
)


def rand_value(rng: random.Random):
    if rng.randrange(3) == 0:
        return rng.randint(-10_000, 10_000)
    alphabet = rng.choice(_ALPHABETS)
    return "".join(rng.choice(alphabet)
                   for _ in range(rng.randint(0, 6)))


def rand_rows(rng: random.Random, *, allow_empty: bool = True):
    low = 0 if allow_empty else 1
    return [
        (rand_value(rng), rand_value(rng))
        for _ in range(rng.randint(low, 30))
    ]


class TestNoFalseNegatives:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_stored_key_may_be_contained(self, seed):
        rng = random.Random(seed)
        rows = rand_rows(rng, allow_empty=False)
        digest = RelationDigest.from_rows("R", rows)
        for row in rows:
            assert digest.may_contain(row[0]), row

    @pytest.mark.parametrize("seed", SEEDS)
    def test_disjoint_proof_is_sound(self, seed):
        """``disjoint_from(values) == True`` must prove no stored row's
        first column equals any probed value (a contact can be skipped
        only on a proof; false positives are merely wasted contacts)."""
        rng = random.Random(seed)
        rows = rand_rows(rng)
        digest = RelationDigest.from_rows("R", rows)
        stored = {row[0] for row in rows}
        probes = [rand_value(rng) for _ in range(50)]
        if digest.disjoint_from(probes):
            assert not (set(probes) & stored)
        for probe in probes:
            if not digest.may_contain(probe):
                assert probe not in stored

    def test_any_stored_probe_defeats_disjointness(self):
        rows = [("a", 1), ("é", 2), ("数", 3)]
        digest = RelationDigest.from_rows("R", rows)
        for key in ("a", "é", "数"):
            assert not digest.disjoint_from(["zz", key])

    def test_empty_relation_is_disjoint_from_everything(self):
        digest = RelationDigest.from_rows("R", [])
        assert digest.row_count == 0
        assert not digest.may_contain("anything")
        assert digest.disjoint_from(["a", 0, "🛰", ""])

    def test_hashing_is_process_stable(self):
        """Two independently built digests of the same rows agree bit
        for bit (blake2b over the canonical encoding, never the salted
        builtin hash)."""
        rows = [("clé", 1), (42, "x")]
        one = RelationDigest.from_rows("R", rows)
        two = RelationDigest.from_rows("R", list(reversed(rows)))
        assert one.bits == two.bits
        assert one.fingerprint == two.fingerprint


class TestMerge:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_merged_slices_keep_the_guarantee(self, seed):
        rng = random.Random(seed)
        rows = rand_rows(rng, allow_empty=False)
        cut = rng.randint(0, len(rows))
        left = RelationDigest.from_rows("R", rows[:cut])
        right = RelationDigest.from_rows("R", rows[cut:])
        merged = left.merge(right)
        assert merged.row_count == len(rows)
        for row in rows:
            assert merged.may_contain(row[0]), row

    def test_mismatched_parameters_refuse_to_merge(self):
        a = RelationDigest.from_rows("R", [("a", 1)])
        b = RelationDigest.from_rows("S", [("a", 1)])
        with pytest.raises(ValueError):
            a.merge(b)
        # power-of-two width ratios fold-merge legally now; a width
        # that does not divide evenly still refuses
        odd = RelationDigest.from_rows("R", [("a", 1)], nbits=96)
        with pytest.raises(ValueError):
            a.merge(odd)
        more_hashes = RelationDigest.from_rows("R", [("a", 1)], k=3)
        with pytest.raises(ValueError):
            a.merge(more_hashes)

    def test_cross_width_merge_keeps_the_guarantee(self):
        wide = RelationDigest.from_rows(
            "R", [(f"w{i}", i) for i in range(40)], nbits=512)
        narrow = RelationDigest.from_rows("R", [("a", 1), ("b", 2)],
                                          nbits=128)
        for merged in (wide.merge(narrow), narrow.merge(wide)):
            assert merged.nbits == 128
            assert merged.row_count == 42
            for key in ["a", "b"] + [f"w{i}" for i in range(40)]:
                assert merged.may_contain(key), key

    def test_merge_neighbour_digests_unions_relations(self):
        left = NeighbourDigests.from_tables(
            "P", "v1", {"R": [("a", 1)], "S": [("s", 1)]})
        right = NeighbourDigests.from_tables("P", "v2", {"R": [("b", 2)]})
        merged = merge_neighbour_digests("P", "shards(v1,v2)",
                                         [left, right])
        assert merged.version == "shards(v1,v2)"
        combined = merged.digest_for("R")
        assert combined.row_count == 2
        assert combined.may_contain("a") and combined.may_contain("b")
        # a relation present in only one slice is kept as-is
        assert merged.digest_for("S").row_count == 1


class TestAdaptiveSizing:
    def test_width_is_a_clamped_power_of_two(self):
        assert adaptive_nbits(0) == DIGEST_BITS
        assert adaptive_nbits(16) == DIGEST_BITS
        assert adaptive_nbits(17) == 256
        assert adaptive_nbits(64) == 512
        assert adaptive_nbits(10_000) == DIGEST_MAX_BITS
        for count in range(0, 300, 7):
            width = adaptive_nbits(count)
            assert DIGEST_BITS <= width <= DIGEST_MAX_BITS
            assert width & (width - 1) == 0

    def test_from_rows_defaults_to_adaptive_width(self):
        small = RelationDigest.from_rows("R", [("a", 1)])
        large = RelationDigest.from_rows(
            "R", [(f"k{i}", i) for i in range(100)])
        assert small.nbits == adaptive_nbits(1) == DIGEST_BITS
        assert large.nbits == adaptive_nbits(100) == 1024

    @pytest.mark.parametrize("n_rows", (8, 40, 120))
    def test_false_positive_rate_stays_pinned(self, n_rows):
        """~8 bits/row with two hashes keeps the false-positive rate
        around (1 - e^(-2/8))^2 ≈ 4.9% regardless of relation size —
        the property adaptive sizing exists to hold.  The bound leaves
        seeded-variance headroom but would catch a sizing regression
        (a fixed 128-bit digest at 120 rows false-positives ~88%)."""
        rng = random.Random(f"fp:{n_rows}")
        rows = [(f"in{i}", i) for i in range(n_rows)]
        digest = RelationDigest.from_rows("R", rows)
        probes = [f"out{rng.randrange(10**9)}" for _ in range(2000)]
        false_positives = sum(digest.may_contain(p) for p in probes)
        assert false_positives / len(probes) < 0.11


class TestRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_relation_digest_dict_round_trip(self, seed):
        rng = random.Random(seed)
        digest = RelationDigest.from_rows("Rel", rand_rows(rng))
        assert RelationDigest.from_dict(digest.to_dict()) == digest

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_neighbour_digests_dict_round_trip(self, seed):
        rng = random.Random(seed)
        tables = {f"R{i}": rand_rows(rng) for i in range(3)}
        digests = NeighbourDigests.from_tables("Pé", f"v{seed}", tables)
        assert NeighbourDigests.from_dict(digests.to_dict()) == digests
        for relation in tables:
            assert digests.digest_for(relation) is not None
        assert digests.digest_for("missing") is None

    def test_dict_form_is_json_safe_hex(self):
        digest = RelationDigest.from_rows("R", [("🛰", 1)])
        encoded = digest.to_dict()
        assert set(encoded["bits"]) <= set("0123456789abcdef")
        assert len(encoded["bits"]) == (DIGEST_BITS + 3) // 4


class TestDigestBytes:
    def test_none_costs_nothing(self):
        assert digest_bytes(None) == 0

    def test_bundle_cost_scales_with_relations(self):
        small = NeighbourDigests.from_tables("P", "v", {"R": []})
        large = NeighbourDigests.from_tables(
            "P", "v", {f"R{i}": [] for i in range(5)})
        assert 0 < digest_bytes(small) < digest_bytes(large)
