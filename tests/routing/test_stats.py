"""Unit suite for the decayed per-neighbour traffic statistics.

The ordering signal must be deterministic, must sink providers that
stopped producing (decay), and must never be more than an *ordering* —
whether a neighbour is contacted is decided elsewhere.
"""

import pytest

from repro.core.messaging import ExchangeEvent
from repro.routing.stats import TrafficStats


def event(provider: str, tuples: int, *, nbytes: int = 0,
          requester: str = "P0") -> ExchangeEvent:
    return ExchangeEvent(requester=requester, provider=provider,
                         relation="R", tuples_transferred=tuples,
                         purpose="test", bytes_estimate=nbytes)


class TestAggregates:
    def test_hit_rate_counts_productive_requests(self):
        stats = TrafficStats()
        stats.ingest([event("A", 3), event("A", 0), event("B", 0)])
        assert stats.hit_rate("A") == pytest.approx(0.5)
        assert stats.hit_rate("B") == 0.0
        assert stats.hit_rate("unknown") == 0.0

    def test_bytes_per_useful_tuple(self):
        stats = TrafficStats()
        stats.ingest([event("A", 4, nbytes=100),
                      event("A", 0, nbytes=20)])
        assert stats.bytes_per_useful_tuple("A") == pytest.approx(30.0)
        stats.ingest([event("B", 0, nbytes=50)])
        assert stats.bytes_per_useful_tuple("B") == float("inf")
        assert stats.bytes_per_useful_tuple("unknown") == float("inf")

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            TrafficStats(decay=0.0)
        with pytest.raises(ValueError):
            TrafficStats(decay=1.5)


class TestDecay:
    def test_stopped_producer_sinks_below_fresh_producer(self):
        stats = TrafficStats(decay=0.5)
        stats.ingest([event("old", 10, nbytes=10)])
        assert stats.order(["old", "fresh"]) == ["old", "fresh"]
        # "old" goes quiet while "fresh" produces, batch after batch
        for _ in range(4):
            stats.ingest([event("old", 0), event("fresh", 5, nbytes=5)])
        assert stats.order(["old", "fresh"]) == ["fresh", "old"]

    def test_empty_batch_does_not_age(self):
        stats = TrafficStats(decay=0.5)
        stats.ingest([event("A", 2, nbytes=4)])
        before = stats.productivity("A")
        stats.ingest([])
        assert stats.productivity("A") == before


class TestOrdering:
    def test_order_is_deterministic_with_name_tie_break(self):
        stats = TrafficStats()
        assert stats.order(["Pc", "Pa", "Pb"]) == ["Pa", "Pb", "Pc"]
        stats.ingest([event("Pc", 5, nbytes=5), event("Pa", 0)])
        assert stats.order(["Pc", "Pa", "Pb"]) == ["Pc", "Pa", "Pb"]
        # identical histories on two instances order identically
        twin = TrafficStats()
        twin.ingest([event("Pc", 5, nbytes=5), event("Pa", 0)])
        assert twin.order(["Pa", "Pb", "Pc"]) == \
            stats.order(["Pa", "Pb", "Pc"])

    def test_order_never_drops_or_invents_providers(self):
        stats = TrafficStats()
        stats.ingest([event("A", 1)])
        assert sorted(stats.order(["B", "A", "C"])) == ["A", "B", "C"]

    def test_known_providers(self):
        stats = TrafficStats()
        stats.ingest([event("B", 0), event("A", 1)])
        assert stats.known_providers() == ("A", "B")
