"""Seeded property suite for hop-by-hop subtree aggregates.

The aggregate layer inherits the digest layer's load-bearing guarantee
— **no false negatives** — and adds three obligations of its own: the
union across a whole subtree (mixed adaptive widths, shard slices,
arbitrary nesting) must keep it; the content token must be a pure
function of the aggregate's parts (scope-independent, so any gather
rebuilds the same stamp); and every degradation (missing piece, width
mismatch, version tear, unsafe constraint) must surface as ``None`` /
``safe=False`` / an empty version rather than a bits-level guess.
"""

import random

import pytest

from repro.routing.aggregate import (
    SubtreeDigest,
    aggregate_bytes,
    build_subtree,
    subtree_token,
)
from repro.routing.digest import NeighbourDigests, RelationDigest

SEEDS = range(12)

_ALPHABETS = ("abcdefgh", "éüñß-ÅØ", "数据库系统", "🛰🔌🧵")


def rand_value(rng: random.Random):
    if rng.randrange(3) == 0:
        return rng.randint(-10_000, 10_000)
    alphabet = rng.choice(_ALPHABETS)
    return "".join(rng.choice(alphabet)
                   for _ in range(rng.randint(0, 6)))


def rand_tables(rng: random.Random, prefix: str,
                n_relations: int) -> dict:
    return {f"R{rng.randrange(3)}": [
        (f"{prefix}:{rand_value(rng)}", rand_value(rng))
        for _ in range(rng.randint(0, 40))
    ] for _ in range(n_relations)}


def leaf(name: str, tables, *, version="v1", safe=True):
    """A childless subtree aggregate over ``tables``."""
    return build_subtree(
        name, NeighbourDigests.from_tables(name, version, tables), (),
        safe_root=safe, version=version)


def seeded_tree(rng: random.Random, *, version="v1"):
    """A random 2-level subtree; returns (aggregate, all stored keys)."""
    stored = []
    grandchildren = []
    for g in range(rng.randint(0, 3)):
        tables = rand_tables(rng, f"g{g}", rng.randint(1, 3))
        stored.extend(row[0] for rows in tables.values()
                      for row in rows)
        grandchildren.append(leaf(f"G{g}", tables, version=version))
    mid_tables = rand_tables(rng, "m", 2)
    stored.extend(row[0] for rows in mid_tables.values() for row in rows)
    mid = build_subtree(
        "M", NeighbourDigests.from_tables("M", version, mid_tables),
        grandchildren, safe_root=True, version=version)
    own_tables = rand_tables(rng, "r", 2)
    stored.extend(row[0] for rows in own_tables.values() for row in rows)
    aggregate = build_subtree(
        "R", NeighbourDigests.from_tables("R", version, own_tables),
        [mid], safe_root=True, version=version)
    return aggregate, stored


class TestNoFalseNegatives:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_stored_key_survives_the_union(self, seed):
        """Any first-column value stored anywhere in the subtree must
        be ``may_contain`` in the final aggregate — across relations,
        nesting levels, and the adaptive widths their sizes picked."""
        rng = random.Random(seed)
        aggregate, stored = seeded_tree(rng)
        assert aggregate is not None
        for key in stored:
            assert not aggregate.disjoint_from([key]), key

    @pytest.mark.parametrize("seed", SEEDS)
    def test_disjoint_proof_is_sound(self, seed):
        rng = random.Random(seed)
        aggregate, stored = seeded_tree(rng)
        probes = [rand_value(rng) for _ in range(60)]
        if aggregate.disjoint_from(probes):
            assert not (set(probes) & set(stored))

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_mixed_width_shard_slices_keep_the_guarantee(self, seed):
        """A big slice (wide adaptive digest) and a tiny slice (narrow)
        of the same relation union without losing any stored key — the
        cross-width fold-merge the shard router relies on."""
        rng = random.Random(seed)
        big = [(f"b{i}", i) for i in range(rng.randint(30, 120))]
        small = [(f"s{i}", i) for i in range(rng.randint(1, 4))]
        merged = build_subtree(
            "P",
            NeighbourDigests.from_tables("P", "v", {"R": big}),
            [leaf("C", {"R": small})],
            safe_root=True, version="v1")
        assert merged is not None
        for key, _ in big + small:
            assert not merged.disjoint_from([key]), key

    def test_disjointness_checks_every_relation(self):
        """DECs propagate rows between relation names, so a constant
        hiding under *any* relation defeats the subtree proof."""
        aggregate = leaf("P", {"R0": [], "R9": [("deep", 1)]})
        assert aggregate.disjoint_from(["absent"])
        assert not aggregate.disjoint_from(["deep"])


class TestToken:
    def test_token_is_scope_independent(self):
        """Two builds from equal parts stamp equal tokens — the
        in-gather confirmation a requester prunes on."""
        tables = {"R": [("a", 1), ("b", 2)]}
        one = leaf("P", tables)
        two = leaf("P", {"R": list(reversed(tables["R"]))})
        assert one.token == two.token
        assert one.token.startswith("agg-")

    def test_any_row_change_anywhere_changes_the_token(self):
        base = build_subtree(
            "R", NeighbourDigests.from_tables("R", "v1", {"R0": []}),
            [leaf("C", {"R1": [("a", 1)]})],
            safe_root=True, version="v1")
        changed = build_subtree(
            "R", NeighbourDigests.from_tables("R", "v1", {"R0": []}),
            [leaf("C", {"R1": [("a", 1), ("mut", 9)]})],
            safe_root=True, version="v1")
        assert base.token != changed.token

    def test_safety_flip_changes_the_token(self):
        safe = leaf("P", {"R": [("a", 1)]}, safe=True)
        unsafe = leaf("P", {"R": [("a", 1)]}, safe=False)
        assert safe.token != unsafe.token

    def test_token_function_matches_builder(self):
        aggregate = leaf("P", {"R": [("a", 1)]})
        assert aggregate.token == subtree_token(
            "P", aggregate.peers, aggregate.safe, aggregate.relations)


class TestDegradation:
    def test_missing_own_digests_degrade_everything(self):
        assert build_subtree("P", None, (), safe_root=True,
                             version="v1") is None

    def test_missing_child_degrades_the_whole_subtree(self):
        own = NeighbourDigests.from_tables("P", "v1", {"R": []})
        child = leaf("C", {"R": [("a", 1)]})
        assert build_subtree("P", own, [child, None],
                             safe_root=True, version="v1") is None

    def test_incompatible_digest_parameters_degrade(self):
        own = NeighbourDigests(
            peer="P", version="v1",
            relations=(RelationDigest.from_rows("R", [("a", 1)], k=3),))
        child = leaf("C", {"R": [("b", 2)]})
        assert build_subtree("P", own, [child],
                             safe_root=True, version="v1") is None

    def test_one_unsafe_child_poisons_every_ancestor(self):
        own = NeighbourDigests.from_tables("P", "v1", {"R": []})
        fine = leaf("C1", {"R": [("a", 1)]}, safe=True)
        tainted = leaf("C2", {"R": [("b", 2)]}, safe=False)
        merged = build_subtree("P", own, [fine, tainted],
                               safe_root=True, version="v1")
        assert merged is not None and not merged.safe
        above = build_subtree(
            "Q", NeighbourDigests.from_tables("Q", "v1", {"S": []}),
            [merged], safe_root=True, version="v1")
        assert not above.safe

    def test_version_tear_clears_the_stamp_but_keeps_the_bits(self):
        """A child stamped under another system version still unions
        (the bits over-approximate), but the tear empties ``version`` so
        the zero-message prune can never trust it."""
        own = NeighbourDigests.from_tables("P", "v2", {"R": []})
        stale = leaf("C", {"R": [("a", 1)]}, version="v1")
        merged = build_subtree("P", own, [stale],
                               safe_root=True, version="v2")
        assert merged is not None
        assert merged.version == ""
        assert not merged.disjoint_from(["a"])

    def test_peers_union_and_sorted(self):
        own = NeighbourDigests.from_tables("P", "v1", {"R": []})
        merged = build_subtree(
            "P", own,
            [leaf("Z", {"R": []}), leaf("A", {"R": []})],
            safe_root=True, version="v1")
        assert merged.peers == ("A", "P", "Z")


class TestRoundTripAndBytes:
    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_dict_round_trip(self, seed):
        rng = random.Random(seed)
        aggregate, _ = seeded_tree(rng)
        assert SubtreeDigest.from_dict(aggregate.to_dict()) == aggregate

    def test_none_costs_nothing(self):
        assert aggregate_bytes(None) == 0

    def test_bytes_scale_with_width_and_peers(self):
        small = leaf("P", {"R": [("a", 1)]})
        big = build_subtree(
            "P",
            NeighbourDigests.from_tables(
                "P", "v1", {"R": [(f"k{i}", i) for i in range(100)]}),
            [leaf(f"C{j}", {"R": []}) for j in range(4)],
            safe_root=True, version="v1")
        assert 0 < aggregate_bytes(small) < aggregate_bytes(big)
