"""Routed gathers ≡ flooded gathers ≡ the local session.

The routing index's contract: pruning changes *traffic*, never
*answers* or *fault observability*.  Every case answers the same query
schedule — including sync rounds that mutate a leaf so digests and
cached subsystem payloads go stale mid-run — through a routed session,
a flooded session, and the in-process
:class:`~repro.core.session.PeerQuerySession`, and requires
tuple-identical answers, solution counts, and resolved methods, with
the routed run measurably cheaper and the flooded run never pruning.
"""

import itertools

import pytest

from repro.core import PeerQuerySession
from repro.core.system import PeerSystem
from repro.net import (
    FaultPlan,
    LoopbackTransport,
    NetworkSession,
    ThreadedTransport,
)
from repro.relational.instance import DatabaseInstance
from repro.workloads import (
    example1_system,
    peer_chain_system,
    topology_system,
)

QUERIES = ("q(X, Y) := R0(X, Y)", "q(X) := exists Y R0(X, Y)")
TOPOLOGIES = ("chain", "star", "random")
SEEDS = range(4)


def mutate_leaf(system, round_no):
    """One extra tuple in the alphabetically last peer's first relation
    — invalidates every digest/token on the root-to-leaf path."""
    leaf = sorted(system.peers)[-1]
    relation = sorted(system.peers[leaf].schema.names)[0]
    rows = set(system.instances[leaf].tuples(relation))
    rows.add((f"mut{round_no}", f"val{round_no}"))
    mutated = DatabaseInstance(system.peers[leaf].schema,
                               {relation: frozenset(rows)})
    return PeerSystem(system.peers.values(),
                      {**system.instances, leaf: mutated},
                      system.exchanges, system.trust)


def run_rounds(system, peer, queries, *, routing, rounds=3,
               transport=None, retries=2):
    """Answer ``queries`` over ``rounds`` leaf-mutation sync rounds;
    returns the observations the differential assertions compare."""
    observed = []
    messages = pruned = subtrees = 0
    current = system
    with NetworkSession(current, transport=transport, retries=retries,
                        routing=routing) as session:
        for round_no in range(rounds):
            if round_no:
                current = mutate_leaf(current, round_no)
                session.use_system(current)
            mark = session.exchange_log.mark()
            for query in queries:
                result = session.answer(peer, query)
                assert result.ok, (routing, round_no, query,
                                   result.error)
                observed.append((query, result.answers,
                                 result.solution_count,
                                 result.method_used))
                if round_no:
                    pruned += result.exchange.neighbours_pruned
                    subtrees += result.exchange.subtrees_pruned
            if round_no:
                messages += len(session.exchange_log.events_since(mark))
    return {"observed": observed, "messages": messages,
            "pruned": pruned, "subtrees": subtrees}


def local_rounds(system, peer, queries, *, rounds=3):
    observed = []
    current = system
    for round_no in range(rounds):
        if round_no:
            current = mutate_leaf(current, round_no)
        local = PeerQuerySession(current)
        for query in queries:
            result = local.answer(peer, query)
            observed.append((query, result.answers,
                             result.solution_count, result.method_used))
    return observed


def assert_routed_equivalent(system, peer, queries, *, rounds=3,
                             make_transport=lambda: None, retries=2,
                             require_cheaper=True):
    flooded = run_rounds(system, peer, queries, routing=False,
                         rounds=rounds, transport=make_transport(),
                         retries=retries)
    routed = run_rounds(system, peer, queries, routing=True,
                        rounds=rounds, transport=make_transport(),
                        retries=retries)
    expected = local_rounds(system, peer, queries, rounds=rounds)
    assert routed["observed"] == flooded["observed"] == expected
    assert flooded["pruned"] == 0
    if require_cheaper:
        assert routed["pruned"] > 0
        assert routed["messages"] < flooded["messages"]


class TestSeededTopologies:
    @pytest.mark.parametrize("topology,seed",
                             list(itertools.product(TOPOLOGIES, SEEDS)))
    def test_routed_rounds_match_flooded_and_local(self, topology, seed):
        system = topology_system(5, topology=topology, n_tuples=3,
                                 conflicts=(seed % 2), extra_edges=2,
                                 seed=seed)
        assert_routed_equivalent(system, "P0", QUERIES)

    def test_dense_random_topology(self):
        system = topology_system(7, topology="random", n_tuples=3,
                                 density=0.5, seed=11)
        assert_routed_equivalent(system, "P0", QUERIES)


class TestPaperWorkloads:
    def test_example1_from_every_peer(self):
        system = example1_system()
        for peer, relation in (("P1", "R1"), ("P2", "R2"), ("P3", "R3")):
            assert_routed_equivalent(
                system, peer, (f"q(X, Y) := {relation}(X, Y)",),
                require_cheaper=False)  # 3 peers leave little to prune

    def test_transitive_chain(self):
        assert_routed_equivalent(
            peer_chain_system(4, n_tuples=2), "P0",
            ("q(X, Y) := T0(X, Y)",), require_cheaper=False)


class TestUnderFaults:
    def test_drops_below_the_retry_budget(self):
        system = topology_system(5, topology="star", n_tuples=3,
                                 conflicts=1, seed=2)
        assert_routed_equivalent(
            system, "P0", QUERIES,
            make_transport=lambda: LoopbackTransport(
                FaultPlan(drop_rate=0.15, seed=2)),
            retries=6)

    def test_injected_latency(self):
        system = topology_system(5, topology="random", n_tuples=3,
                                 extra_edges=2, seed=6)
        assert_routed_equivalent(
            system, "P0", QUERIES,
            make_transport=lambda: ThreadedTransport(latency=0.002))

    @pytest.mark.parametrize("routing", (False, True))
    def test_warm_session_still_surfaces_a_downed_peer(self, routing):
        """Fault parity: even a fully warmed routing index must keep
        contacting every pending neighbour, so a peer going down after
        warm-up surfaces the *same* typed error routing off and on."""
        system = topology_system(4, topology="chain", n_tuples=3,
                                 seed=1)
        transport = ThreadedTransport(timeout=1.0)
        with NetworkSession(system, transport=transport, retries=1,
                            routing=routing) as session:
            warm = session.answer("P0", QUERIES[0])
            assert warm.ok, warm.error
            transport.set_down("P2")
            session.use_system(mutate_leaf(system, 1))
            result = session.answer("P0", QUERIES[0])
            assert result.failed and not result.ok
            assert result.error.code == "peer-unreachable"
            assert result.answers == frozenset()


class TestSubtreePruning:
    """Aggregated mode: whole branches pruned, answers untouched.

    The tree topology namespaces every peer's keys, so a constant-
    selecting query is provably disjoint from whole branches and the
    :class:`~repro.routing.aggregate.SubtreeDigest` machinery has
    something to prove.  Every case mutates a leaf between rounds
    (staling every aggregate on the root-to-leaf path) and requires the
    routed answers tuple-identical to the flooded and local ones.
    """

    # constants exist at any seed: tree rows are deterministic
    TREE_QUERIES = ('q(Y) := R0("p1k0", Y)', 'q(Y) := R0("p9k1", Y)',
                    'q(Y) := R0("p5k0", Y)', 'q(Y) := R0("p0k2", Y)')

    @pytest.mark.parametrize("seed", range(3))
    def test_deep_tree_rounds_match_flooded_and_local(self, seed):
        system = topology_system(15, topology="tree", n_tuples=3,
                                 seed=seed)
        flooded = run_rounds(system, "P0", self.TREE_QUERIES,
                             routing=False)
        routed = run_rounds(system, "P0", self.TREE_QUERIES,
                            routing=True)
        expected = local_rounds(system, "P0", self.TREE_QUERIES)
        assert routed["observed"] == flooded["observed"] == expected
        assert flooded["subtrees"] == 0
        assert routed["subtrees"] > 0
        assert routed["messages"] < flooded["messages"]

    def test_multi_root_schedule_prunes_across_serving(self):
        """Serving one root's scoped gather refreshes aggregates all
        along the path, so a *different* root's later query zero-skips
        whole branches — the cross-query payoff of tier B."""
        base = topology_system(15, topology="tree", n_tuples=3, seed=0)
        schedule = (("P0", 'q(Y) := R0("p9k1", Y)'),
                    ("P1", 'q(Y) := R1("p10k2", Y)'),
                    ("P2", 'q(Y) := R2("p13k1", Y)'),
                    ("P1", 'q(Y) := R1("p1k0", Y)'))
        results = {}
        for routing in (False, True):
            system = base
            observed = []
            messages = subtrees = 0
            with NetworkSession(system, routing=routing) as session:
                for peer in ("P0", "P1", "P2"):
                    relation = f"R{peer[1:]}"
                    warm = session.answer(
                        peer, f"q(X, Y) := {relation}(X, Y)")
                    assert warm.ok, warm.error
                for round_no in (1, 2):
                    system = mutate_leaf(system, round_no)
                    session.use_system(system)
                    mark = session.exchange_log.mark()
                    for peer, query in schedule:
                        result = session.answer(peer, query)
                        assert result.ok, result.error
                        observed.append((peer, query, result.answers))
                        subtrees += result.exchange.subtrees_pruned
                    messages += len(
                        session.exchange_log.events_since(mark))
            results[routing] = (observed, messages, subtrees)
        system = base
        expected = []
        for round_no in (1, 2):
            system = mutate_leaf(system, round_no)
            local = PeerQuerySession(system)
            for peer, query in schedule:
                expected.append((peer, query,
                                 local.answer(peer, query).answers))
        assert results[True][0] == results[False][0] == expected
        assert results[False][2] == 0
        assert results[True][2] > 0
        assert results[True][1] < results[False][1]

    def test_mutation_into_a_pruned_branch_is_never_missed(self):
        """The no-false-negatives acid test: a key the query selects on
        lands in the very branch earlier queries pruned.  The stale
        (now under-approximating) aggregate must degrade — version
        mismatch blocks tier B, the changed content token blocks tier A
        — and the new tuple must surface identically in all modes."""
        base = topology_system(7, topology="tree", n_tuples=3, seed=0)
        target, relation = "P2", "R2"
        rows = set(base.instances[target].tuples(relation))
        rows.add(("surprise", "landed"))
        grown = PeerSystem(
            base.peers.values(),
            {**base.instances,
             target: DatabaseInstance(base.peers[target].schema,
                                      {relation: frozenset(rows)})},
            base.exchanges, base.trust)
        # the P2 branch is irrelevant to both probes before the sync,
        # relevant to the second one after it
        probes = ('q(Y) := R0("p1k1", Y)', 'q(Y) := R0("surprise", Y)')
        observed = {}
        for routing in (False, True):
            with NetworkSession(base, routing=routing) as session:
                assert session.answer("P0",
                                      'q(X, Y) := R0(X, Y)').ok
                seen = [session.answer("P0", query).answers
                        for query in probes]
                session.use_system(grown)
                # first query refreshes every aggregate at the new
                # version; the second must still contact P2's branch
                seen += [session.answer("P0", query).answers
                         for query in probes]
                observed[routing] = seen
        assert observed[True] == observed[False]
        assert observed[True][1] == frozenset()
        assert observed[True][3] == frozenset({("landed",)})

    @pytest.mark.parametrize("routing", (False, True))
    def test_downed_peer_mid_subtree_surfaces_after_sync(self, routing):
        """A sync stales every aggregate, so the next scoped query must
        re-contact each branch hop-by-hop — and find the downed deep
        peer exactly like flooding does, even though the query's
        constants make that whole branch irrelevant."""
        system = topology_system(7, topology="tree", n_tuples=3, seed=1)
        transport = ThreadedTransport(timeout=1.0)
        with NetworkSession(system, transport=transport, retries=1,
                            routing=routing) as session:
            warm = session.answer("P0", 'q(X, Y) := R0(X, Y)')
            assert warm.ok, warm.error
            transport.set_down("P5")  # deep inside P2's branch
            session.use_system(mutate_leaf(system, 1))
            result = session.answer("P0", 'q(Y) := R0("p1k0", Y)')
            assert result.failed
            assert result.error.code == "peer-unreachable"
            assert result.answers == frozenset()


class TestRelayDedup:
    def test_markers_round_trip_through_mutation_rounds(self):
        """A deep chain keeps relaying changed payloads whose *deep*
        instances did not change — the {"same": fp} dedup path.  The
        answers must stay identical while the routed rounds move fewer
        subsystem tuples than the flooded ones."""
        system = topology_system(6, topology="chain", n_tuples=4,
                                 seed=9)
        flooded = run_rounds(system, "P0", QUERIES[:1], routing=False,
                             rounds=4)
        routed = run_rounds(system, "P0", QUERIES[:1], routing=True,
                            rounds=4)
        expected = local_rounds(system, "P0", QUERIES[:1], rounds=4)
        assert routed["observed"] == flooded["observed"] == expected
        assert routed["messages"] < flooded["messages"]
