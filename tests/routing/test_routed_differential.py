"""Routed gathers ≡ flooded gathers ≡ the local session.

The routing index's contract: pruning changes *traffic*, never
*answers* or *fault observability*.  Every case answers the same query
schedule — including sync rounds that mutate a leaf so digests and
cached subsystem payloads go stale mid-run — through a routed session,
a flooded session, and the in-process
:class:`~repro.core.session.PeerQuerySession`, and requires
tuple-identical answers, solution counts, and resolved methods, with
the routed run measurably cheaper and the flooded run never pruning.
"""

import itertools

import pytest

from repro.core import PeerQuerySession
from repro.core.system import PeerSystem
from repro.net import (
    FaultPlan,
    LoopbackTransport,
    NetworkSession,
    ThreadedTransport,
)
from repro.relational.instance import DatabaseInstance
from repro.workloads import (
    example1_system,
    peer_chain_system,
    topology_system,
)

QUERIES = ("q(X, Y) := R0(X, Y)", "q(X) := exists Y R0(X, Y)")
TOPOLOGIES = ("chain", "star", "random")
SEEDS = range(4)


def mutate_leaf(system, round_no):
    """One extra tuple in the alphabetically last peer's first relation
    — invalidates every digest/token on the root-to-leaf path."""
    leaf = sorted(system.peers)[-1]
    relation = sorted(system.peers[leaf].schema.names)[0]
    rows = set(system.instances[leaf].tuples(relation))
    rows.add((f"mut{round_no}", f"val{round_no}"))
    mutated = DatabaseInstance(system.peers[leaf].schema,
                               {relation: frozenset(rows)})
    return PeerSystem(system.peers.values(),
                      {**system.instances, leaf: mutated},
                      system.exchanges, system.trust)


def run_rounds(system, peer, queries, *, routing, rounds=3,
               transport=None, retries=2):
    """Answer ``queries`` over ``rounds`` leaf-mutation sync rounds;
    returns the observations the differential assertions compare."""
    observed = []
    messages = pruned = 0
    current = system
    with NetworkSession(current, transport=transport, retries=retries,
                        routing=routing) as session:
        for round_no in range(rounds):
            if round_no:
                current = mutate_leaf(current, round_no)
                session.use_system(current)
            mark = session.exchange_log.mark()
            for query in queries:
                result = session.answer(peer, query)
                assert result.ok, (routing, round_no, query,
                                   result.error)
                observed.append((query, result.answers,
                                 result.solution_count,
                                 result.method_used))
                if round_no:
                    pruned += result.exchange.neighbours_pruned
            if round_no:
                messages += len(session.exchange_log.events_since(mark))
    return {"observed": observed, "messages": messages,
            "pruned": pruned}


def local_rounds(system, peer, queries, *, rounds=3):
    observed = []
    current = system
    for round_no in range(rounds):
        if round_no:
            current = mutate_leaf(current, round_no)
        local = PeerQuerySession(current)
        for query in queries:
            result = local.answer(peer, query)
            observed.append((query, result.answers,
                             result.solution_count, result.method_used))
    return observed


def assert_routed_equivalent(system, peer, queries, *, rounds=3,
                             make_transport=lambda: None, retries=2,
                             require_cheaper=True):
    flooded = run_rounds(system, peer, queries, routing=False,
                         rounds=rounds, transport=make_transport(),
                         retries=retries)
    routed = run_rounds(system, peer, queries, routing=True,
                        rounds=rounds, transport=make_transport(),
                        retries=retries)
    expected = local_rounds(system, peer, queries, rounds=rounds)
    assert routed["observed"] == flooded["observed"] == expected
    assert flooded["pruned"] == 0
    if require_cheaper:
        assert routed["pruned"] > 0
        assert routed["messages"] < flooded["messages"]


class TestSeededTopologies:
    @pytest.mark.parametrize("topology,seed",
                             list(itertools.product(TOPOLOGIES, SEEDS)))
    def test_routed_rounds_match_flooded_and_local(self, topology, seed):
        system = topology_system(5, topology=topology, n_tuples=3,
                                 conflicts=(seed % 2), extra_edges=2,
                                 seed=seed)
        assert_routed_equivalent(system, "P0", QUERIES)

    def test_dense_random_topology(self):
        system = topology_system(7, topology="random", n_tuples=3,
                                 density=0.5, seed=11)
        assert_routed_equivalent(system, "P0", QUERIES)


class TestPaperWorkloads:
    def test_example1_from_every_peer(self):
        system = example1_system()
        for peer, relation in (("P1", "R1"), ("P2", "R2"), ("P3", "R3")):
            assert_routed_equivalent(
                system, peer, (f"q(X, Y) := {relation}(X, Y)",),
                require_cheaper=False)  # 3 peers leave little to prune

    def test_transitive_chain(self):
        assert_routed_equivalent(
            peer_chain_system(4, n_tuples=2), "P0",
            ("q(X, Y) := T0(X, Y)",), require_cheaper=False)


class TestUnderFaults:
    def test_drops_below_the_retry_budget(self):
        system = topology_system(5, topology="star", n_tuples=3,
                                 conflicts=1, seed=2)
        assert_routed_equivalent(
            system, "P0", QUERIES,
            make_transport=lambda: LoopbackTransport(
                FaultPlan(drop_rate=0.15, seed=2)),
            retries=6)

    def test_injected_latency(self):
        system = topology_system(5, topology="random", n_tuples=3,
                                 extra_edges=2, seed=6)
        assert_routed_equivalent(
            system, "P0", QUERIES,
            make_transport=lambda: ThreadedTransport(latency=0.002))

    @pytest.mark.parametrize("routing", (False, True))
    def test_warm_session_still_surfaces_a_downed_peer(self, routing):
        """Fault parity: even a fully warmed routing index must keep
        contacting every pending neighbour, so a peer going down after
        warm-up surfaces the *same* typed error routing off and on."""
        system = topology_system(4, topology="chain", n_tuples=3,
                                 seed=1)
        transport = ThreadedTransport(timeout=1.0)
        with NetworkSession(system, transport=transport, retries=1,
                            routing=routing) as session:
            warm = session.answer("P0", QUERIES[0])
            assert warm.ok, warm.error
            transport.set_down("P2")
            session.use_system(mutate_leaf(system, 1))
            result = session.answer("P0", QUERIES[0])
            assert result.failed and not result.ok
            assert result.error.code == "peer-unreachable"
            assert result.answers == frozenset()


class TestRelayDedup:
    def test_markers_round_trip_through_mutation_rounds(self):
        """A deep chain keeps relaying changed payloads whose *deep*
        instances did not change — the {"same": fp} dedup path.  The
        answers must stay identical while the routed rounds move fewer
        subsystem tuples than the flooded ones."""
        system = topology_system(6, topology="chain", n_tuples=4,
                                 seed=9)
        flooded = run_rounds(system, "P0", QUERIES[:1], routing=False,
                             rounds=4)
        routed = run_rounds(system, "P0", QUERIES[:1], routing=True,
                            rounds=4)
        expected = local_rounds(system, "P0", QUERIES[:1], rounds=4)
        assert routed["observed"] == flooded["observed"] == expected
        assert routed["messages"] < flooded["messages"]
