"""Routing through the shard layer: identical answers, sound digests.

A sharded peer's slice data must never be mistaken for the logical
peer: the sharded node advertises no subsystem version or digests (a
routed requester then always falls back to flooded-equivalent fetches),
while slice digests that ride fetch replies are composed all-or-nothing
by the :class:`~repro.shard.router.ShardRouter` under the
``shards(...)`` version token.
"""

import pytest

from repro.core import PeerQuerySession
from repro.net.protocol import Answer
from repro.routing.digest import NeighbourDigests
from repro.shard import ShardedNetwork
from repro.shard.node import build_shard_node
from repro.shard.router import ShardRouter
from repro.workloads import sharded_topology_system

QUERY = "q(X, Y) := R0(X, Y)"


class TestShardedDifferential:
    @pytest.mark.parametrize("seed", range(3))
    def test_routed_sharded_answers_match_local(self, seed):
        system, shard_map = sharded_topology_system(
            4, topology="random", n_tuples=4, seed=seed)
        expected = PeerQuerySession(system).answer("P0", QUERY)
        with ShardedNetwork(system, shards=2, replicas=2,
                            shard_map=shard_map, routing=True) as net:
            for _repeat in range(2):  # warm round uses learned state
                actual = net.answer("P0", QUERY)
                assert actual.ok, actual.error
                assert actual.answers == expected.answers
                assert actual.solution_count == expected.solution_count
                assert actual.method_used == expected.method_used

    def test_sharded_node_advertises_no_subsystem_state(self):
        system, shard_map = sharded_topology_system(
            3, topology="chain", n_tuples=3, seed=1)
        node = build_shard_node(system, "P0", shard_map=shard_map,
                                shard_index=0, routing=True)
        assert node.routing is not None  # the index itself is active
        assert node._subsystem_version() == ""
        assert node._subsystem_digests() is None


class TestComposedDigests:
    @staticmethod
    def reply(version, tables):
        digests = (None if tables is None else
                   NeighbourDigests.from_tables("P", version, tables))
        return Answer(sender="P#0", target="req", in_reply_to=1,
                      payload=(), version=version, digests=digests)

    def test_slices_union_under_the_shards_token(self):
        replies = [self.reply("v0", {"R": [("a", 1)]}),
                   self.reply("v1", {"R": [("b", 2)]})]
        merged = ShardRouter._compose_digests("P", ["P#0", "P#1"],
                                              replies)
        assert merged is not None
        assert merged.version.startswith("shards(")
        digest = merged.digest_for("R")
        assert digest.row_count == 2
        assert digest.may_contain("a") and digest.may_contain("b")

    def test_one_missing_slice_digest_drops_the_whole_bundle(self):
        replies = [self.reply("v0", {"R": [("a", 1)]}),
                   self.reply("v1", None)]
        assert ShardRouter._compose_digests("P", ["P#0", "P#1"],
                                            replies) is None

    def test_version_race_drops_the_whole_bundle(self):
        stale = Answer(sender="P#1", target="req", in_reply_to=2,
                       payload=(), version="v2",
                       digests=NeighbourDigests.from_tables(
                           "P", "v1", {"R": []}))
        replies = [self.reply("v0", {"R": [("a", 1)]}), stale]
        assert ShardRouter._compose_digests("P", ["P#0", "P#1"],
                                            replies) is None
