"""Smoke tests: every bundled example and benchmark report must run and
print its key findings (keeps `examples/` and `benchmarks/` from
rotting)."""

import importlib.util
import os

import pytest

BASE = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run_main(directory, name):
    path = os.path.join(BASE, directory, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"{directory}_{name}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


EXAMPLE_EXPECTATIONS = {
    "quickstart": ["Solutions for P1", "method=rewrite",
                   "method=auto", "('c', 'd')"],
    "referential_exchange": ["stable models: 4",
                             "GAV solutions == LAV solutions == "
                             "Definition 4: True",
                             "answers agree with asp: True"],
    "transitive_network": ["global solutions for P",
                           "transitive PCAs at P0"],
    "trading_network": ["certified catalog",
                        "('rug', 99)"],
    "json_network": ["Possible (brave) answers",
                     "python -m repro query"],
}


@pytest.mark.parametrize("name", sorted(EXAMPLE_EXPECTATIONS))
def test_example_runs(name, capsys):
    _run_main("examples", name)
    out = capsys.readouterr().out
    for needle in EXAMPLE_EXPECTATIONS[name]:
        assert needle in out, (name, needle)


BENCH_EXPECTATIONS = {
    "bench_example1": ["2 solutions"],
    "bench_example2": ["expected (paper): (a,b), (c,d), (a,e)"],
    "bench_section31": ["stable models: 4"],
    "bench_hcf_shift": ["4 models"],
    "bench_lav": ["stable models: 4"],
    "bench_transitive": ["3 solution(s)"],
    "bench_scaling_solutions": ["expected: #solutions = 2^n"],
    "bench_hcf_ablation": ["speedup"],
    "bench_transitive_scaling": ["T0_global"],
    "bench_engine_ablation": ["identical single model"],
    "bench_session_cache": ["SC6", "speedup"],
}


@pytest.mark.parametrize("name", sorted(BENCH_EXPECTATIONS))
def test_benchmark_report_runs(name, capsys):
    _run_main("benchmarks", name)
    out = capsys.readouterr().out
    for needle in BENCH_EXPECTATIONS[name]:
        assert needle in out, (name, needle)


def test_rewriting_vs_asp_report_runs(capsys):
    # separated: the heaviest report (~1 s)
    _run_main("benchmarks", "bench_rewriting_vs_asp")
    out = capsys.readouterr().out
    assert "True" in out and "ratio" in out
