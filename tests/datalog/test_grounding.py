"""Unit tests for the relevant grounder."""

import pytest

from repro.datalog import (
    GroundingError,
    SafetyError,
    ground_program,
    parse_program,
)
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Atom, Literal


def _rendered_rules(ground):
    return ground.pretty().splitlines()


class TestBasicGrounding:
    def test_facts_only(self):
        ground = ground_program(parse_program("p(a). p(b)."))
        assert ground.atom_count == 2
        assert len(ground.rules) == 2

    def test_single_rule_instantiation(self):
        ground = ground_program(parse_program("q(X) :- p(X). p(a). p(b)."))
        lines = _rendered_rules(ground)
        assert "q(a) :- p(a)." in lines
        assert "q(b) :- p(b)." in lines

    def test_join(self):
        ground = ground_program(parse_program("""
            r(X, Z) :- e(X, Y), e(Y, Z).
            e(a, b). e(b, c).
        """))
        lines = _rendered_rules(ground)
        assert "r(a, c) :- e(a, b), e(b, c)." in lines
        # no spurious instantiations
        assert not any(line.startswith("r(a, b)") for line in lines)

    def test_transitive_closure_fixpoint(self):
        ground = ground_program(parse_program("""
            t(X, Y) :- e(X, Y).
            t(X, Z) :- e(X, Y), t(Y, Z).
            e(1, 2). e(2, 3). e(3, 4).
        """))
        atoms = {str(lit) for lit in ground.table.literals()}
        assert "t(1, 4)" in atoms

    def test_irrelevant_rule_not_instantiated(self):
        ground = ground_program(parse_program("""
            q(X) :- p(X).
            r(X) :- s(X).
            p(a).
        """))
        atoms = {str(lit) for lit in ground.table.literals()}
        assert "q(a)" in atoms
        assert not any(a.startswith("r(") for a in atoms)

    def test_comparison_filters_instances(self):
        ground = ground_program(parse_program("""
            q(X, Y) :- p(X), p(Y), X != Y.
            p(a). p(b).
        """))
        lines = _rendered_rules(ground)
        assert any(line.startswith("q(a, b)") for line in lines)
        assert not any(line.startswith("q(a, a)") for line in lines)

    def test_equality_seed_binding(self):
        ground = ground_program(parse_program("q(X) :- X = a."))
        assert "q(a)." in _rendered_rules(ground)


class TestNafSimplification:
    def test_underivable_naf_removed(self):
        # r is never derivable, so `not r(X)` is true and vanishes.
        ground = ground_program(parse_program("""
            q(X) :- p(X), not r(X).
            p(a).
        """))
        assert "q(a) :- p(a)." in _rendered_rules(ground)

    def test_derivable_naf_kept(self):
        ground = ground_program(parse_program("""
            q(X) :- p(X), not r(X).
            r(a).
            p(a).
        """))
        assert "q(a) :- p(a), not r(a)." in _rendered_rules(ground)

    def test_naf_head_interplay(self):
        # a rule body requiring both x and `not x` never fires
        ground = ground_program(parse_program("""
            q(X) :- p(X), not p(X).
            p(a).
        """))
        assert not any(line.startswith("q")
                       for line in _rendered_rules(ground))

    def test_tautology_removed(self):
        ground = ground_program(parse_program("""
            p(X) :- p(X), q(X).
            q(a). p(a).
        """))
        assert "p(a) :- p(a), q(a)." not in _rendered_rules(ground)


class TestDisjunctiveAndConstraints:
    def test_disjunctive_heads_all_derivable(self):
        ground = ground_program(parse_program("""
            a(X) v b(X) :- c(X).
            d(X) :- b(X).
            c(1).
        """))
        atoms = {str(lit) for lit in ground.table.literals()}
        assert {"a(1)", "b(1)", "c(1)", "d(1)"} <= atoms

    def test_constraints_grounded(self):
        ground = ground_program(parse_program("""
            :- p(X), q(X).
            p(a). q(a). q(b).
        """))
        assert ":- p(a), q(a)." in _rendered_rules(ground)
        assert not any(":- p(b)" in line for line in _rendered_rules(ground))

    def test_classical_negation_complement_pairs(self):
        ground = ground_program(parse_program("""
            -p(X) :- q(X).
            p(a). q(a).
        """))
        pairs = ground.table.complement_pairs()
        assert len(pairs) == 1
        pos, neg = pairs[0]
        assert str(ground.table.literal_for(pos)) == "p(a)"
        assert str(ground.table.literal_for(neg)) == "-p(a)"


class TestGroundingErrors:
    def test_unsafe_rule_rejected(self):
        with pytest.raises(SafetyError):
            ground_program(parse_program("p(X) :- q(Y)."))

    def test_choice_must_be_unfolded(self):
        program = parse_program(
            "p(X, W) :- q(X, W), choice((X), (W)). q(a, b).")
        with pytest.raises(GroundingError):
            ground_program(program)

    def test_atom_budget_enforced(self):
        program = parse_program("""
            p(X, Y) :- d(X), d(Y).
            d(1). d(2). d(3). d(4). d(5). d(6). d(7). d(8).
        """)
        with pytest.raises(GroundingError):
            ground_program(program, max_atoms=10)


class TestAtomTable:
    def test_interning_is_stable(self):
        from repro.datalog.grounding import AtomTable
        table = AtomTable()
        lit = Literal(Atom("p", ["a"]))
        first = table.add(lit)
        second = table.add(lit)
        assert first == second
        assert table.literal_for(first) == lit
        assert table.id_for(lit) == first

    def test_rejects_naf(self):
        from repro.datalog.grounding import AtomTable
        table = AtomTable()
        with pytest.raises(ValueError):
            table.add(Literal(Atom("p", ["a"]), naf=True))


class TestSemiNaiveEquivalence:
    def test_matches_naive_reachability(self):
        # Compare grounder-derived atoms against a hand-rolled closure.
        edges = [(1, 2), (2, 3), (3, 4), (4, 2), (5, 6)]
        text = "t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).\n"
        text += "\n".join(f"e({a}, {b})." for a, b in edges)
        ground = ground_program(parse_program(text))
        derived = {lit.atom.value_tuple()
                   for lit in ground.table.literals()
                   if lit.predicate == "t"}
        # naive closure
        closure = set(edges)
        changed = True
        while changed:
            changed = False
            for (a, b) in list(closure):
                for (c, d) in edges:
                    if b == c and (a, d) not in closure:
                        closure.add((a, d))
                        changed = True
        assert derived == closure
