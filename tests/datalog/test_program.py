"""Unit tests for rules and programs (structure, safety, composition)."""

import pytest

from repro.datalog import (
    Atom,
    Literal,
    Program,
    ProgramError,
    Rule,
    SafetyError,
    Variable,
    denial,
    fact,
    parse_program,
    parse_rule,
)


class TestRuleStructure:
    def test_fact_detection(self):
        assert parse_rule("p(a).").is_fact()
        assert not parse_rule("p(X) :- q(X).").is_fact()
        assert not parse_rule(":- q(a).").is_fact()

    def test_constraint_detection(self):
        assert parse_rule(":- q(a).").is_constraint()
        assert not parse_rule("p(a).").is_constraint()

    def test_disjunctive_detection(self):
        assert parse_rule("a v b :- c.").is_disjunctive()
        assert not parse_rule("a :- c.").is_disjunctive()

    def test_empty_rule_rejected(self):
        with pytest.raises(ProgramError):
            Rule(head=(), body=())

    def test_naf_in_head_rejected(self):
        with pytest.raises(ProgramError):
            Rule(head=[Literal(Atom("p"), naf=True)])

    def test_two_choice_goals_rejected(self):
        from repro.datalog.terms import ChoiceGoal
        goal1 = ChoiceGoal([Variable("X")], [Variable("W")])
        goal2 = ChoiceGoal([Variable("X")], [Variable("V")])
        with pytest.raises(ProgramError):
            Rule(head=[Atom("p", [Variable("X")])],
                 body=[Atom("q", [Variable("X"), Variable("W"),
                                  Variable("V")]), goal1, goal2])

    def test_body_partition(self):
        rule = parse_rule("p(X) :- q(X), not r(X), X != a.")
        assert len(rule.positive_body()) == 1
        assert len(rule.naf_body()) == 1
        assert len(rule.comparisons()) == 1

    def test_predicates(self):
        rule = parse_rule("p(X) :- q(X), not r(X).")
        assert rule.head_predicates() == {"p"}
        assert rule.body_predicates() == {"q", "r"}


class TestSafety:
    def test_safe_rule_passes(self):
        parse_rule("p(X) :- q(X).").check_safety()

    def test_head_variable_not_bound(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X, Y) :- q(X).").check_safety()

    def test_naf_variable_not_bound(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X) :- q(X), not r(Y).").check_safety()

    def test_comparison_variable_not_bound(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X) :- q(X), Y != a.").check_safety()

    def test_equality_to_constant_binds(self):
        parse_rule("p(X) :- X = a.").check_safety()

    def test_equality_chain_binds(self):
        parse_rule("p(X, Y) :- X = a, Y = X.").check_safety()

    def test_inequality_does_not_bind(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X) :- X != a.").check_safety()

    def test_naf_does_not_bind(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X) :- not q(X).").check_safety()


class TestHelpers:
    def test_fact_builder(self):
        rule = fact("p", "a", 3)
        assert rule.is_fact()
        assert rule.head[0].atom == Atom("p", ["a", 3])

    def test_fact_builder_rejects_variables(self):
        with pytest.raises(ProgramError):
            fact("p", Variable("X"))

    def test_denial_builder(self):
        rule = denial([Atom("p", ["a"]), Atom("q", ["a"])])
        assert rule.is_constraint()


class TestProgram:
    def test_partition(self):
        program = parse_program("""
            p(a).
            q(X) :- p(X).
            :- q(b).
        """)
        assert len(program.facts) == 1
        assert len(program.proper_rules) == 1
        assert len(program.constraints) == 1

    def test_fact_atoms(self):
        program = parse_program("p(a). -q(b). r(X) :- p(X).")
        assert program.fact_atoms() == {Atom("p", ["a"])}
        assert len(program.fact_literals()) == 2

    def test_edb_predicates(self):
        program = parse_program("q(X) :- p(X). p(a). r(b).")
        assert program.edb_predicates() == {"p", "r"}

    def test_constants(self):
        from repro.datalog import Constant
        program = parse_program("p(a, 1). q(X) :- p(X, Y), X != b.")
        assert program.constants() == {Constant("a"), Constant(1),
                                       Constant("b")}

    def test_with_facts(self):
        program = parse_program("q(X) :- p(X).")
        extended = program.with_facts([Atom("p", ["a"])])
        assert len(extended) == 2
        assert len(program) == 1  # original untouched

    def test_with_facts_rejects_non_ground(self):
        program = parse_program("q(X) :- p(X).")
        with pytest.raises(ProgramError):
            program.with_facts([Atom("p", [Variable("X")])])

    def test_union(self):
        left = parse_program("p(a).")
        right = parse_program("q(b).")
        assert len(left.union(right)) == 2

    def test_equality_order_insensitive(self):
        one = parse_program("p(a). q(b).")
        two = parse_program("q(b). p(a).")
        assert one == two

    def test_pretty_sorted_is_stable(self):
        program = parse_program("b. a. c :- a, b.")
        assert program.pretty(sort=True).splitlines() == [
            "a.", "b.", "c :- a, b."]

    def test_structure_flags(self):
        program = parse_program("a v b. -c :- a. d :- not a.")
        assert program.has_disjunction()
        assert program.has_classical_negation()
        assert not program.has_choice()
