"""Unit tests for least models, reducts, minimality, stratified evaluation."""

import pytest

from repro.datalog import ground_program, parse_program
from repro.datalog.fixpoint import (
    gelfond_lifschitz_reduct,
    is_minimal_model,
    is_model,
    least_model,
    satisfies_rule,
    stratified_model,
)
from repro.datalog.graphs import objective_key, stratification
from repro.datalog.grounding import GroundRule


def _ground(text):
    return ground_program(parse_program(text))


def _ids(ground, *names):
    by_name = {str(lit): i for i, lit in
               enumerate(ground.table.literals())}
    return [by_name[n] for n in names]


class TestLeastModel:
    def test_chain(self):
        ground = _ground("a. b :- a. c :- b.")
        model = least_model(ground.rules)
        assert len(model) == 3

    def test_unsupported_not_included(self):
        ground = _ground("a :- b. c.")
        model = least_model(ground.rules)
        names = {str(ground.table.literal_for(i)) for i in model}
        assert names == {"c"}

    def test_cycle_not_self_supported(self):
        ground = _ground("a :- b. b :- a. c.")
        model = least_model(ground.rules)
        names = {str(ground.table.literal_for(i)) for i in model}
        assert names == {"c"}

    def test_rejects_naf(self):
        ground = _ground("a :- not b. b.")
        with pytest.raises(ValueError):
            least_model(ground.rules)

    def test_rejects_disjunction(self):
        ground = _ground("a v b.")
        with pytest.raises(ValueError):
            least_model(ground.rules)

    def test_constraints_skipped(self):
        ground = _ground("a. :- a.")
        model = least_model(ground.rules)
        assert len(model) == 1  # constraint checked by callers, not here


class TestReduct:
    def test_rule_with_true_naf_dropped(self):
        ground = _ground("a :- not b. b :- c. c.")
        (b_id,) = _ids(ground, "b")
        reduct = gelfond_lifschitz_reduct(ground.rules, {b_id})
        # the rule `a :- not b` must be gone
        heads = {tuple(r.head) for r in reduct}
        a_id = _ids(ground, "a")[0]
        assert (a_id,) not in heads

    def test_naf_stripped_from_survivors(self):
        ground = _ground("a :- not b. b.")
        reduct = gelfond_lifschitz_reduct(ground.rules, set())
        assert all(not rule.naf for rule in reduct)

    def test_positive_rules_unchanged(self):
        ground = _ground("a :- b. b.")
        reduct = gelfond_lifschitz_reduct(ground.rules, set())
        assert reduct == list(ground.rules)


class TestModelChecks:
    def test_satisfies_rule(self):
        rule = GroundRule((0,), (1,), (2,))
        assert satisfies_rule(rule, {0, 1})       # body true, head true
        assert satisfies_rule(rule, {1, 2})       # body blocked by naf
        assert not satisfies_rule(rule, {1})      # body true, head false
        assert satisfies_rule(rule, set())        # body false

    def test_is_model(self):
        ground = _ground("a :- b. b.")
        ids = _ids(ground, "a", "b")
        assert is_model(ground.rules, set(ids))
        assert not is_model(ground.rules, {ids[1]})


class TestMinimalModel:
    def test_least_model_is_minimal(self):
        ground = _ground("a. b :- a.")
        model = least_model(ground.rules)
        assert is_minimal_model(ground.rules, model)

    def test_superset_not_minimal(self):
        ground = _ground("a v b. c :- a.")
        a, b, c = _ids(ground, "a", "b", "c")
        assert is_minimal_model(ground.rules, {a, c})
        assert is_minimal_model(ground.rules, {b})
        assert not is_minimal_model(ground.rules, {a, b, c})

    def test_non_model_rejected(self):
        ground = _ground("a v b.")
        assert not is_minimal_model(ground.rules, set())

    def test_empty_model(self):
        assert is_minimal_model([], set())

    def test_disjunctive_loop_minimality(self):
        # a v b with a :- b and b :- a: {a, b} is the only model, and it IS
        # minimal.
        ground = _ground("a v b. a :- b. b :- a.")
        a, b = _ids(ground, "a", "b")
        assert is_minimal_model(ground.rules, {a, b})

    def test_rejects_naf(self):
        ground = _ground("a :- not b. b.")
        with pytest.raises(ValueError):
            is_minimal_model(ground.rules, set())


class TestStratifiedModel:
    def _atom_strata(self, program, ground):
        strata = stratification(program)
        assert strata is not None
        return [strata.get(objective_key(ground.table.literal_for(i)), 0)
                for i in range(ground.atom_count)]

    def test_two_strata(self):
        program = parse_program("""
            q(X) :- p(X), not r(X).
            r(a).
            p(a). p(b).
        """)
        ground = ground_program(program)
        model = stratified_model(ground, self._atom_strata(program, ground))
        names = {str(ground.table.literal_for(i)) for i in model}
        assert "q(b)" in names and "q(a)" not in names

    def test_three_strata(self):
        program = parse_program("""
            s(X) :- q(X), not t(X).
            t(X) :- p(X), not r(X).
            r(a).
            q(a). q(b). p(a). p(b).
        """)
        ground = ground_program(program)
        model = stratified_model(ground, self._atom_strata(program, ground))
        names = {str(ground.table.literal_for(i)) for i in model}
        assert "t(b)" in names and "s(a)" in names and "s(b)" not in names

    def test_constraint_violation_returns_none(self):
        program = parse_program("p(a). :- p(a).")
        ground = ground_program(program)
        model = stratified_model(ground, self._atom_strata(program, ground))
        assert model is None

    def test_rejects_disjunctive(self):
        program = parse_program("a v b.")
        ground = ground_program(program)
        with pytest.raises(ValueError):
            stratified_model(ground, [0] * ground.atom_count)
