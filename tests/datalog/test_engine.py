"""Unit tests for the AnswerSetEngine facade and query answering."""

from repro.datalog import (
    AnswerSetEngine,
    answer_sets,
    brave_answers,
    has_answer_set,
    parse_atom,
    parse_program,
    skeptical_answers,
)


class TestAnswerSets:
    def test_stratified_fast_path_used(self):
        program = parse_program("""
            q(X) :- p(X), not r(X).
            p(a). p(b). r(a).
        """)
        engine = AnswerSetEngine(program)
        models = engine.answer_sets()
        assert len(models) == 1
        names = {str(l) for l in models[0]}
        assert "q(b)" in names and "q(a)" not in names

    def test_fast_path_matches_search(self):
        program_text = """
            q(X) :- p(X), not r(X).
            r(X) :- s(X).
            p(a). p(b). s(b).
        """
        fast = answer_sets(parse_program(program_text),
                           use_stratified_fast_path=True)
        slow = answer_sets(parse_program(program_text),
                           use_stratified_fast_path=False)
        assert [sorted(str(l) for l in m) for m in fast] == \
            [sorted(str(l) for l in m) for m in slow]

    def test_fast_path_classical_negation_consistency(self):
        program = parse_program("p(a). -p(X) :- q(X). q(a).")
        assert answer_sets(program) == []

    def test_choice_program_end_to_end(self):
        program = parse_program("""
            pick(X, W) :- opt(X, W), choice((X), (W)).
            opt(1, a). opt(1, b).
        """)
        assert len(answer_sets(program)) == 2

    def test_models_cached(self):
        engine = AnswerSetEngine(parse_program("a v b."))
        assert engine.answer_sets() is engine.answer_sets()

    def test_deterministic_model_order(self):
        program_text = "a :- not b. b :- not a."
        runs = [answer_sets(parse_program(program_text)) for _ in range(3)]
        rendered = [[sorted(str(l) for l in m) for m in models]
                    for models in runs]
        assert rendered[0] == rendered[1] == rendered[2]


class TestQueries:
    PROGRAM = """
        holds(X) :- base(X), not removed(X).
        removed(X) v kept(X) :- flagged(X).
        base(1). base(2). base(3).
        flagged(2).
    """

    def test_skeptical(self):
        answers = skeptical_answers(parse_program(self.PROGRAM),
                                    parse_atom("holds(X)"))
        assert answers == {(1,), (3,)}

    def test_brave(self):
        answers = brave_answers(parse_program(self.PROGRAM),
                                parse_atom("holds(X)"))
        assert answers == {(1,), (2,), (3,)}

    def test_skeptical_with_constant_filter(self):
        answers = skeptical_answers(parse_program(self.PROGRAM),
                                    parse_atom("holds(1)"))
        assert answers == {()}

    def test_skeptical_no_models_is_empty(self):
        program = parse_program("a. :- a.")
        assert skeptical_answers(program, parse_atom("a")) == set()

    def test_repeated_variable_in_query(self):
        program = parse_program("e(1, 1). e(1, 2).")
        answers = skeptical_answers(program, parse_atom("e(X, X)"))
        assert answers == {(1,)}

    def test_has_answer_set(self):
        assert has_answer_set(parse_program("a v b."))
        assert not has_answer_set(parse_program("a. :- a."))

    def test_propositional_query(self):
        program = parse_program("a :- not b.")
        assert skeptical_answers(program, parse_atom("a")) == {()}
        assert skeptical_answers(program, parse_atom("b")) == set()


class TestShiftIntegration:
    def test_hcf_shifted_same_answers(self):
        text = "p(X) v q(X) :- r(X). r(1). r(2). :- q(1)."
        with_shift = answer_sets(parse_program(text), shift_hcf=True)
        without = answer_sets(parse_program(text), shift_hcf=False)
        assert sorted(sorted(str(l) for l in m) for m in with_shift) == \
            sorted(sorted(str(l) for l in m) for m in without)
