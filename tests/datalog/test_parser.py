"""Unit tests for the DLV-like program parser."""

import pytest

from repro.datalog import (
    Atom,
    ChoiceGoal,
    Comparison,
    Literal,
    ParseError,
    Variable,
    parse_atom,
    parse_body,
    parse_program,
    parse_rule,
)


class TestAtoms:
    def test_propositional(self):
        assert parse_atom("a") == Atom("a")

    def test_with_arguments(self):
        assert parse_atom("p(a, X, 3)") == Atom(
            "p", ["a", Variable("X"), 3])

    def test_quoted_string_argument(self):
        assert parse_atom('p("hello world")') == Atom("p", ["hello world"])

    def test_escaped_quote(self):
        assert parse_atom(r'p("say \"hi\"")') == Atom("p", ['say "hi"'])

    def test_negative_integer(self):
        assert parse_atom("p(-3)") == Atom("p", [-3])

    def test_underscore_variable(self):
        atom = parse_atom("p(_G)")
        assert atom.args[0] == Variable("_G")

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("Pred(a)")

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("p(a) q")


class TestRules:
    def test_fact(self):
        rule = parse_rule("p(a, b).")
        assert rule.is_fact()
        assert rule.head[0].atom == Atom("p", ["a", "b"])

    def test_basic_rule(self):
        rule = parse_rule("p(X) :- q(X), r(X).")
        assert len(rule.body) == 2
        assert rule.head[0].atom == Atom("p", [Variable("X")])

    def test_naf(self):
        rule = parse_rule("p(X) :- q(X), not r(X).")
        naf = rule.naf_body()
        assert len(naf) == 1
        assert naf[0].atom == Atom("r", [Variable("X")])

    def test_classical_negation_head(self):
        rule = parse_rule("-p(X) :- q(X).")
        assert not rule.head[0].positive

    def test_classical_negation_body(self):
        rule = parse_rule("p(X) :- -q(X).")
        assert not rule.body[0].positive

    def test_naf_classical_negation(self):
        rule = parse_rule("p(X) :- q(X), not -p(X).")
        lit = rule.naf_body()[0]
        assert lit.naf and not lit.positive

    def test_disjunction_v_keyword(self):
        rule = parse_rule("a v b :- c.")
        assert len(rule.head) == 2

    def test_disjunction_pipe(self):
        rule = parse_rule("a | b :- c.")
        assert len(rule.head) == 2

    def test_disjunction_with_negated_literal(self):
        rule = parse_rule("-r1p(X, Y) v r2p(X, W) :- r1(X, Y).")
        assert not rule.head[0].positive
        assert rule.head[1].positive

    def test_denial_constraint(self):
        rule = parse_rule(":- p(X), q(X).")
        assert rule.is_constraint()

    def test_comparison(self):
        rule = parse_rule("p(X, Y) :- q(X), r(Y), X != Y.")
        comparisons = rule.comparisons()
        assert comparisons == (Comparison("!=", Variable("X"),
                                          Variable("Y")),)

    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_all_comparison_ops(self, op):
        rule = parse_rule(f"p(X) :- q(X), X {op} 3.")
        assert rule.comparisons()[0].op == op

    def test_choice_goal(self):
        rule = parse_rule("p(X, W) :- q(X, W), choice((X), (W)).")
        goal = rule.choice_goal()
        assert goal == ChoiceGoal([Variable("X")], [Variable("W")])

    def test_choice_goal_multi_domain(self):
        rule = parse_rule(
            "p(X, W) :- q(X, Z, W), choice((X, Z), (W)).")
        goal = rule.choice_goal()
        assert goal.domain == (Variable("X"), Variable("Z"))

    def test_choice_requires_variables(self):
        with pytest.raises(ParseError):
            parse_rule("p(X, W) :- q(X, W), choice((a), (W)).")

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_rule("p(a)")

    def test_reserved_word_not(self):
        with pytest.raises(ParseError):
            parse_rule("not(a).")


class TestPrograms:
    def test_empty(self):
        assert len(parse_program("")) == 0

    def test_comments_ignored(self):
        program = parse_program("""
            % a comment
            p(a).  % trailing comment
            q(b).
        """)
        assert len(program) == 2

    def test_multiline_rule(self):
        program = parse_program("""
            p(X) :-
                q(X),
                not r(X).
        """)
        assert len(program) == 1

    def test_paper_section31_rules_parse(self):
        # Rules (4)-(9) of the paper, in ASCII syntax.
        program = parse_program("""
            r1p(X, Y) :- r1(X, Y), not -r1p(X, Y).
            r2p(X, Y) :- r2(X, Y), not -r2p(X, Y).
            -r1p(X, Y) :- r1(X, Y), s1(Z, Y), not aux1(X, Z), not aux2(Z).
            aux1(X, Z) :- r2(X, W), s2(Z, W).
            aux2(Z) :- s2(Z, W).
            -r1p(X, Y) v r2p(X, W) :- r1(X, Y), s1(Z, Y), not aux1(X, Z),
                                      s2(Z, W), choice((X, Z), (W)).
        """)
        assert len(program) == 6
        assert program.has_choice()
        assert program.has_disjunction()
        assert program.has_classical_negation()

    def test_error_reports_line(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("p(a).\n q(b) &.\n")
        assert "line 2" in str(excinfo.value)

    def test_duplicate_rules_deduplicated(self):
        program = parse_program("p(a). p(a).")
        assert len(program) == 1

    def test_roundtrip_through_str(self):
        text = """
            r1p(X, Y) :- r1(X, Y), not -r1p(X, Y).
            -r1p(X, Y) v r2p(X, W) :- r1(X, Y), s2(Z, W),
                                      choice((X, Z), (W)).
            :- p(X), q(X), X != 3.
            p(a).
        """
        program = parse_program(text)
        reparsed = parse_program(str(program))
        assert reparsed == program


class TestBodyParsing:
    def test_parse_body(self):
        items = parse_body("p(X), not q(X), X != a")
        assert isinstance(items[0], Literal) and not items[0].naf
        assert isinstance(items[1], Literal) and items[1].naf
        assert isinstance(items[2], Comparison)

    def test_parse_body_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_body("p(X), ")
