"""Unit tests for dependency analysis: SCCs, stratification, HCF."""

from repro.datalog import parse_program
from repro.datalog.graphs import (
    dependency_edges,
    head_cycle_components,
    is_head_cycle_free,
    is_stratified,
    objective_key,
    positive_dependency_graph,
    stratification,
    strongly_connected_components,
)
from repro.datalog.parser import parse_rule


class TestObjectiveKey:
    def test_positive(self):
        rule = parse_rule("p(a).")
        assert objective_key(rule.head[0]) == "p"

    def test_negative(self):
        rule = parse_rule("-p(a).")
        assert objective_key(rule.head[0]) == "-p"


class TestSCC:
    def test_self_loop(self):
        components = strongly_connected_components({"a": {"a"}})
        assert components == [{"a"}]

    def test_cycle(self):
        graph = {"a": {"b"}, "b": {"c"}, "c": {"a"}}
        components = strongly_connected_components(graph)
        assert {"a", "b", "c"} in components

    def test_dag_components_singletons(self):
        graph = {"a": {"b"}, "b": {"c"}, "c": set()}
        components = strongly_connected_components(graph)
        assert all(len(c) == 1 for c in components)
        # reverse topological: dependencies first
        order = [next(iter(c)) for c in components]
        assert order.index("c") < order.index("b") < order.index("a")

    def test_two_components(self):
        graph = {"a": {"b"}, "b": {"a"}, "c": {"d"}, "d": {"c"},
                 "e": {"a", "c"}}
        components = strongly_connected_components(graph)
        assert {"a", "b"} in components and {"c", "d"} in components

    def test_large_chain_no_recursion_error(self):
        n = 5000
        graph = {i: {i + 1} for i in range(n)}
        graph[n] = set()
        components = strongly_connected_components(graph)
        assert len(components) == n + 1


class TestStratification:
    def test_positive_recursion_is_stratified(self):
        program = parse_program("p(X) :- e(X, Y), p(Y). p(X) :- s(X).")
        assert is_stratified(program)

    def test_negative_recursion_not_stratified(self):
        program = parse_program("a :- not b. b :- not a.")
        assert not is_stratified(program)

    def test_strata_levels(self):
        program = parse_program("""
            r(X) :- q(X), not p(X).
            p(X) :- e(X).
            s(X) :- r(X).
        """)
        strata = stratification(program)
        assert strata is not None
        assert strata["p"] < strata["r"] <= strata["s"]

    def test_negation_through_chain_not_stratified(self):
        program = parse_program("""
            a :- b.
            b :- not c.
            c :- a.
        """)
        assert not is_stratified(program)

    def test_disjunction_treated_as_unstratified(self):
        # Disjunctive heads entangle their literals; the fast path must not
        # claim them.
        program = parse_program("a v b :- c. c.")
        assert not is_stratified(program)

    def test_classical_negation_separate_strata(self):
        # -p and p are distinct nodes: no false cycles.
        program = parse_program("p(X) :- q(X), not -p(X). -p(X) :- r(X).")
        assert is_stratified(program)

    def test_dependency_edges_orientation(self):
        program = parse_program("p(X) :- q(X), not r(X).")
        graph, negative = dependency_edges(program)
        assert "q" in graph["p"] and "r" in graph["p"]
        assert ("p", "r") in negative and ("p", "q") not in negative


class TestHeadCycleFree:
    def test_simple_disjunction_is_hcf(self):
        assert is_head_cycle_free(parse_program("a v b :- c."))

    def test_mutual_recursion_between_head_literals(self):
        program = parse_program("""
            a v b.
            a :- b.
            b :- a.
        """)
        assert not is_head_cycle_free(program)
        witnesses = head_cycle_components(program)
        assert ("a", "b") in witnesses or ("b", "a") in witnesses

    def test_cycle_not_through_head_pair_is_hcf(self):
        program = parse_program("""
            a v b.
            c :- a.
            a :- c.
        """)
        assert is_head_cycle_free(program)

    def test_naf_cycle_does_not_count(self):
        # HCF looks at the *positive* dependency graph only.
        program = parse_program("""
            a v b.
            a :- not b.
            b :- not a.
        """)
        assert is_head_cycle_free(program)

    def test_choice_goals_ignored(self):
        # Paper Section 4.1: a choice program is HCF iff the program minus
        # its choice goals is HCF.
        program = parse_program("""
            -r1p(X, Y) v r2p(X, W) :- r1(X, Y), s2(Z, W),
                                      choice((X, Z), (W)).
        """)
        assert is_head_cycle_free(program)

    def test_paper_section31_program_is_hcf(self):
        program = parse_program("""
            r1p(X, Y) :- r1(X, Y), not -r1p(X, Y).
            r2p(X, Y) :- r2(X, Y).
            -r1p(X, Y) :- r1(X, Y), s1(Z, Y), not aux1(X, Z), not aux2(Z).
            aux1(X, Z) :- r2(X, W), s2(Z, W).
            aux2(Z) :- s2(Z, W).
            -r1p(X, Y) v r2p(X, W) :- r1(X, Y), s1(Z, Y), not aux1(X, Z),
                                      s2(Z, W), choice((X, Z), (W)).
        """)
        assert is_head_cycle_free(program)

    def test_positive_graph_shape(self):
        program = parse_program("p(X) :- q(X). q(X) :- r(X).")
        graph = positive_dependency_graph(program)
        assert "p" in graph["q"]
        assert "q" in graph["r"]
