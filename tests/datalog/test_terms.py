"""Unit tests for repro.datalog.terms."""

import pytest

from repro.datalog.terms import (
    Atom,
    ChoiceGoal,
    Comparison,
    Constant,
    Literal,
    Variable,
    format_value,
    make_constant,
)


class TestConstant:
    def test_equality_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant(1) == Constant(1)
        assert Constant("a") != Constant("b")

    def test_int_and_str_distinct(self):
        assert Constant(1) != Constant("1")

    def test_hashable(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2

    def test_is_ground(self):
        assert Constant("a").is_ground()

    def test_immutable(self):
        c = Constant("a")
        with pytest.raises(AttributeError):
            c.value = "b"

    def test_rejects_non_scalar(self):
        with pytest.raises(TypeError):
            Constant([1, 2])

    def test_rewrapping_constant(self):
        assert Constant(Constant("a")) == Constant("a")

    def test_sort_key_orders_ints_before_strings(self):
        assert Constant(5).sort_key() < Constant("a").sort_key()

    def test_str_identifier_bare(self):
        assert str(Constant("abc")) == "abc"

    def test_str_nonidentifier_quoted(self):
        assert str(Constant("Hello World")) == '"Hello World"'

    def test_str_int_bare(self):
        assert str(Constant(42)) == "42"


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_not_ground(self):
        assert not Variable("X").is_ground()

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_variable_never_equals_constant(self):
        assert Variable("X") != Constant("X")


class TestAtom:
    def test_coerces_raw_values(self):
        atom = Atom("p", ["a", 1])
        assert atom.args == (Constant("a"), Constant(1))

    def test_arity(self):
        assert Atom("p", ["a", "b"]).arity == 2
        assert Atom("p").arity == 0

    def test_ground_detection(self):
        assert Atom("p", ["a"]).is_ground()
        assert not Atom("p", [Variable("X")]).is_ground()

    def test_variables(self):
        atom = Atom("p", [Variable("X"), "a", Variable("Y"), Variable("X")])
        assert atom.variables() == {Variable("X"), Variable("Y")}

    def test_value_tuple(self):
        assert Atom("p", ["a", 1]).value_tuple() == ("a", 1)

    def test_value_tuple_requires_ground(self):
        with pytest.raises(ValueError):
            Atom("p", [Variable("X")]).value_tuple()

    def test_str(self):
        assert str(Atom("p", ["a", Variable("X")])) == "p(a, X)"
        assert str(Atom("p")) == "p"

    def test_rejects_empty_predicate(self):
        with pytest.raises(ValueError):
            Atom("", ["a"])


class TestLiteral:
    def test_default_positive_non_naf(self):
        lit = Literal(Atom("p", ["a"]))
        assert lit.positive and not lit.naf

    def test_str_forms(self):
        atom = Atom("p", ["a"])
        assert str(Literal(atom)) == "p(a)"
        assert str(Literal(atom, positive=False)) == "-p(a)"
        assert str(Literal(atom, naf=True)) == "not p(a)"
        assert str(Literal(atom, positive=False, naf=True)) == "not -p(a)"

    def test_complement(self):
        lit = Literal(Atom("p", ["a"]))
        assert lit.complement().positive is False
        assert lit.complement().complement() == lit

    def test_objective_strips_naf(self):
        lit = Literal(Atom("p", ["a"]), naf=True)
        assert not lit.objective().naf
        assert lit.objective().atom == lit.atom

    def test_negated_naf_toggles(self):
        lit = Literal(Atom("p", ["a"]))
        assert lit.negated_naf().naf
        assert lit.negated_naf().negated_naf() == lit

    def test_equality_includes_polarity_and_naf(self):
        atom = Atom("p", ["a"])
        assert Literal(atom) != Literal(atom, positive=False)
        assert Literal(atom) != Literal(atom, naf=True)


class TestComparison:
    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Comparison("~", "a", "b")

    @pytest.mark.parametrize("op,left,right,expected", [
        ("=", 1, 1, True),
        ("=", 1, 2, False),
        ("!=", "a", "b", True),
        ("!=", "a", "a", False),
        ("<", 1, 2, True),
        ("<=", 2, 2, True),
        (">", 3, 2, True),
        (">=", 2, 3, False),
    ])
    def test_evaluate(self, op, left, right, expected):
        assert Comparison(op, left, right).evaluate() is expected

    def test_mixed_types_ints_sort_first(self):
        assert Comparison("<", 99, "a").evaluate()
        assert not Comparison("<", "a", 99).evaluate()

    def test_evaluate_requires_ground(self):
        with pytest.raises(ValueError):
            Comparison("=", Variable("X"), 1).evaluate()

    def test_variables(self):
        cmp_ = Comparison("!=", Variable("X"), Variable("Y"))
        assert cmp_.variables() == {Variable("X"), Variable("Y")}


class TestChoiceGoal:
    def test_requires_chosen_variable(self):
        with pytest.raises(ValueError):
            ChoiceGoal([Variable("X")], [])

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            ChoiceGoal([Variable("X")], [Variable("X")])

    def test_rejects_constants(self):
        with pytest.raises(TypeError):
            ChoiceGoal([Constant("a")], [Variable("W")])

    def test_str(self):
        goal = ChoiceGoal([Variable("X"), Variable("Z")], [Variable("W")])
        assert str(goal) == "choice((X, Z), (W))"

    def test_variables(self):
        goal = ChoiceGoal([Variable("X")], [Variable("W")])
        assert goal.variables() == {Variable("X"), Variable("W")}


def test_format_value_roundtrip_quoting():
    assert format_value("simple") == "simple"
    assert format_value('with "quote"') == '"with \\"quote\\""'
    assert format_value(7) == "7"


def test_make_constant_idempotent():
    c = Constant("a")
    assert make_constant(c) is c
    assert make_constant("a") == c
