"""Unit tests for shifting (Section 4.1, Example 3)."""

import pytest

from repro.datalog import (
    ProgramError,
    answer_sets,
    can_shift,
    parse_program,
    parse_rule,
    shift_program,
    shift_rule,
)


class TestShiftRule:
    def test_non_disjunctive_unchanged(self):
        rule = parse_rule("a :- b.")
        assert shift_rule(rule) == [rule]

    def test_two_way_shift(self):
        rule = parse_rule("a v b :- c.")
        shifted = shift_rule(rule)
        texts = sorted(str(r) for r in shifted)
        assert texts == ["a :- c, not b.", "b :- c, not a."]

    def test_three_way_shift(self):
        rule = parse_rule("a v b v c.")
        shifted = shift_rule(rule)
        assert len(shifted) == 3
        for r in shifted:
            assert len(r.naf_body()) == 2

    def test_classical_negation_in_head(self):
        rule = parse_rule("-a v b :- c.")
        shifted = sorted(str(r) for r in shift_rule(rule))
        assert shifted == ["-a :- c, not b.", "b :- c, not -a."]

    def test_paper_example3_shape(self):
        # Example 3: shifting rule (9) with the choice goal retained.
        rule = parse_rule("""
            -r1p(X, Y) v r2p(X, W) :- r1(X, Y), s1(Z, Y), not aux1(X, Z),
                                      s2(Z, W), choice((X, Z), (W)).""")
        shifted = shift_rule(rule)
        assert len(shifted) == 2
        for r in shifted:
            assert r.choice_goal() is not None
            assert len(r.head) == 1
        naf_preds = sorted(r.naf_body()[-1].predicate for r in shifted)
        assert naf_preds == ["r1p", "r2p"]
        polarities = sorted((r.naf_body()[-1].predicate,
                             r.naf_body()[-1].positive) for r in shifted)
        # `not r2p(x,w)` in the -r1p rule; `not -r1p(x,y)` in the r2p rule
        assert polarities == [("r1p", False), ("r2p", True)]


class TestShiftProgram:
    def test_hcf_program_shifts(self):
        program = parse_program("a v b :- c. c.")
        shifted = shift_program(program)
        assert not shifted.has_disjunction()

    def test_non_hcf_refused(self):
        program = parse_program("a v b. a :- b. b :- a.")
        assert not can_shift(program)
        with pytest.raises(ProgramError):
            shift_program(program)

    def test_force_shift_changes_semantics(self):
        # The ablation case: forcing the shift on a non-HCF program loses
        # the {a, b} model.
        program = parse_program("a v b. a :- b. b :- a.")
        shifted = shift_program(program, force=True)
        original_models = answer_sets(program, shift_hcf=False)
        shifted_models = answer_sets(shifted)
        assert [sorted(str(l) for l in m) for m in original_models] == \
            [["a", "b"]]
        assert shifted_models == []

    def test_no_disjunction_identity(self):
        program = parse_program("a :- b. b.")
        assert shift_program(program) is program

    def test_shift_preserves_answer_sets_hcf(self):
        texts = [
            "a v b :- c. c. :- a.",
            "p(X) v q(X) :- r(X). r(1). r(2). :- q(1).",
            "a v b. c :- a. d :- b.",
        ]
        for text in texts:
            program = parse_program(text)
            direct = answer_sets(program, shift_hcf=False)
            shifted = answer_sets(shift_program(program))
            assert sorted(sorted(str(l) for l in m) for m in direct) == \
                sorted(sorted(str(l) for l in m) for m in shifted), text
