"""Unit tests for the stable-model solver, including brute-force
cross-checks against the Gelfond-Lifschitz definition."""

from itertools import combinations

import pytest

from repro.datalog import (
    SolverError,
    ground_program,
    parse_program,
    stable_models,
)
from repro.datalog.stable import (
    StableModelSolver,
    ground_head_cycle_free,
    is_stable_model,
    shift_ground,
)


def _models_as_names(ground, models):
    return sorted(
        sorted(str(ground.table.literal_for(i)) for i in model)
        for model in models)


def _solve(text, **kwargs):
    ground = ground_program(parse_program(text))
    return ground, stable_models(ground, **kwargs)


def brute_force_stable_models(ground):
    """All stable models by exhaustive subset enumeration (exponential)."""
    n = ground.atom_count
    found = []
    for size in range(n + 1):
        for subset in combinations(range(n), size):
            candidate = set(subset)
            if is_stable_model(ground, candidate):
                found.append(frozenset(candidate))
    return sorted(found, key=lambda m: sorted(m))


class TestNormalPrograms:
    def test_definite_program_single_model(self):
        ground, models = _solve("a. b :- a. c :- b.")
        assert len(models) == 1
        assert len(models[0]) == 3

    def test_even_loop_two_models(self):
        ground, models = _solve("a :- not b. b :- not a.")
        assert _models_as_names(ground, models) == [["a"], ["b"]]

    def test_odd_loop_no_models(self):
        _, models = _solve("a :- not a.")
        assert models == []

    def test_positive_loop_unfounded(self):
        ground, models = _solve("a :- b. b :- a. c :- not a.")
        assert _models_as_names(ground, models) == [["c"]]

    def test_constraint_prunes(self):
        ground, models = _solve("a :- not b. b :- not a. :- a.")
        assert _models_as_names(ground, models) == [["b"]]

    def test_unsatisfiable_constraints(self):
        _, models = _solve("a. :- a.")
        assert models == []

    def test_choice_like_three_way(self):
        text = """
            a :- not b, not c.
            b :- not a, not c.
            c :- not a, not b.
        """
        ground, models = _solve(text)
        assert _models_as_names(ground, models) == [["a"], ["b"], ["c"]]

    def test_supported_but_unfounded_pair(self):
        # {p, q} is a supported model but not stable.
        ground, models = _solve("p :- q. q :- p. p :- not r. r :- not p.")
        assert _models_as_names(ground, models) == [["p", "q"], ["r"]]


class TestClassicalNegation:
    def test_complement_kills_model(self):
        _, models = _solve("a. -a.")
        assert models == []

    def test_complement_branches(self):
        ground, models = _solve("a :- not b. b :- not a. -a :- b.")
        assert _models_as_names(ground, models) == [["-a", "b"], ["a"]]


class TestDisjunctivePrograms:
    def test_plain_disjunction(self):
        ground, models = _solve("a v b.")
        assert _models_as_names(ground, models) == [["a"], ["b"]]

    def test_disjunction_with_constraint(self):
        ground, models = _solve("a v b. :- a.")
        assert _models_as_names(ground, models) == [["b"]]

    def test_non_hcf_single_model(self):
        ground, models = _solve("a v b. a :- b. b :- a.")
        assert _models_as_names(ground, models) == [["a", "b"]]

    def test_non_hcf_three_way(self):
        text = """
            a v b v c.
            a :- b.
            b :- a.
        """
        ground, models = _solve(text)
        # {c} minimal; {a,b} minimal (c false).
        assert _models_as_names(ground, models) == [["a", "b"], ["c"]]

    def test_disjunction_minimality(self):
        # b also derivable directly; a v b has minimal models {b} and... {a}?
        # {a} requires b false, but b is a fact: models must contain b, so
        # the disjunct is already satisfied; minimality discards a.
        ground, models = _solve("a v b. b.")
        assert _models_as_names(ground, models) == [["b"]]

    def test_head_repeated_atom(self):
        ground, models = _solve("a v a.")
        assert _models_as_names(ground, models) == [["a"]]

    def test_shift_equivalence_on_hcf(self):
        text = "a v b :- c. c. :- a."
        ground = ground_program(parse_program(text))
        shifted = shift_ground(ground)
        assert not shifted.is_disjunctive()
        unshifted_models = stable_models(ground, shift_hcf=False)
        shifted_models = stable_models(shifted)
        assert sorted(map(sorted, unshifted_models)) == \
            sorted(map(sorted, shifted_models))

    def test_ground_hcf_detection(self):
        hcf = ground_program(parse_program("a v b. c :- a."))
        assert ground_head_cycle_free(hcf)
        non_hcf = ground_program(parse_program("a v b. a :- b. b :- a."))
        assert not ground_head_cycle_free(non_hcf)


class TestBruteForceCrossCheck:
    """The solver must agree with the GL definition, exhaustively."""

    PROGRAMS = [
        "a :- not b. b :- not a.",
        "a :- not a.",
        "a v b. :- b.",
        "a v b. a :- b. b :- a.",
        "p :- q. q :- p. p :- not r. r :- not p.",
        "a. -a :- not b. b :- not c. c :- not b.",
        "a v b v c. :- a. b :- c. c :- b.",
        "x :- not y. y :- not x. z :- x. z :- y. :- z, x.",
        "p(1). p(2). q(X) :- p(X), not r(X). r(1).",
        "a :- b, not c. b :- not d. d :- not b. c v e :- b.",
    ]

    @pytest.mark.parametrize("text", PROGRAMS)
    def test_matches_brute_force(self, text):
        ground = ground_program(parse_program(text))
        solver_models = sorted(stable_models(ground),
                               key=lambda m: sorted(m))
        brute = brute_force_stable_models(ground)
        assert solver_models == brute

    @pytest.mark.parametrize("text", PROGRAMS)
    def test_every_model_passes_is_stable_model(self, text):
        ground = ground_program(parse_program(text))
        for model in stable_models(ground):
            assert is_stable_model(ground, set(model))


class TestSolverControls:
    def test_max_models(self):
        ground = ground_program(parse_program(
            "a :- not b. b :- not a. c :- not d. d :- not c."))
        models = stable_models(ground, max_models=2)
        assert len(models) == 2

    def test_decision_budget(self):
        text = "\n".join(f"a{i} :- not b{i}. b{i} :- not a{i}."
                         for i in range(8))
        ground = ground_program(parse_program(text))
        solver = StableModelSolver(ground, max_decisions=3)
        with pytest.raises(SolverError):
            solver.solve()

    def test_deterministic_order(self):
        text = "a :- not b. b :- not a."
        ground = ground_program(parse_program(text))
        first = stable_models(ground)
        second = stable_models(ground_program(parse_program(text)))
        assert [sorted(m) for m in first] == [sorted(m) for m in second]
