"""Cross-check: relevant grounding preserves stable models.

The grounder prunes irrelevant instantiations and simplifies NAF literals;
these tests compare its output against *naive full instantiation* over the
Herbrand universe — the semantics-defining baseline — on random non-ground
programs.
"""

from itertools import product

from hypothesis import given, settings, strategies as st

from repro.datalog import (
    Program,
    Rule,
    ground_program,
    stable_models,
)
from repro.datalog.grounding import AtomTable, GroundProgram, GroundRule
from repro.datalog.terms import Atom, Comparison, Constant, Literal, \
    Variable

CONSTANTS = [Constant("a"), Constant("b"), Constant("c")]
X, Y = Variable("X"), Variable("Y")
PREDICATES = ["p", "q", "r"]


def naive_ground(program: Program) -> GroundProgram:
    """Full instantiation over the Herbrand universe, no simplification
    beyond comparison evaluation and duplicate-head removal."""
    table = AtomTable()
    rules: dict[GroundRule, None] = {}
    for rule in program:
        variables = sorted(rule.variables(), key=lambda v: v.name)
        for combo in product(CONSTANTS, repeat=len(variables)):
            subst = dict(zip(variables, combo))

            def ground_atom(atom: Atom) -> Atom:
                return Atom(atom.predicate,
                            [subst.get(t, t) for t in atom.args])

            ok = True
            for item in rule.body:
                if isinstance(item, Comparison):
                    left = subst.get(item.left, item.left)
                    right = subst.get(item.right, item.right)
                    if not Comparison(item.op, left, right).evaluate():
                        ok = False
                        break
            if not ok:
                continue
            head = [table.add(Literal(ground_atom(lit.atom),
                                      lit.positive))
                    for lit in rule.head]
            pos, naf = [], []
            for item in rule.body:
                if isinstance(item, Comparison):
                    continue
                assert isinstance(item, Literal)
                ident = table.add(Literal(ground_atom(item.atom),
                                          item.positive))
                (naf if item.naf else pos).append(ident)
            if set(head) & set(pos):
                continue  # tautology, as the real grounder drops them
            rules.setdefault(GroundRule(
                tuple(dict.fromkeys(head)), tuple(sorted(set(pos))),
                tuple(sorted(set(naf)))))
    return GroundProgram(table, list(rules))


def _models_as_names(ground, models, predicates):
    return sorted(
        sorted(str(ground.table.literal_for(i)) for i in m
               if ground.table.literal_for(i).predicate in predicates)
        for m in models)


@st.composite
def nonground_rules(draw):
    """Random rules over unary predicates p, q, r with variables/constants
    and guaranteed safety (head/naf variables occur positively)."""
    head_pred = draw(st.sampled_from(PREDICATES))
    head_term = draw(st.sampled_from([X, Y] + CONSTANTS))
    body: list = []
    pos_vars: set = set()
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        pred = draw(st.sampled_from(PREDICATES))
        term = draw(st.sampled_from([X, Y] + CONSTANTS))
        body.append(Literal(Atom(pred, [term])))
        if isinstance(term, Variable):
            pos_vars.add(term)
    for _ in range(draw(st.integers(min_value=0, max_value=1))):
        pred = draw(st.sampled_from(PREDICATES))
        candidates = sorted(pos_vars, key=lambda v: v.name) + CONSTANTS
        term = draw(st.sampled_from(candidates))
        body.append(Literal(Atom(pred, [term]), naf=True))
    if isinstance(head_term, Variable) and head_term not in pos_vars:
        body.append(Literal(Atom("dom", [head_term])))
    return Rule(head=[Atom(head_pred, [head_term])], body=body)


@st.composite
def nonground_programs(draw):
    rules = draw(st.lists(nonground_rules(), min_size=1, max_size=5))
    facts = [Rule(head=[Atom("dom", [c])]) for c in CONSTANTS]
    for pred in PREDICATES:
        if draw(st.booleans()):
            facts.append(Rule(head=[Atom(
                pred, [draw(st.sampled_from(CONSTANTS))])]))
    return Program(rules + facts)


@settings(max_examples=60, deadline=None)
@given(nonground_programs())
def test_relevant_grounding_preserves_stable_models(program):
    relevant = ground_program(program)
    naive = naive_ground(program)
    relevant_models = _models_as_names(relevant, stable_models(relevant),
                                       PREDICATES)
    naive_models = _models_as_names(naive, stable_models(naive),
                                    PREDICATES)
    assert relevant_models == naive_models


@settings(max_examples=60, deadline=None)
@given(nonground_programs())
def test_relevant_grounding_never_larger(program):
    relevant = ground_program(program)
    naive = naive_ground(program)
    assert len(relevant.rules) <= len(naive.rules)
    assert relevant.atom_count <= naive.atom_count
