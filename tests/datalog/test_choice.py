"""Unit tests for the choice operator and its stable-version unfolding."""

from repro.datalog import answer_sets, parse_program, unfold_choice
from repro.datalog.choice import CHOSEN_PREFIX, DIFFCHOICE_PREFIX


def _projections(models, predicate):
    return sorted(
        sorted(str(l) for l in m if l.predicate == predicate)
        for m in models)


class TestUnfolding:
    def test_no_choice_program_unchanged(self):
        program = parse_program("p(a). q(X) :- p(X).")
        assert unfold_choice(program) is program

    def test_unfolded_has_chosen_and_diffchoice(self):
        program = parse_program(
            "p(X, W) :- q(X, W), choice((X), (W)). q(a, b).")
        unfolded = unfold_choice(program)
        predicates = unfolded.predicates()
        assert CHOSEN_PREFIX in predicates
        assert DIFFCHOICE_PREFIX in predicates
        assert not unfolded.has_choice()

    def test_multiple_choice_rules_get_distinct_predicates(self):
        program = parse_program("""
            p(X, W) :- q(X, W), choice((X), (W)).
            r(X, W) :- q(X, W), choice((X), (W)).
            q(a, b).
        """)
        unfolded = unfold_choice(program)
        chosen_preds = {p for p in unfolded.predicates()
                        if p.startswith(CHOSEN_PREFIX)}
        assert len(chosen_preds) == 2

    def test_clash_with_existing_chosen_predicate(self):
        program = parse_program("""
            chosen(a).
            p(X, W) :- q(X, W), choice((X), (W)).
            q(a, b).
        """)
        unfolded = unfold_choice(program)
        # must not redefine the user's `chosen`
        for rule in unfolded.proper_rules:
            for lit in rule.head:
                if lit.predicate == "chosen":
                    raise AssertionError("user predicate was redefined")


class TestChoiceSemantics:
    def test_exactly_one_choice_per_domain_value(self):
        program = parse_program("""
            pick(X, W) :- item(X), opt(X, W), choice((X), (W)).
            item(1). item(2).
            opt(1, a). opt(1, b). opt(2, c).
        """)
        models = answer_sets(program)
        picks = _projections(models, "pick")
        assert picks == [
            ["pick(1, a)", "pick(2, c)"],
            ["pick(1, b)", "pick(2, c)"],
        ]

    def test_chosen_is_functional_in_every_model(self):
        program = parse_program("""
            pick(X, W) :- opt(X, W), choice((X), (W)).
            opt(1, a). opt(1, b). opt(1, c). opt(2, a). opt(2, b).
        """)
        models = answer_sets(program)
        assert len(models) == 6  # 3 options x 2 options
        for model in models:
            per_domain = {}
            for lit in model:
                if lit.predicate == "pick":
                    x, w = lit.atom.value_tuple()
                    per_domain.setdefault(x, set()).add(w)
            assert all(len(ws) == 1 for ws in per_domain.values())

    def test_empty_domain_no_choice_needed(self):
        program = parse_program("""
            pick(X, W) :- item(X), opt(X, W), choice((X), (W)).
            item(1).
        """)
        models = answer_sets(program)
        assert len(models) == 1
        assert not any(l.predicate == "pick" for l in models[0])

    def test_choice_with_two_domain_variables(self):
        # the paper's rule (9) shape: choice((X, Z), (W))
        program = parse_program("""
            ins(X, Z, W) :- r(X), s(Z, W), choice((X, Z), (W)).
            r(d). s(a, t1). s(a, t2).
        """)
        models = answer_sets(program)
        ins = _projections(models, "ins")
        assert ins == [["ins(d, a, t1)"], ["ins(d, a, t2)"]]

    def test_choice_interacts_with_disjunction(self):
        # shape of rule (9): delete x or insert a chosen w
        program = parse_program("""
            del(X) v ins(X, W) :- viol(X), s(W), choice((X), (W)).
            viol(1). s(a). s(b).
        """)
        models = answer_sets(program)
        outcomes = sorted(
            sorted(str(l) for l in m if l.predicate in ("del", "ins"))
            for m in models)
        assert outcomes == [["del(1)"], ["del(1)"],
                            ["ins(1, a)"], ["ins(1, b)"]]

    def test_chosen_stable_across_multiple_bodies(self):
        # two different rules could fire for the same domain value; each
        # choice rule gets its own chosen predicate so they are independent
        program = parse_program("""
            p(X, W) :- a(X), d(W), choice((X), (W)).
            q(X, W) :- b(X), d(W), choice((X), (W)).
            a(1). b(1). d(u). d(v).
        """)
        models = answer_sets(program)
        assert len(models) == 4  # independent 2 x 2
