"""Property-based tests (hypothesis) for the ASP engine.

These check the engine against the Gelfond-Lifschitz *definition* on random
programs: every reported model must pass the exact stability check, and the
solver must agree with brute-force subset enumeration on small programs.
"""

from itertools import combinations

from hypothesis import given, settings, strategies as st

from repro.datalog import (
    Program,
    Rule,
    ground_program,
    parse_program,
    stable_models,
)
from repro.datalog.graphs import is_head_cycle_free
from repro.datalog.hcf import shift_program
from repro.datalog.stable import is_stable_model
from repro.datalog.terms import Atom, Literal

ATOMS = [Atom(f"p{i}") for i in range(6)]


@st.composite
def normal_rules(draw):
    """A random propositional normal rule over a small atom pool."""
    head = draw(st.sampled_from(ATOMS))
    pos = draw(st.lists(st.sampled_from(ATOMS), max_size=2, unique=True))
    naf = draw(st.lists(st.sampled_from(ATOMS), max_size=2, unique=True))
    body = [Literal(a) for a in pos if a != head]
    body += [Literal(a, naf=True) for a in naf]
    return Rule(head=[head], body=body)


@st.composite
def disjunctive_rules(draw):
    heads = draw(st.lists(st.sampled_from(ATOMS), min_size=1, max_size=3,
                          unique=True))
    pos = draw(st.lists(st.sampled_from(ATOMS), max_size=2, unique=True))
    naf = draw(st.lists(st.sampled_from(ATOMS), max_size=1, unique=True))
    body = [Literal(a) for a in pos if a not in heads]
    body += [Literal(a, naf=True) for a in naf]
    return Rule(head=heads, body=body)


def brute_force(ground):
    n = ground.atom_count
    found = []
    for size in range(n + 1):
        for subset in combinations(range(n), size):
            if is_stable_model(ground, set(subset)):
                found.append(frozenset(subset))
    return sorted(found, key=lambda m: sorted(m))


@settings(max_examples=120, deadline=None)
@given(st.lists(normal_rules(), min_size=1, max_size=7))
def test_normal_solver_matches_brute_force(rules):
    ground = ground_program(Program(rules))
    assert sorted(stable_models(ground), key=lambda m: sorted(m)) == \
        brute_force(ground)


@settings(max_examples=120, deadline=None)
@given(st.lists(disjunctive_rules(), min_size=1, max_size=6))
def test_disjunctive_solver_matches_brute_force(rules):
    ground = ground_program(Program(rules))
    assert sorted(stable_models(ground), key=lambda m: sorted(m)) == \
        brute_force(ground)


@settings(max_examples=120, deadline=None)
@given(st.lists(disjunctive_rules(), min_size=1, max_size=6))
def test_every_reported_model_is_stable(rules):
    ground = ground_program(Program(rules))
    for model in stable_models(ground):
        assert is_stable_model(ground, set(model))


@settings(max_examples=120, deadline=None)
@given(st.lists(disjunctive_rules(), min_size=1, max_size=6))
def test_models_are_incomparable(rules):
    """Distinct answer sets of a (consistent-negation-free) disjunctive
    program are subset-incomparable — a classic ASP invariant."""
    ground = ground_program(Program(rules))
    models = stable_models(ground)
    for i, first in enumerate(models):
        for second in models[i + 1:]:
            assert not (first < second or second < first)


@settings(max_examples=120, deadline=None)
@given(st.lists(disjunctive_rules(), min_size=1, max_size=6))
def test_shift_preserves_models_on_hcf(rules):
    program = Program(rules)
    if not is_head_cycle_free(program):
        return
    direct = stable_models(ground_program(program), shift_hcf=False)
    shifted = stable_models(ground_program(shift_program(program)))

    def render(ground_models, program_):
        ground = ground_program(program_)
        return sorted(
            sorted(str(ground.table.literal_for(a)) for a in m)
            for m in ground_models)

    assert render(direct, program) == render(shifted,
                                             shift_program(program))


@st.composite
def stratified_programs(draw):
    """Random non-ground stratified programs: p_{i} may negate only p_{j<i}."""
    lines = ["d(1). d(2). d(3)."]
    n_preds = draw(st.integers(min_value=2, max_value=4))
    lines.append("p0(X) :- d(X), X != 2.")
    for i in range(1, n_preds):
        lower = draw(st.integers(min_value=0, max_value=i - 1))
        polarity = draw(st.booleans())
        if polarity:
            lines.append(f"p{i}(X) :- d(X), p{lower}(X).")
        else:
            lines.append(f"p{i}(X) :- d(X), not p{lower}(X).")
    return parse_program("\n".join(lines))


@settings(max_examples=60, deadline=None)
@given(stratified_programs())
def test_stratified_fast_path_agrees_with_search(program):
    from repro.datalog import answer_sets
    fast = answer_sets(program, use_stratified_fast_path=True)
    slow = answer_sets(program, use_stratified_fast_path=False)
    assert [sorted(str(l) for l in m) for m in fast] == \
        [sorted(str(l) for l in m) for m in slow]


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=3),
       st.integers(min_value=1, max_value=3))
def test_choice_model_count_is_product_of_domains(n_options_1, n_options_2):
    """choice((X),(W)) must yield exactly prod_i |options(i)| models."""
    lines = ["pick(X, W) :- item(X), opt(X, W), choice((X), (W))."]
    lines.append("item(1). item(2).")
    for w in range(n_options_1):
        lines.append(f"opt(1, w{w}).")
    for w in range(n_options_2):
        lines.append(f"opt(2, v{w}).")
    from repro.datalog import answer_sets
    models = answer_sets(parse_program("\n".join(lines)))
    assert len(models) == n_options_1 * n_options_2
