"""Unit tests for substitutions and matching (repro.datalog.unify)."""

import pytest

from repro.datalog.terms import Atom, Comparison, Constant, Literal, \
    Variable
from repro.datalog.unify import (
    apply_atom,
    apply_body_item,
    apply_comparison,
    apply_literal,
    apply_term,
    compose,
    ground_terms,
    match_atom,
    merge,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
A, B = Constant("a"), Constant("b")


class TestApply:
    def test_apply_term(self):
        assert apply_term(X, {X: A}) == A
        assert apply_term(X, {}) == X
        assert apply_term(A, {X: B}) == A

    def test_apply_atom(self):
        atom = Atom("p", [X, A, Y])
        applied = apply_atom(atom, {X: B})
        assert applied == Atom("p", [B, A, Y])

    def test_apply_atom_ground_shortcut_returns_same_object(self):
        atom = Atom("p", [A, B])
        assert apply_atom(atom, {X: A}) is atom

    def test_apply_literal_preserves_flags(self):
        literal = Literal(Atom("p", [X]), positive=False, naf=True)
        applied = apply_literal(literal, {X: A})
        assert applied.positive is False and applied.naf is True
        assert applied.atom == Atom("p", [A])

    def test_apply_comparison(self):
        comparison = Comparison("<", X, Y)
        applied = apply_comparison(comparison, {X: Constant(1),
                                                Y: Constant(2)})
        assert applied.evaluate()

    def test_apply_body_item_dispatch(self):
        assert apply_body_item(Literal(Atom("p", [X])), {X: A}).atom == \
            Atom("p", [A])
        assert apply_body_item(Comparison("=", X, X), {X: A}).evaluate()

    def test_ground_terms(self):
        assert ground_terms((X, A, Y), {X: B, Y: A}) == (B, A, A)


class TestMatchAtom:
    def test_basic_match(self):
        binding = match_atom(Atom("p", [X, Y]), Atom("p", [A, B]))
        assert binding == {X: A, Y: B}

    def test_predicate_mismatch(self):
        assert match_atom(Atom("p", [X]), Atom("q", [A])) is None

    def test_arity_mismatch(self):
        assert match_atom(Atom("p", [X]), Atom("p", [A, B])) is None

    def test_constant_mismatch(self):
        assert match_atom(Atom("p", [A]), Atom("p", [B])) is None

    def test_repeated_variable_must_agree(self):
        assert match_atom(Atom("p", [X, X]), Atom("p", [A, A])) == {X: A}
        assert match_atom(Atom("p", [X, X]), Atom("p", [A, B])) is None

    def test_extends_existing_substitution(self):
        binding = match_atom(Atom("p", [X, Y]), Atom("p", [A, B]),
                             {X: A})
        assert binding == {X: A, Y: B}
        assert match_atom(Atom("p", [X]), Atom("p", [B]), {X: A}) is None

    def test_does_not_mutate_input_substitution(self):
        subst = {X: A}
        match_atom(Atom("p", [X, Y]), Atom("p", [A, B]), subst)
        assert subst == {X: A}

    def test_non_ground_target_rejected(self):
        with pytest.raises(ValueError):
            match_atom(Atom("p", [X]), Atom("p", [Y]))


class TestMergeCompose:
    def test_merge_disjoint(self):
        assert merge({X: A}, {Y: B}) == {X: A, Y: B}

    def test_merge_agreeing(self):
        assert merge({X: A}, {X: A, Y: B}) == {X: A, Y: B}

    def test_merge_conflicting(self):
        assert merge({X: A}, {X: B}) is None

    def test_compose_first_wins(self):
        assert compose({X: A}, {X: B, Y: B}) == {X: A, Y: B}
