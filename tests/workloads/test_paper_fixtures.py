"""Sanity tests: the paper fixtures transcribe the paper's data exactly."""

from repro.relational import Fact
from repro.workloads import (
    appendix_instance,
    example1_query,
    example1_system,
    example4_system,
    section31_dec,
    section31_system,
)


class TestExample1Fixture:
    def test_instances(self):
        system = example1_system()
        assert system.instances["P1"].tuples("R1") == frozenset(
            {("a", "b"), ("s", "t")})
        assert system.instances["P2"].tuples("R2") == frozenset(
            {("c", "d"), ("a", "e")})
        assert system.instances["P3"].tuples("R3") == frozenset(
            {("a", "f"), ("s", "u")})

    def test_trust(self):
        system = example1_system()
        assert system.trust.trusts_less("P1", "P2")
        assert system.trust.trusts_same("P1", "P3")
        assert len(system.trust) == 2

    def test_decs(self):
        system = example1_system()
        by_other = {e.other: e.constraint for e in system.decs_of("P1")}
        # Σ(P1,P2) is the full inclusion R2 ⊆ R1
        assert by_other["P2"].holds_in(system.global_instance()) is False
        # Σ(P1,P3) is the EGD; two violations on the paper data
        assert len(by_other["P3"].violations(
            system.global_instance())) == 2

    def test_overrides(self):
        system = example1_system(r1=[("x", "y")])
        assert system.instances["P1"].tuples("R1") == frozenset(
            {("x", "y")})
        # other instances keep their defaults
        assert system.instances["P2"].tuples("R2") == frozenset(
            {("c", "d"), ("a", "e")})

    def test_query(self):
        query = example1_query()
        assert query.relations() == {"R1"}
        assert query.arity == 2


class TestSection31Fixture:
    def test_appendix_instance(self):
        instance = appendix_instance()
        assert instance.facts() == {
            Fact("R1", ("a", "b")), Fact("S1", ("c", "b")),
            Fact("S2", ("c", "e")), Fact("S2", ("c", "f"))}

    def test_dec3_shape(self):
        dec = section31_dec()
        assert {a.relation for a in dec.antecedent} == {"R1", "S1"}
        assert {a.relation for a in dec.consequent} == {"R2", "S2"}
        assert len(dec.existential_vars) == 1

    def test_dec3_violated_on_appendix_data(self):
        assert not section31_dec().holds_in(appendix_instance())

    def test_system_trust(self):
        system = section31_system()
        assert system.trust.trusts_less("P", "Q")


class TestExample4Fixture:
    def test_instances(self):
        system = example4_system()
        assert system.instances["P"].tuples("R1") == frozenset(
            {("a", "b")})
        assert system.instances["P"].tuples("R2") == frozenset()
        assert system.instances["Q"].tuples("S1") == frozenset()
        assert system.instances["Q"].tuples("S2") == frozenset(
            {("c", "e"), ("c", "f")})
        assert system.instances["C"].tuples("U") == frozenset(
            {("c", "b")})

    def test_chain_structure(self):
        system = example4_system()
        assert system.neighbours("P") == ("Q",)
        assert system.neighbours("Q") == ("C",)
        assert system.trust.trusts_less("P", "Q")
        assert system.trust.trusts_less("Q", "C")

    def test_p_dec_locally_satisfied(self):
        # the paper: "P would have only one solution, corresponding to
        # the original instances" — because s1 = {} makes (3) vacuous
        system = example4_system()
        dec = system.decs_of("P")[0].constraint
        assert dec.holds_in(system.global_instance())
