"""Unit tests for the synthetic workload generators (shape guarantees the
benchmarks rely on)."""

import pytest

from repro.core import solutions_for_peer
from repro.core.asp_gav import asp_solutions_for_peer
from repro.core.transitive import global_solutions
from repro.workloads import (
    conflict_chain_system,
    import_star_system,
    peer_chain_system,
    referential_system,
    topology_system,
)


class TestConflictChain:
    @pytest.mark.parametrize("n", [0, 1, 2, 3])
    def test_two_to_the_n_solutions(self, n):
        system = conflict_chain_system(n)
        assert len(solutions_for_peer(system, "P1")) == 2 ** n

    def test_clean_tuples_survive_everywhere(self):
        system = conflict_chain_system(2, n_clean=3)
        for solution in solutions_for_peer(system, "P1"):
            for i in range(3):
                assert (f"c{i}", f"cv{i}") in solution.tuples("R1")

    def test_asp_agrees(self):
        system = conflict_chain_system(2)
        assert asp_solutions_for_peer(system, "P1") == \
            solutions_for_peer(system, "P1")


class TestImportStar:
    def test_single_solution_without_conflicts(self):
        system = import_star_system(10, n_neighbours=2)
        solutions = solutions_for_peer(system, "P0")
        assert len(solutions) == 1

    def test_everything_imported(self):
        system = import_star_system(6, n_neighbours=2, overlap=0.5)
        (solution,) = solutions_for_peer(system, "P0")
        r0 = solution.tuples("R0")
        for j in (1, 2):
            assert system.instances[f"P{j}"].tuples(f"M{j}") <= r0

    def test_conflicts_create_solution_pairs(self):
        system = import_star_system(4, n_neighbours=1, conflicts=2,
                                    overlap=0.0)
        solutions = solutions_for_peer(system, "P0")
        assert len(solutions) == 4  # 2 independent conflicts

    def test_deterministic_given_seed(self):
        one = import_star_system(8, n_neighbours=2, seed=3)
        two = import_star_system(8, n_neighbours=2, seed=3)
        assert one.global_instance() == two.global_instance()


class TestReferential:
    def test_solution_count_formula(self):
        # each violation: 1 deletion + n_witnesses insertions
        for violations, witnesses in ((1, 1), (1, 2), (2, 2)):
            system = referential_system(violations, witnesses)
            solutions = solutions_for_peer(system, "P")
            assert len(solutions) == (witnesses + 1) ** violations

    def test_satisfied_pairs_untouched(self):
        system = referential_system(1, 1, n_satisfied=2)
        for solution in solutions_for_peer(system, "P"):
            assert ("sd0", "sm0") in solution.tuples("R1")
            assert ("sd1", "sm1") in solution.tuples("R1")


class TestPeerChain:
    def test_propagation_to_root(self):
        system = peer_chain_system(3, n_tuples=2)
        solutions = global_solutions(system, "P0")
        assert len(solutions) == 1
        root_relation = solutions[0].tuples("T0")
        assert root_relation == frozenset({("x0", "y0"), ("x1", "y1")})

    def test_direct_semantics_sees_one_hop_only(self):
        system = peer_chain_system(2, n_tuples=1)
        direct = solutions_for_peer(system, "P0")
        # T1 is empty originally, so the direct solution imports nothing
        assert direct[0].tuples("T0") == frozenset()

    def test_length_validation(self):
        with pytest.raises(ValueError):
            peer_chain_system(0)


class TestTopologySystem:
    def _reachable(self, system, root="P0"):
        seen, frontier = {root}, [root]
        while frontier:
            current = frontier.pop()
            for neighbour in system.neighbours(current):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen

    @pytest.mark.parametrize("topology", ["chain", "star", "random"])
    def test_every_peer_reachable_from_the_root(self, topology):
        for seed in range(4):
            system = topology_system(5, topology=topology,
                                     extra_edges=2, seed=seed)
            assert self._reachable(system) == set(system.peers)

    def test_chain_and_star_shapes(self):
        chain = topology_system(4, topology="chain")
        assert chain.neighbours("P0") == ("P1",)
        assert chain.neighbours("P2") == ("P3",)
        star = topology_system(4, topology="star")
        assert star.neighbours("P0") == ("P1", "P2", "P3")
        assert star.neighbours("P1") == ()

    def test_deterministic_given_the_seed(self):
        def shape(seed):
            system = topology_system(5, topology="random",
                                     extra_edges=2, seed=seed)
            return ({n: system.neighbours(n) for n in system.peers},
                    {n: system.instances[n].tuples(f"R{i}")
                     for i, n in enumerate(sorted(system.peers))
                     if n != "PC"})
        assert shape(3) == shape(3)
        assert shape(3) != shape(4)

    def test_conflicts_add_a_same_trust_peer(self):
        from repro.core import TrustLevel
        system = topology_system(3, topology="star", conflicts=2)
        assert "PC" in system.peers
        assert system.trust.level("P0", "PC") is TrustLevel.SAME
        # the conflict peer makes P0 genuinely inconsistent: multiple
        # solutions appear
        assert len(asp_solutions_for_peer(system, "P0")) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            topology_system(0)
        with pytest.raises(ValueError):
            topology_system(3, topology="mesh")
