"""Unit tests for the transports and fault injection."""

import threading
import time

import pytest

from repro.net import (
    Answer,
    FaultPlan,
    FetchRelation,
    LoopbackTransport,
    MessageDropped,
    PeerDown,
    ThreadedTransport,
)


def echo_handler(name):
    def handle(message):
        return Answer(sender=name, target=message.sender,
                      in_reply_to=message.correlation_id,
                      payload=(("echo", message.relation),))
    return handle


def fetch(target, relation="R"):
    return FetchRelation(sender="A", target=target, relation=relation)


class TestLoopback:
    def test_round_trip(self):
        transport = LoopbackTransport()
        transport.register("B", echo_handler("B"))
        reply = transport.request(fetch("B"))
        assert isinstance(reply, Answer)
        assert reply.payload == (("echo", "R"),)

    def test_unregistered_target_is_peer_down(self):
        transport = LoopbackTransport()
        with pytest.raises(PeerDown):
            transport.request(fetch("nowhere"))

    def test_down_peer_refuses_delivery(self):
        transport = LoopbackTransport()
        transport.register("B", echo_handler("B"))
        transport.set_down("B")
        with pytest.raises(PeerDown):
            transport.request(fetch("B"))
        transport.set_up("B")
        assert isinstance(transport.request(fetch("B")), Answer)

    def test_seeded_drops_are_deterministic(self):
        def losses(seed):
            transport = LoopbackTransport(
                FaultPlan(drop_rate=0.5, seed=seed))
            transport.register("B", echo_handler("B"))
            lost = []
            for index in range(20):
                try:
                    transport.request(fetch("B"))
                    lost.append(False)
                except MessageDropped:
                    lost.append(True)
            return lost
        assert losses(3) == losses(3)
        assert any(losses(3)) and not all(losses(3))


class TestThreaded:
    def test_round_trip_and_close(self):
        with ThreadedTransport() as transport:
            transport.register("B", echo_handler("B"))
            reply = transport.request(fetch("B"))
            assert reply.payload == (("echo", "R"),)

    def test_latency_is_paid_per_delivery(self):
        with ThreadedTransport(latency=0.02) as transport:
            transport.register("B", echo_handler("B"))
            start = time.perf_counter()
            transport.request(fetch("B"))
            assert time.perf_counter() - start >= 0.02

    def test_per_link_latency_overrides_default(self):
        with ThreadedTransport(
                link_latency={("A", "B"): 0.03}) as transport:
            transport.register("B", echo_handler("B"))
            transport.register("C", echo_handler("C"))
            start = time.perf_counter()
            transport.request(fetch("C"))
            fast = time.perf_counter() - start
            start = time.perf_counter()
            transport.request(fetch("B"))
            slow = time.perf_counter() - start
            assert slow >= 0.03 > fast

    def test_distinct_targets_pay_latency_in_parallel(self):
        with ThreadedTransport(latency=0.03) as transport:
            for name in ("B", "C", "D"):
                transport.register(name, echo_handler(name))
            start = time.perf_counter()
            threads = [threading.Thread(
                target=transport.request, args=(fetch(name),))
                for name in ("B", "C", "D")]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            assert elapsed < 0.09  # 3 sequential deliveries would be it

    def test_handler_exception_reaches_the_requester(self):
        def broken(message):
            raise RuntimeError("boom")
        with ThreadedTransport() as transport:
            transport.register("B", broken)
            with pytest.raises(RuntimeError, match="boom"):
                transport.request(fetch("B"))

    def test_reply_timeout_is_a_drop(self):
        def sleepy(message):
            time.sleep(0.2)
            return echo_handler("B")(message)
        with ThreadedTransport(timeout=0.05) as transport:
            transport.register("B", sleepy)
            with pytest.raises(MessageDropped):
                transport.request(fetch("B"))

    def test_down_peer_refuses_delivery(self):
        with ThreadedTransport() as transport:
            transport.register("B", echo_handler("B"))
            transport.set_down("B")
            with pytest.raises(PeerDown):
                transport.request(fetch("B"))


class TestFaultPlan:
    def test_drop_rate_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.0)

    def test_duplicate_registration_rejected(self):
        with ThreadedTransport() as transport:
            transport.register("B", echo_handler("B"))
            with pytest.raises(ValueError):
                transport.register("B", echo_handler("B"))
