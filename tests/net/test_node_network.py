"""Unit tests for PeerNode serving and PeerNetwork routing."""

import pytest

from repro.core import PeerQuerySession
from repro.net import (
    Answer,
    Failure,
    FetchRelation,
    NetworkSession,
    PeerNetwork,
    PeerQuery,
    ProtocolError,
)
from repro.workloads import example1_system, example4_system, \
    topology_system

QUERY = "q(X, Y) := R1(X, Y)"


def network_for(system, **kwargs):
    return PeerNetwork.from_system(system, **kwargs)


class TestNodeServing:
    def test_fetch_own_relation(self):
        network = network_for(example1_system())
        node = network.node("P2")
        reply = node.handle(FetchRelation(sender="P1", target="P2",
                                          relation="R2"))
        assert isinstance(reply, Answer)
        assert set(reply.payload) == {("c", "d"), ("a", "e")}

    def test_fetch_foreign_relation_is_a_typed_failure(self):
        network = network_for(example1_system())
        reply = network.node("P2").handle(
            FetchRelation(sender="P1", target="P2", relation="R1"))
        assert isinstance(reply, Failure)
        assert reply.code == "unknown-relation"

    def test_unknown_peer_query_kind_rejected(self):
        network = network_for(example1_system())
        reply = network.node("P2").handle(
            PeerQuery(sender="P1", target="P2", kind="teleport"))
        assert isinstance(reply, Failure)
        assert reply.code == "unsupported-message"

    def test_nodes_hold_only_their_own_slice(self):
        system = example4_system()
        network = network_for(system)
        assert network.node("P").neighbours() == ("Q",)
        assert network.node("Q").neighbours() == ("C",)
        assert network.node("C").neighbours() == ()
        assert set(network.node("Q").peer.schema.names) == {"S1", "S2"}


class TestGatheredView:
    def test_view_covers_the_accessible_subnetwork(self):
        system = example4_system()
        network = network_for(system)
        view = network.node("P").local_view()
        assert sorted(view.peers) == ["C", "P", "Q"]
        # instances match the source system peer by peer
        for name in view.peers:
            assert view.instances[name].relations() == \
                system.instances[name].relations()
            for relation in view.instances[name].relations():
                assert view.instances[name].tuples(relation) == \
                    system.instances[name].tuples(relation)

    def test_view_sees_only_reachable_peers(self):
        system = example4_system()
        network = network_for(system)
        view = network.node("C").local_view()
        assert sorted(view.peers) == ["C"]

    def test_view_keeps_decs_and_trust(self):
        system = example1_system()
        view = network_for(system).node("P1").local_view()
        assert len(view.exchanges) == len(system.exchanges)
        assert len(view.trust) == len(system.trust)


class TestNetworkRouting:
    def test_topology_reflects_the_decs(self):
        network = network_for(example4_system())
        assert network.topology() == {"P": ("Q",), "Q": ("C",),
                                      "C": ()}

    def test_answers_are_cached_per_version(self):
        network = network_for(example1_system())
        session = NetworkSession(network)
        first = session.answer("P1", QUERY)
        second = session.answer("P1", QUERY)
        assert not first.from_cache and second.from_cache
        assert first.answers == second.answers
        assert first.exchange.requests > 0
        assert second.exchange.requests == 0

    def test_sync_invalidates_node_caches(self):
        session = NetworkSession(example1_system())
        before = session.answer("P1", QUERY)
        updated = example1_system(r1=[("a", "b"), ("s", "t"),
                                      ("z", "z")])
        session.use_system(updated)
        after = session.answer("P1", QUERY)
        assert not after.from_cache
        assert after.exchange.requests > 0
        assert ("z", "z") in after.answers
        assert after.answers == \
            PeerQuerySession(updated).answer("P1", QUERY).answers
        assert before.answers != after.answers

    def test_sync_rejects_topology_changes(self):
        from repro.net import NetworkError
        session = NetworkSession(example1_system())
        with pytest.raises(NetworkError):
            session.use_system(topology_system(2, topology="chain"))

    def test_exchange_log_records_real_messages(self):
        session = NetworkSession(example1_system())
        session.answer("P1", QUERY)
        events = session.exchange_log.events()
        fetched = {e.relation for e in events
                   if not e.relation.startswith("@")}
        assert fetched == {"R2", "R3"}
        assert all(e.requester == "P1" for e in events)
        assert all(e.bytes_estimate >= 0 for e in events)

    def test_relayed_data_reports_hop_depth(self):
        session = NetworkSession(
            topology_system(4, topology="chain", n_tuples=3, seed=0))
        result = session.answer("P0", "q(X, Y) := R0(X, Y)")
        assert result.exchange.max_hops == 3  # P3's data relayed twice

    def test_detached_node_cannot_gather(self):
        network = network_for(example1_system())
        node = network.node("P1")
        node.network = None
        with pytest.raises(ProtocolError):
            node.local_view()


class TestOpenSession:
    def test_one_argument_switch(self):
        from repro.net import open_session
        system = example1_system()
        assert isinstance(open_session(system), PeerQuerySession)
        assert isinstance(open_session(system, network=True),
                          NetworkSession)

    def test_network_kwargs_rejected_for_local_backend(self):
        from repro.net import NetworkError, open_session
        with pytest.raises(NetworkError):
            open_session(example1_system(), retries=5)
