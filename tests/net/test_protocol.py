"""Unit tests for the typed protocol messages."""

import pytest

from repro.core import estimate_bytes
from repro.net import Answer, Failure, FetchRelation, PeerQuery
from repro.net.protocol import SUBSYSTEM, payload_bytes


class TestCorrelation:
    def test_correlation_ids_are_unique_and_monotone(self):
        messages = [FetchRelation(sender="A", target="B", relation="R")
                    for _ in range(10)]
        ids = [m.correlation_id for m in messages]
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids)

    def test_replies_quote_the_request(self):
        request = PeerQuery(sender="A", target="B")
        reply = Answer(sender="B", target="A",
                       in_reply_to=request.correlation_id,
                       payload=(("x", "y"),))
        assert reply.in_reply_to == request.correlation_id

    def test_messages_are_immutable(self):
        message = FetchRelation(sender="A", target="B", relation="R")
        with pytest.raises(Exception):
            message.relation = "S"


class TestDefaults:
    def test_peer_query_defaults(self):
        message = PeerQuery(sender="A", target="B")
        assert message.kind == SUBSYSTEM
        assert message.hop_budget > 0
        assert message.visited == ()

    def test_failure_carries_code_and_detail(self):
        failure = Failure(sender="B", target="A", in_reply_to=1,
                          code="unknown-relation", detail="no such R")
        assert failure.code == "unknown-relation"
        assert "no such R" in failure.detail


class TestPayloadBytes:
    def test_rows_use_the_shared_estimator(self):
        rows = (("a", "bb"), ("ccc", "d"))
        answer = Answer(sender="B", target="A", in_reply_to=1,
                        payload=rows)
        assert answer.bytes_estimate == estimate_bytes(rows)
        assert answer.bytes_estimate > 0

    def test_none_payload_costs_nothing(self):
        assert payload_bytes(None) == 0

    def test_subsystem_payload_counts_instances_and_overhead(self):
        from repro.relational import DatabaseInstance, DatabaseSchema
        instance = DatabaseInstance(DatabaseSchema.of({"R": 2}),
                                    {"R": [("a", "b")]})
        payload = {"peers": {"Q": object()}, "instances": {"Q": instance},
                   "decs": [object()], "trust": [("Q", "less", "C")]}
        cost = payload_bytes(payload)
        assert cost >= estimate_bytes([("a", "b")])
        assert cost > payload_bytes({"peers": {}, "instances": {},
                                     "decs": [], "trust": []})
