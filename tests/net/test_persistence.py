"""Durable peer nodes: kill/reload round-trips and delta sync.

The differential guarantee of the storage layer: a :class:`PeerNode`
reloaded from its data directory returns ``answers``,
``solution_count``, and ``method_used`` identical to a freshly built
node — across the paper workloads and a broad family of seeded
synthetic systems — and an update pushed after a restart syncs by
versioned deltas instead of full re-gathers.
"""

import itertools

import pytest

from repro.core import PeerQuerySession
from repro.net import NetworkSession, ProtocolError
from repro.net.protocol import FetchRelation, Answer
from repro.relational.instance import Fact
from repro.storage import describe_data_dir
from repro.workloads import (
    conflict_chain_system,
    example1_system,
    example4_system,
    import_star_system,
    peer_chain_system,
    referential_system,
    section31_system,
    topology_system,
)

#: 3 topologies x 7 seeds = 21 seeded synthetic systems (>= 20)
SEEDS = range(7)
TOPOLOGIES = ("chain", "star", "random")
SYNTHETIC_CASES = list(itertools.product(TOPOLOGIES, SEEDS))


def triple(result):
    return (result.answers, result.solution_count, result.method_used)


def assert_reload_identical(make_system, peer, queries, tmp_path, *,
                            methods=("auto", "asp"), close=True):
    """Answer, (optionally) close cleanly, reload, compare triples."""
    data_dir = tmp_path / "nodes"
    first = NetworkSession(make_system(), data_dir=data_dir)
    expected = {}
    try:
        for query, method in itertools.product(queries, methods):
            result = first.answer(peer, query, method=method)
            assert result.ok, result.error
            expected[(query, method)] = triple(result)
    finally:
        if close:
            first.close()
        # without close: simulate a kill — the store is write-through,
        # only the fetch-cache/answers flushed at close may be missing

    fresh_system = make_system()
    reloaded = NetworkSession(fresh_system, data_dir=data_dir)
    control = NetworkSession(fresh_system)
    try:
        for (query, method), want in expected.items():
            again = reloaded.answer(peer, query, method=method)
            assert again.ok, again.error
            assert triple(again) == want, (query, method)
            fresh = control.answer(peer, query, method=method)
            assert triple(again) == triple(fresh), (query, method)
            if close:
                # a cleanly closed node reloads its answer cache: the
                # reloaded answer must come from disk, without traffic
                assert again.from_cache
                assert again.exchange.requests == 0
    finally:
        reloaded.close()
        control.close()


class TestPaperWorkloads:
    def test_example1(self, tmp_path):
        assert_reload_identical(
            example1_system, "P1",
            ["q(X, Y) := R1(X, Y)", "q(X) := exists Y R1(X, Y)"],
            tmp_path, methods=("auto", "asp", "model", "rewrite"))

    def test_section31(self, tmp_path):
        assert_reload_identical(
            section31_system, "P",
            ["q(X, Y) := R2(X, Y)"], tmp_path,
            methods=("auto", "asp", "lav"))

    def test_example4_transitive(self, tmp_path):
        assert_reload_identical(
            example4_system, "P", ["q(X, Y) := R2(X, Y)"], tmp_path,
            methods=("auto", "asp", "transitive"))

    def test_conflict_chain(self, tmp_path):
        assert_reload_identical(
            lambda: conflict_chain_system(3, n_clean=2), "P1",
            ["q(X, Y) := R1(X, Y)"], tmp_path,
            methods=("auto", "asp", "model"))

    def test_import_star(self, tmp_path):
        assert_reload_identical(
            lambda: import_star_system(10, n_neighbours=3, conflicts=2,
                                       seed=5),
            "P0", ["q(X, Y) := R0(X, Y)"], tmp_path)

    def test_referential(self, tmp_path):
        assert_reload_identical(
            lambda: referential_system(2, n_witnesses=2, n_satisfied=1),
            "P", ["q(X, Y) := R2(X, Y)"], tmp_path)

    def test_peer_chain(self, tmp_path):
        assert_reload_identical(
            lambda: peer_chain_system(3, n_tuples=2), "P0",
            ["q(X, Y) := T0(X, Y)"], tmp_path,
            methods=("auto", "transitive"))

    def test_kill_without_close_still_identical(self, tmp_path):
        assert_reload_identical(
            example1_system, "P1", ["q(X, Y) := R1(X, Y)"],
            tmp_path, close=False)


class TestSeededSynthetic:
    @pytest.mark.parametrize("topology,seed", SYNTHETIC_CASES)
    def test_seeded_system(self, topology, seed, tmp_path):
        def make():
            return topology_system(4, topology=topology, n_tuples=4,
                                   conflicts=(seed % 2), extra_edges=2,
                                   seed=seed)
        assert_reload_identical(
            make, "P0",
            ["q(X, Y) := R0(X, Y)", "q(X) := exists Y R0(X, Y)"],
            tmp_path)


class TestUpdateAfterRestart:
    QUERY = "q(X, Y) := R0(X, Y)"

    @staticmethod
    def _updated(system):
        return system.with_global_instance(
            system.global_instance().with_facts(
                [Fact("R1", ("k0", "post-restart"))]))

    def test_synced_update_after_reload_matches_local(self, tmp_path):
        system = topology_system(4, topology="star", n_tuples=5, seed=8)
        first = NetworkSession(system, data_dir=tmp_path / "n")
        first.answer("P0", self.QUERY)
        first.close()

        updated = self._updated(topology_system(4, topology="star",
                                                n_tuples=5, seed=8))
        second = NetworkSession(system, data_dir=tmp_path / "n")
        try:
            second.use_system(updated)
            result = second.answer("P0", self.QUERY)
            local = PeerQuerySession(updated).answer("P0", self.QUERY)
            assert result.answers == local.answers
            assert result.solution_count == local.solution_count
        finally:
            second.close()

    def test_post_restart_sync_ships_deltas(self, tmp_path):
        system = topology_system(5, topology="star", n_tuples=20,
                                 seed=8)
        first = NetworkSession(system, data_dir=tmp_path / "n")
        cold = first.answer("P0", self.QUERY)
        first.close()

        updated = self._updated(system)
        second = NetworkSession(system, data_dir=tmp_path / "n")
        try:
            second.use_system(updated)
            mark = second.exchange_log.mark()
            warm = second.answer("P0", self.QUERY)
            assert warm.ok
            events = second.exchange_log.events_since(mark)
            # the persisted fetch cache turned every relation fetch
            # into a delta reply: only the single changed row moved
            fetches = [e for e in events
                       if not e.relation.startswith("@")]
            assert fetches and all("delta" in e.purpose
                                   for e in fetches)
            assert sum(e.tuples_transferred for e in fetches) == 1
            assert warm.exchange.bytes_estimate < \
                cold.exchange.bytes_estimate / 2
        finally:
            second.close()

    def test_in_session_sync_ships_deltas(self, tmp_path):
        system = topology_system(5, topology="star", n_tuples=20,
                                 seed=8)
        session = NetworkSession(system, data_dir=tmp_path / "n")
        try:
            cold = session.answer("P0", self.QUERY)
            session.use_system(self._updated(system))
            warm = session.answer("P0", self.QUERY)
            assert warm.ok
            assert warm.exchange.bytes_estimate < \
                cold.exchange.bytes_estimate / 2
        finally:
            session.close()

    def test_delta_sync_needs_no_durability(self, tmp_path):
        # delta replies are a store feature, not a disk feature: the
        # in-memory backend serves them too
        system = topology_system(5, topology="star", n_tuples=20,
                                 seed=8)
        session = NetworkSession(system)
        try:
            cold = session.answer("P0", self.QUERY)
            session.use_system(self._updated(system))
            warm = session.answer("P0", self.QUERY)
            assert warm.ok
            assert warm.exchange.bytes_estimate < \
                cold.exchange.bytes_estimate / 2
        finally:
            session.close()


class TestFetchProtocol:
    def test_known_version_gets_a_delta_reply(self):
        system = example1_system()
        network = NetworkSession(system).network
        node = network.node("P2")
        full = node.handle(FetchRelation(sender="P1", target="P2",
                                         relation="R2"))
        assert isinstance(full, Answer) and not full.delta
        assert full.version == node.store.version()

        node.update_instance(
            node.instance.with_facts([Fact("R2", ("z", "z"))]),
            "new-system-version")
        reply = node.handle(FetchRelation(sender="P1", target="P2",
                                          relation="R2",
                                          known_version=full.version))
        assert isinstance(reply, Answer) and reply.delta
        assert reply.payload == {"insert": (("z", "z"),), "delete": ()}
        assert reply.version == node.store.version()

    def test_unknown_version_falls_back_to_full(self):
        system = example1_system()
        node = NetworkSession(system).network.node("P2")
        reply = node.handle(FetchRelation(sender="P1", target="P2",
                                          relation="R2",
                                          known_version="never-seen"))
        assert isinstance(reply, Answer) and not reply.delta
        assert set(reply.payload) == {("c", "d"), ("a", "e")}

    def test_delta_reply_without_base_is_a_protocol_error(self):
        system = example1_system()
        node = NetworkSession(system).network.node("P1")
        answer = Answer(sender="P2", target="P1", in_reply_to=1,
                        payload={"insert": (), "delete": ()},
                        version="v", delta=True)
        request = FetchRelation(sender="P1", target="P2", relation="R2",
                                known_version="v0")
        with pytest.raises(ProtocolError):
            node._integrate_fetch(request, None, answer)


class TestDataDirLayout:
    def test_describe_after_a_session(self, tmp_path):
        system = example1_system()
        session = NetworkSession(system, data_dir=tmp_path / "n")
        session.answer("P1", "q(X, Y) := R1(X, Y)")
        session.close()
        described = describe_data_dir(tmp_path / "n")
        assert sorted(described) == ["P1", "P2", "P3"]
        assert described["P1"]["cached_answers"] >= 1
        assert described["P1"]["relations"] == {"R1": 2}
        assert described["P2"]["version"] == \
            session.network.node("P2").store.version()


class TestDivergedDiskState:
    """A restarted node may hold *different* content than the system it
    is constructed from (disk wins).  Its answer cache must never be
    stamped with the definition's version then — that aliased distinct
    data and served stale answers (regression)."""

    QUERY = "q(X, Y) := R0(X, Y)"

    def test_stale_definition_does_not_poison_the_cache(self, tmp_path):
        original = topology_system(4, topology="star", n_tuples=5,
                                   seed=13)
        updated = original.with_global_instance(
            original.global_instance().with_facts(
                [Fact("R0", ("zz", "zz"))]))

        first = NetworkSession(original, data_dir=tmp_path / "n")
        first.answer("P0", self.QUERY)
        first.use_system(updated)   # disk now holds the updated data
        first.answer("P0", self.QUERY)
        first.close()

        # reopen from the STALE definition: disk wins, so answers must
        # reflect the updated content — and must not collide with any
        # cache entry keyed by the stale definition's version
        second = NetworkSession(original, data_dir=tmp_path / "n")
        try:
            result = second.answer("P0", self.QUERY)
            expected = PeerQuerySession(updated).answer("P0", self.QUERY)
            assert result.answers == expected.answers
            assert ("zz", "zz") in result.answers
        finally:
            second.close()

        # reopening from the MATCHING definition serves the cache
        third = NetworkSession(updated, data_dir=tmp_path / "n")
        try:
            warm = third.answer("P0", self.QUERY)
            assert warm.from_cache and warm.exchange.requests == 0
            assert warm.answers == expected.answers
        finally:
            third.close()

    def test_diverged_stamp_is_restart_stable(self, tmp_path):
        original = topology_system(3, topology="chain", n_tuples=4,
                                   seed=13)
        updated = original.with_global_instance(
            original.global_instance().with_facts(
                [Fact("R1", ("q", "q"))]))
        session = NetworkSession(original, data_dir=tmp_path / "n")
        session.use_system(updated)
        session.close()

        one = NetworkSession(original, data_dir=tmp_path / "n")
        two = NetworkSession(original, data_dir=tmp_path / "n")
        try:
            # same disk content + same definition => same derived stamp
            assert one.network.node("P0").version() == \
                two.network.node("P0").version()
            assert one.network.node("P0").version() != \
                original.version()
        finally:
            one.close()
            two.close()


class TestAnswerCacheConfiguration:
    QUERY = "q(X, Y) := R1(X, Y)"

    def test_different_config_does_not_revive_persisted_answers(
            self, tmp_path):
        # include_local_ics / evaluator change what an answer key means;
        # a node configured differently must recompute, not revive
        system = example1_system()
        first = NetworkSession(system, data_dir=tmp_path / "n")
        first.answer("P1", self.QUERY)
        first.close()

        other = NetworkSession(system, data_dir=tmp_path / "n",
                               include_local_ics=False)
        try:
            result = other.answer("P1", self.QUERY)
            assert not result.from_cache  # recomputed under the new config
            control = PeerQuerySession(system, include_local_ics=False)
            assert result.answers == \
                control.answer("P1", self.QUERY).answers
        finally:
            other.close()

        # the matching configuration still gets the warm path
        same = NetworkSession(system, data_dir=tmp_path / "n")
        try:
            assert same.answer("P1", self.QUERY).from_cache
        finally:
            same.close()
