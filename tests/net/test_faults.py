"""Fault scenarios: typed failures, no hangs, no tracebacks.

Satellite coverage for the ISSUE's fault requirements: a peer going
down during (transitive) answering surfaces a clean typed error in the
:class:`~repro.core.results.QueryResult` — never a hang or a traceback —
and hop budgets terminate hop-by-hop gathers on cyclic accessibility
graphs.
"""

import time

import pytest

from repro.core import PeerQuerySession, PeerSystem, QueryError
from repro.net import (
    HopBudgetExceeded,
    NetworkError,
    NetworkSession,
    PeerUnreachableError,
    ThreadedTransport,
)
from repro.relational.constraints import InclusionDependency
from repro.workloads import topology_system

QUERY = "q(X, Y) := R0(X, Y)"


def cyclic_system(length=3):
    """P0 -> P1 -> ... -> P0: a cyclic accessibility graph."""
    builder = PeerSystem.builder()
    for index in range(length):
        builder.peer(f"P{index}", {f"R{index}": 2},
                     instance={f"R{index}": [(f"a{index}", f"b{index}")]})
    for index in range(length):
        succ = (index + 1) % length
        builder.exchange(
            f"P{index}", f"P{succ}",
            InclusionDependency(f"R{succ}", f"R{index}",
                                child_arity=2, parent_arity=2,
                                name=f"cycle_{index}"))
        builder.trust(f"P{index}", "less", f"P{succ}")
    return builder.build()


class TestPeerDown:
    def test_down_peer_surfaces_typed_error_without_hanging(self):
        system = topology_system(4, topology="chain", n_tuples=3,
                                 seed=1)
        transport = ThreadedTransport(timeout=1.0)
        with NetworkSession(system, transport=transport,
                            retries=1) as session:
            transport.set_down("P2")
            start = time.perf_counter()
            result = session.answer("P0", QUERY)
            elapsed = time.perf_counter() - start
            assert elapsed < 2.0  # no hang: down is detected, not waited
            assert result.failed and not result.ok
            assert isinstance(result.error, QueryError)
            assert result.error.code == "peer-unreachable"
            assert result.answers == frozenset()
            assert result.solution_count is None

    def test_recovery_after_the_peer_comes_back(self):
        system = topology_system(4, topology="chain", n_tuples=3,
                                 seed=1)
        transport = ThreadedTransport(timeout=1.0)
        with NetworkSession(system, transport=transport,
                            retries=1) as session:
            transport.set_down("P2")
            assert session.answer("P0", QUERY).failed
            transport.set_up("P2")
            result = session.answer("P0", QUERY)
            assert result.ok
            assert result.answers == \
                PeerQuerySession(system).answer("P0", QUERY).answers

    def test_batch_degrades_per_result(self):
        system = topology_system(4, topology="star", n_tuples=3, seed=6)
        transport = ThreadedTransport(timeout=1.0)
        with NetworkSession(system, transport=transport,
                            retries=0) as session:
            transport.set_down("P2")
            results = session.answer_many([
                ("P0", QUERY),                      # needs P2: fails
                ("P3", "q(X, Y) := R3(X, Y)"),      # leaf: unaffected
            ])
            assert results[0].failed
            assert results[0].error.code == "peer-unreachable"
            assert results[1].ok and results[1].answers

    def test_down_root_fails_without_gathering(self):
        # the root node itself is local, so querying it works; but a
        # down *neighbour* at depth 1 fails cleanly too
        system = topology_system(3, topology="star", n_tuples=3, seed=0)
        transport = ThreadedTransport(timeout=1.0)
        with NetworkSession(system, transport=transport,
                            retries=0) as session:
            transport.set_down("P1")
            result = session.answer("P0", QUERY)
            assert result.failed
            assert result.error.code == "peer-unreachable"

    def test_explain_raises_typed_network_error(self):
        system = topology_system(3, topology="star", n_tuples=3, seed=0)
        transport = ThreadedTransport(timeout=1.0)
        with NetworkSession(system, transport=transport,
                            retries=0) as session:
            transport.set_down("P1")
            with pytest.raises(NetworkError):
                session.explain("P0", QUERY)


class TestHopBudgets:
    def test_cycle_terminates_and_matches_local_answers(self):
        system = cyclic_system(3)
        local = PeerQuerySession(system)
        with NetworkSession(system) as session:  # budget = peer count
            for method in ("auto", "asp"):
                result = session.answer("P0", QUERY, method=method)
                assert result.ok
                assert result.answers == \
                    local.answer("P0", QUERY, method=method).answers

    def test_insufficient_budget_is_a_typed_failure(self):
        system = cyclic_system(3)
        with NetworkSession(system, hop_budget=1) as session:
            result = session.answer("P0", QUERY)
            assert result.failed
            assert result.error.code == "hop-budget-exhausted"
            assert result.answers == frozenset()

    def test_budget_exactly_covering_the_diameter_succeeds(self):
        system = topology_system(5, topology="chain", n_tuples=3,
                                 seed=4)
        with NetworkSession(system, hop_budget=4) as session:
            assert session.answer("P0", QUERY).ok
        with NetworkSession(system, hop_budget=3) as session:
            result = session.answer("P0", QUERY)
            assert result.failed
            assert result.error.code == "hop-budget-exhausted"

    def test_hop_budget_error_names_the_starved_peer(self):
        system = topology_system(4, topology="chain", n_tuples=3,
                                 seed=4)
        with NetworkSession(system, hop_budget=1) as session:
            result = session.answer("P0", QUERY)
            assert result.failed
            assert result.error.peer == "P1"


class TestTransportLossBeyondTheBudget:
    def test_heavy_drops_fail_typed_not_raised(self):
        from repro.net import FaultPlan, LoopbackTransport
        system = topology_system(4, topology="star", n_tuples=3, seed=7)
        transport = LoopbackTransport(FaultPlan(drop_rate=0.95, seed=1))
        with NetworkSession(system, transport=transport,
                            retries=0) as session:
            result = session.answer("P0", QUERY)
            assert result.failed
            assert result.error.code == "peer-unreachable"

    def test_unreachable_error_carries_the_peer(self):
        system = topology_system(3, topology="star", n_tuples=3, seed=0)
        transport = ThreadedTransport(timeout=0.5)
        with NetworkSession(system, transport=transport,
                            retries=0) as session:
            transport.set_down("P2")
            result = session.answer("P0", QUERY)
            assert result.failed
            assert result.error.peer in {"P0", "P2"}
            assert "P2" in result.error.message
