"""The end-to-end request deadline (``timeout=``) on the network.

A slow link used to only burn retries: each message send could wait a
full transport timeout, and nothing bounded the *operation*.  With
``timeout=`` the whole answer has one budget; expiry surfaces as a
typed ``deadline-exceeded`` :class:`~repro.core.results.QueryError` on
the result — never a hang, never a traceback.
"""

import time

import pytest

from repro.net import (
    DeadlineExceeded,
    NetworkError,
    NetworkSession,
    PeerNetwork,
    ThreadedTransport,
)
from repro.workloads import example1_system, topology_system

QUERY = "q(X, Y) := R0(X, Y)"


def test_tight_budget_expires_typed():
    system = topology_system(5, topology="star", n_tuples=4, seed=2)
    session = NetworkSession(system,
                             transport=ThreadedTransport(latency=0.05),
                             timeout=0.02)
    try:
        start = time.perf_counter()
        result = session.answer("P0", QUERY)
        wall = time.perf_counter() - start
        assert result.failed
        assert result.error.code == "deadline-exceeded"
        assert wall < 30.0  # bounded: budget + one transport wait
    finally:
        session.close()


def test_generous_budget_answers_normally():
    system = topology_system(4, topology="star", n_tuples=4, seed=2)
    session = NetworkSession(system,
                             transport=ThreadedTransport(latency=0.001),
                             timeout=60.0)
    try:
        result = session.answer("P0", QUERY)
        assert result.ok, result.error
    finally:
        session.close()


def test_deadline_does_not_outlive_its_operation():
    """After one query expires, the next (with a warm-enough budget)
    starts a fresh budget instead of inheriting the spent one."""
    system = topology_system(4, topology="star", n_tuples=4, seed=7)
    transport = ThreadedTransport(link_latency={("P0", "P1"): 0.2})
    session = NetworkSession(system, transport=transport, timeout=0.05)
    try:
        first = session.answer("P0", QUERY)
        assert first.failed
        assert first.error.code == "deadline-exceeded"
        # the view gather never completed, so the retry recomputes; the
        # budget is per-operation, so it gets its full 50ms again (and
        # fails again on the same slow link — but from a fresh budget,
        # which the elapsed time shows)
        second = session.answer("P0", QUERY)
        assert second.failed
        assert second.error.code == "deadline-exceeded"
    finally:
        session.close()


def test_invalid_timeout_rejected():
    system = example1_system()
    with pytest.raises(NetworkError, match="timeout must be > 0"):
        PeerNetwork.from_system(system, timeout=0)


def test_timeout_with_existing_network_rejected():
    system = example1_system()
    network = PeerNetwork.from_system(system)
    try:
        with pytest.raises(NetworkError, match="when the network is "
                                               "built"):
            NetworkSession(network, timeout=5.0)
    finally:
        network.close()


def test_check_deadline_raises_only_inside_scope():
    system = example1_system()
    network = PeerNetwork.from_system(system, timeout=0.001)
    try:
        network.check_deadline()  # no active operation: no-op
        with network.operation_deadline():
            time.sleep(0.005)
            with pytest.raises(DeadlineExceeded):
                network.check_deadline()
        network.check_deadline()  # scope exited: no-op again
    finally:
        network.close()


def test_cli_timeout_flag(tmp_path, capsys):
    import json
    from repro.__main__ import main
    from repro.core.io import system_to_dict
    path = tmp_path / "system.json"
    path.write_text(json.dumps(system_to_dict(example1_system())))
    # generous budget: behaves exactly like no budget
    status = main(["network", str(path), "P1", "q(X, Y) := R1(X, Y)",
                   "--timeout", "60"])
    assert status == 0
    out = capsys.readouterr().out
    assert "peer consistent answers" in out
