"""The differential harness: network answers ≡ local session answers.

The correctness contract of the peer network runtime is that running a
query through message-passing nodes (hop-by-hop gather, typed protocol,
concurrent fan-out) changes the *execution*, never the *answers*: the
:class:`~repro.net.service.NetworkSession` must be tuple-for-tuple equal
to the :class:`~repro.core.session.PeerQuerySession` realising the
Definition-3/5 global semantics — same answers, same solution counts,
same resolved method — on every paper workload and across seeded
synthetic families, including under injected latency and under message
drops bounded below the retry budget.
"""

import itertools

import pytest

from repro.core import PeerQuerySession
from repro.net import (
    FaultPlan,
    LoopbackTransport,
    NetworkSession,
    ThreadedTransport,
)
from repro.workloads import (
    conflict_chain_system,
    example1_system,
    example4_system,
    import_star_system,
    peer_chain_system,
    referential_system,
    section31_system,
    topology_system,
)

#: 3 topologies x 14 seeds = 42 seeded synthetic systems (>= 40)
SEEDS = range(14)
TOPOLOGIES = ("chain", "star", "random")
SYNTHETIC_CASES = list(itertools.product(TOPOLOGIES, SEEDS))


def assert_equivalent(system, peer, queries, *, methods=("auto", "asp"),
                      semantics=("certain",), transport=None, retries=2):
    local = PeerQuerySession(system)
    network = NetworkSession(system, transport=transport,
                             retries=retries)
    try:
        for query, method, kind in itertools.product(
                queries, methods, semantics):
            expected = local.answer(peer, query, method=method,
                                    semantics=kind)
            actual = network.answer(peer, query, method=method,
                                    semantics=kind)
            assert actual.ok, (query, method, kind, actual.error)
            assert actual.answers == expected.answers, \
                (query, method, kind)
            assert actual.solution_count == expected.solution_count, \
                (query, method, kind)
            assert actual.method_used == expected.method_used, \
                (query, method, kind)
    finally:
        network.close()


class TestPaperWorkloads:
    def test_example1(self):
        assert_equivalent(
            example1_system(), "P1",
            ["q(X, Y) := R1(X, Y)", "q(X) := exists Y R1(X, Y)"],
            methods=("auto", "asp", "model", "rewrite"),
        )

    def test_example1_possible_semantics(self):
        assert_equivalent(
            example1_system(), "P1", ["q(X, Y) := R1(X, Y)"],
            methods=("asp", "model"), semantics=("certain", "possible"),
        )

    def test_section31(self):
        assert_equivalent(
            section31_system(), "P",
            ["q(X, Y) := R2(X, Y)", "q(X, Y) := R1(X, Y)"],
            methods=("auto", "asp", "model", "lav"),
        )

    def test_example4_direct_and_transitive(self):
        assert_equivalent(
            example4_system(), "P", ["q(X, Y) := R2(X, Y)"],
            methods=("auto", "asp", "transitive"),
        )

    def test_conflict_chain(self):
        assert_equivalent(
            conflict_chain_system(3, n_clean=2), "P1",
            ["q(X, Y) := R1(X, Y)"],
            methods=("auto", "asp", "model"),
            semantics=("certain", "possible"),
        )

    def test_import_star(self):
        assert_equivalent(
            import_star_system(12, n_neighbours=3, conflicts=2, seed=5),
            "P0", ["q(X, Y) := R0(X, Y)", "q(X) := exists Y R0(X, Y)"],
        )

    def test_referential(self):
        assert_equivalent(
            referential_system(2, n_witnesses=2, n_satisfied=1), "P",
            ["q(X, Y) := R2(X, Y)"],
            methods=("auto", "asp"),
        )

    def test_peer_chain_transitive(self):
        assert_equivalent(
            peer_chain_system(3, n_tuples=2), "P0",
            ["q(X, Y) := T0(X, Y)"],
            methods=("auto", "asp", "transitive"),
        )


class TestSeededSynthetic:
    @pytest.mark.parametrize("topology,seed", SYNTHETIC_CASES)
    def test_seeded_system(self, topology, seed):
        system = topology_system(4, topology=topology, n_tuples=4,
                                 conflicts=(seed % 2), extra_edges=2,
                                 seed=seed)
        assert_equivalent(
            system, "P0",
            ["q(X, Y) := R0(X, Y)", "q(X) := exists Y R0(X, Y)"],
        )


class TestUnderFaultInjection:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_with_injected_latency(self, topology):
        system = topology_system(4, topology=topology, n_tuples=4,
                                 seed=21)
        assert_equivalent(
            system, "P0", ["q(X, Y) := R0(X, Y)"],
            transport=ThreadedTransport(latency=0.002),
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_with_drops_below_the_retry_budget(self, seed):
        # seeded drops lose ~15% of deliveries; 6 retries make the
        # chance of six consecutive losses negligible, and the seed
        # makes the run deterministic either way
        system = topology_system(5, topology="star", n_tuples=4,
                                 conflicts=1, seed=seed)
        assert_equivalent(
            system, "P0",
            ["q(X, Y) := R0(X, Y)", "q(X) := exists Y R0(X, Y)"],
            transport=LoopbackTransport(
                FaultPlan(drop_rate=0.15, seed=seed)),
            retries=6,
        )

    def test_latency_and_drops_together(self):
        system = topology_system(4, topology="random", n_tuples=4,
                                 extra_edges=1, seed=33)
        assert_equivalent(
            system, "P0", ["q(X, Y) := R0(X, Y)"],
            transport=ThreadedTransport(latency=0.001, drop_rate=0.1,
                                        seed=9),
            retries=6,
        )


class TestNonRootPeers:
    """The guarantee is per queried root, not only for P0."""

    def test_every_peer_of_example1(self):
        system = example1_system()
        local = PeerQuerySession(system)
        network = NetworkSession(system)
        for peer, relation in (("P1", "R1"), ("P2", "R2"), ("P3", "R3")):
            query = f"q(X, Y) := {relation}(X, Y)"
            assert network.answer(peer, query).answers == \
                local.answer(peer, query).answers

    def test_mid_chain_peer(self):
        system = topology_system(5, topology="chain", n_tuples=3,
                                 seed=2)
        local = PeerQuerySession(system)
        network = NetworkSession(system)
        result = network.answer("P2", "q(X, Y) := R2(X, Y)")
        assert result.answers == \
            local.answer("P2", "q(X, Y) := R2(X, Y)").answers
