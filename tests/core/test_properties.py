"""Property-based tests (hypothesis) for the P2P solution semantics."""

from hypothesis import given, settings, strategies as st

from repro.core import solutions_for_peer
from repro.core.asp_gav import asp_solutions_for_peer
from repro.workloads import example1_system, section31_system

keys = st.sampled_from(["a", "s", "k"])
values = st.sampled_from(["b", "e", "f", "u"])
pair_rows = st.lists(st.tuples(keys, values),
                     max_size=3).map(lambda rs: list(set(rs)))


@st.composite
def example1_instances(draw):
    return (draw(pair_rows), draw(pair_rows), draw(pair_rows))


@settings(max_examples=40, deadline=None)
@given(example1_instances())
def test_solutions_satisfy_trusted_decs(data):
    r1, r2, r3 = data
    system = example1_system(r1=r1, r2=r2, r3=r3)
    for solution in solutions_for_peer(system, "P1"):
        for exchange in system.trusted_decs_of("P1"):
            assert exchange.constraint.holds_in(solution)


@settings(max_examples=40, deadline=None)
@given(example1_instances())
def test_solutions_fix_less_trusted_and_foreign_relations(data):
    r1, r2, r3 = data
    system = example1_system(r1=r1, r2=r2, r3=r3)
    original = system.global_instance()
    for solution in solutions_for_peer(system, "P1"):
        # condition (b)+(c2): the less-trusted P2 never changes
        assert solution.tuples("R2") == original.tuples("R2")


@settings(max_examples=40, deadline=None)
@given(example1_instances())
def test_solution_deltas_touch_extended_schema_only(data):
    r1, r2, r3 = data
    system = example1_system(r1=r1, r2=r2, r3=r3)
    original = system.global_instance()
    allowed = set(system.extended_schema_names("P1"))
    for solution in solutions_for_peer(system, "P1"):
        for fact in solution.delta(original):
            assert fact.relation in allowed


@settings(max_examples=30, deadline=None)
@given(example1_instances())
def test_asp_route_equals_reference(data):
    r1, r2, r3 = data
    system = example1_system(r1=r1, r2=r2, r3=r3)
    assert asp_solutions_for_peer(system, "P1") == \
        solutions_for_peer(system, "P1")


@settings(max_examples=30, deadline=None)
@given(pair_rows, pair_rows, pair_rows)
def test_section31_asp_equals_reference(r1, s1, s2):
    system = section31_system(r1=r1, s1=s1, r2=[], s2=s2)
    assert asp_solutions_for_peer(system, "P") == \
        solutions_for_peer(system, "P")


@settings(max_examples=30, deadline=None)
@given(example1_instances())
def test_stage2_deltas_minimal_among_solutions(data):
    """No solution's stage-2 change set strictly contains another's
    (within a shared stage-1 repair, Δ-minimality; across them we still
    check pairwise incomparability of total Δs on this DEC class)."""
    r1, r2, r3 = data
    system = example1_system(r1=r1, r2=r2, r3=r3)
    original = system.global_instance()
    deltas = [s.delta(original) for s in solutions_for_peer(system, "P1")]
    for i, first in enumerate(deltas):
        for second in deltas[i + 1:]:
            assert not (first < second or second < first)


@settings(max_examples=30, deadline=None)
@given(pair_rows)
def test_pca_monotone_in_solutions(r1):
    """PCAs are the intersection over solutions: any one solution's
    answer set contains them."""
    from repro.core import peer_consistent_answers
    from repro.relational import parse_query
    system = example1_system(r1=r1)
    query = parse_query("q(X, Y) := R1(X, Y)")
    result = peer_consistent_answers(system, "P1", query)
    for solution in solutions_for_peer(system, "P1"):
        restricted = system.restrict_to_peer(solution, "P1")
        assert result.answers <= query.answers(restricted)
