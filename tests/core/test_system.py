"""Unit tests for the P2P system model (Definitions 2-3)."""

import pytest

from repro.core import (
    DataExchange,
    Peer,
    PeerSystem,
    QueryScopeError,
    SystemError_,
    TrustRelation,
)
from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    Fact,
    FunctionalDependency,
    InclusionDependency,
    parse_query,
)
from repro.workloads import example1_system


def two_peer_parts():
    p = Peer("P", DatabaseSchema.of({"A": 2}))
    q = Peer("Q", DatabaseSchema.of({"B": 2}))
    instances = {
        "P": DatabaseInstance(p.schema, {"A": [("a", "b")]}),
        "Q": DatabaseInstance(q.schema, {"B": [("c", "d")]}),
    }
    dec = DataExchange("P", "Q", InclusionDependency(
        "B", "A", child_arity=2, parent_arity=2, name="imp"))
    return p, q, instances, dec


class TestPeer:
    def test_local_ic_scope_validated(self):
        fd = FunctionalDependency("Zorro", [0], [1], arity=2)
        with pytest.raises(SystemError_):
            Peer("P", DatabaseSchema.of({"A": 2}), local_ics=[fd])

    def test_empty_name_rejected(self):
        with pytest.raises(SystemError_):
            Peer("", DatabaseSchema.of({"A": 2}))


class TestSystemConstruction:
    def test_basic(self):
        p, q, instances, dec = two_peer_parts()
        system = PeerSystem([p, q], instances, [dec],
                            TrustRelation([("P", "less", "Q")]))
        assert set(system.peers) == {"P", "Q"}

    def test_duplicate_peer_rejected(self):
        p, q, instances, dec = two_peer_parts()
        with pytest.raises(SystemError_):
            PeerSystem([p, p], instances)

    def test_missing_instance_defaults_empty(self):
        p, q, _instances, _dec = two_peer_parts()
        system = PeerSystem([p, q], {})
        assert system.instances["P"].is_empty()

    def test_instance_schema_mismatch(self):
        p, q, instances, _dec = two_peer_parts()
        instances["P"] = DatabaseInstance(q.schema)
        with pytest.raises(SystemError_):
            PeerSystem([p, q], instances)

    def test_overlapping_schemas_rejected(self):
        p = Peer("P", DatabaseSchema.of({"A": 2}))
        q = Peer("Q", DatabaseSchema.of({"A": 2}))
        with pytest.raises(SystemError_):
            PeerSystem([p, q], {})

    def test_dec_unknown_peer(self):
        p, q, instances, _dec = two_peer_parts()
        stray = DataExchange("P", "Z", InclusionDependency(
            "B", "A", child_arity=2, parent_arity=2))
        with pytest.raises(SystemError_):
            PeerSystem([p, q], instances, [stray])

    def test_dec_foreign_relation(self):
        p, q, instances, _dec = two_peer_parts()
        r = Peer("R", DatabaseSchema.of({"C": 2}))
        bad = DataExchange("P", "Q", InclusionDependency(
            "C", "A", child_arity=2, parent_arity=2))
        with pytest.raises(SystemError_):
            PeerSystem([p, q, r], instances, [bad])

    def test_dec_same_peer_rejected(self):
        with pytest.raises(SystemError_):
            DataExchange("P", "P", InclusionDependency(
                "B", "A", child_arity=2, parent_arity=2))

    def test_trust_unknown_peer(self):
        p, q, instances, dec = two_peer_parts()
        with pytest.raises(SystemError_):
            PeerSystem([p, q], instances, [dec],
                       TrustRelation([("P", "less", "Z")]))

    def test_local_ic_enforced_on_construction(self):
        fd = FunctionalDependency("A", [0], [1], arity=2)
        p = Peer("P", DatabaseSchema.of({"A": 2}), local_ics=[fd])
        bad = {"P": DatabaseInstance(p.schema,
                                     {"A": [("k", "1"), ("k", "2")]})}
        with pytest.raises(SystemError_):
            PeerSystem([p], bad)
        # the escape hatch of footnote 1
        PeerSystem([p], bad, enforce_local_ics=False)


class TestDerivedNotions:
    def test_global_instance(self):
        system = example1_system()
        global_instance = system.global_instance()
        assert global_instance.size() == 6
        assert Fact("R1", ("a", "b")) in global_instance
        assert Fact("R3", ("s", "u")) in global_instance

    def test_owner_of(self):
        system = example1_system()
        assert system.owner_of("R1") == "P1"
        assert system.owner_of("R3") == "P3"
        with pytest.raises(SystemError_):
            system.owner_of("R9")

    def test_decs_of(self):
        system = example1_system()
        assert len(system.decs_of("P1")) == 2
        assert system.decs_of("P2") == ()

    def test_trusted_decs_filtering(self):
        from repro.core import TrustLevel
        system = example1_system()
        less = system.trusted_decs_of("P1", TrustLevel.LESS)
        same = system.trusted_decs_of("P1", TrustLevel.SAME)
        assert [d.other for d in less] == ["P2"]
        assert [d.other for d in same] == ["P3"]

    def test_untrusted_decs_ignored(self):
        p, q, instances, dec = two_peer_parts()
        system = PeerSystem([p, q], instances, [dec])  # no trust edge
        assert system.trusted_decs_of("P") == ()

    def test_extended_schema(self):
        system = example1_system()
        assert system.extended_schema_names("P1") == ("R1", "R2", "R3")
        assert system.extended_schema_names("P2") == ("R2",)

    def test_neighbours(self):
        system = example1_system()
        assert system.neighbours("P1") == ("P2", "P3")

    def test_restrict_to_peer(self):
        system = example1_system()
        restricted = system.restrict_to_peer(system.global_instance(),
                                             "P1")
        assert set(restricted.schema.names) == {"R1"}
        assert restricted.size() == 2


class TestQueryScope:
    def test_own_relations_allowed(self):
        system = example1_system()
        system.validate_query_scope("P1", parse_query("q(X,Y) := R1(X,Y)"))

    def test_foreign_relations_rejected(self):
        system = example1_system()
        with pytest.raises(QueryScopeError):
            system.validate_query_scope("P1",
                                        parse_query("q(X,Y) := R2(X,Y)"))


class TestExchange:
    def test_fetch_logs_cross_peer_requests(self):
        system = example1_system()
        tuples = system.fetch_relation("P1", "R2", purpose="test")
        assert tuples == frozenset({("c", "d"), ("a", "e")})
        events = system.exchange_log.events("P1")
        assert len(events) == 1
        assert events[0].provider == "P2"
        assert events[0].tuples_transferred == 2

    def test_local_reads_not_logged(self):
        system = example1_system()
        system.fetch_relation("P1", "R1")
        assert len(system.exchange_log) == 0


class TestWithGlobalInstance:
    def test_roundtrip(self):
        system = example1_system()
        clone = system.with_global_instance(system.global_instance())
        assert clone.global_instance() == system.global_instance()

    def test_split_by_ownership(self):
        system = example1_system()
        modified = system.global_instance().without_facts(
            [Fact("R3", ("a", "f"))])
        clone = system.with_global_instance(modified)
        assert clone.instances["P3"].tuples("R3") == frozenset(
            {("s", "u")})
        assert clone.instances["P1"] == system.instances["P1"]
