"""Direct unit tests for the constraint-to-rules translation layer
(repro.core.asp_common) — the rule shapes of Section 3.1, per family."""

import pytest

from repro.core.asp_common import (
    TranslationContext,
    dec_rules,
    decode_model,
    hard_constraint_rules,
    instance_facts,
    make_aux_names,
)
from repro.core.naming import NameMap
from repro.datalog.terms import Atom, Literal
from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    DenialConstraint,
    EqualityGeneratingConstraint,
    InclusionDependency,
    RelAtom,
    TupleGeneratingConstraint,
    Variable,
)

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
RELATIONS = ["R1", "R2", "S1", "S2"]


def make_context(changeable, foreign_primed=()):
    return TranslationContext(NameMap(RELATIONS), changeable,
                              foreign_primed)


def rule_texts(rules):
    return sorted(str(r) for r in rules)


class TestPredicateSelection:
    def test_body_pred_uses_source_for_local(self):
        context = make_context({"R1"})
        assert context.body_pred("R1") == "r1"
        assert context.body_pred("S1") == "s1"

    def test_body_pred_uses_primed_for_foreign(self):
        context = make_context({"R1"}, foreign_primed={"S1"})
        assert context.body_pred("S1") == "s1_p"

    def test_solution_pred(self):
        context = make_context({"R1"}, foreign_primed={"S1"})
        assert context.solution_pred("R1") == "r1_p"
        assert context.solution_pred("S1") == "s1_p"
        assert context.solution_pred("S2") == "s2"

    def test_changeable_foreign_overlap_rejected(self):
        from repro.core import SystemError_
        with pytest.raises(SystemError_):
            make_context({"R1"}, foreign_primed={"R1"})


class TestTgdTranslation:
    def dec3(self):
        return TupleGeneratingConstraint(
            antecedent=[RelAtom("R1", [X, Y]), RelAtom("S1", [Z, Y])],
            consequent=[RelAtom("R2", [X, W]), RelAtom("S2", [Z, W])],
            name="dec3")

    def test_paper_shape_less_trust(self):
        context = make_context({"R1", "R2"})
        rules = dec_rules(self.dec3(), context,
                          make_aux_names(context.name_map))
        texts = rule_texts(rules)
        assert len(texts) == 4  # aux1, aux2, rule (6), rule (9)
        assert any(t.startswith("aux1_") for t in texts)
        assert any(t.startswith("aux2_") for t in texts)
        assert any("choice((X, Z), (W))" in t for t in texts)
        deletion = [t for t in texts if t.startswith("-r1_p")]
        assert len(deletion) == 2  # rule (6) and the choice rule head

    def test_same_trust_uses_marker_and_domain(self):
        context = make_context({"R1", "R2", "S1", "S2"})
        rules = dec_rules(self.dec3(), context,
                          make_aux_names(context.name_map))
        texts = rule_texts(rules)
        assert context.domain_used
        assert any("ins_" in t and "dom(W)" in t for t in texts)
        # both consequent atoms get insertion rules from the marker
        assert any(t.startswith("r2_p") and ":- ins_" in t
                   for t in texts)
        assert any(t.startswith("s2_p") and ":- ins_" in t
                   for t in texts)
        # both antecedent atoms are deletable now
        assert any("-r1_p(X, Y) v -s1_p(Z, Y)" in t for t in texts)

    def test_full_inclusion_is_import_rule(self):
        ind = InclusionDependency("S1", "R1", child_arity=2,
                                  parent_arity=2, name="imp")
        context = make_context({"R1"})
        rules = dec_rules(ind, context, make_aux_names(context.name_map))
        texts = rule_texts(rules)
        # no deletion heads (antecedent S1 is fixed), no choice: a plain
        # guarded import plus the aux1 satisfaction check
        assert len(texts) == 2
        assert any(t.startswith("r1_p(") and "s1(" in t for t in texts)
        assert not any("choice" in t for t in texts)

    def test_unfixable_violation_becomes_constraint(self):
        # nothing changeable: violations are denials
        ind = InclusionDependency("S1", "R1", child_arity=2,
                                  parent_arity=2)
        context = make_context(set())
        rules = dec_rules(ind, context, make_aux_names(context.name_map))
        assert any(r.is_constraint() for r in rules)


class TestEgdTranslation:
    def test_single_deletable(self):
        egd = EqualityGeneratingConstraint(
            antecedent=[RelAtom("R1", [X, Y]), RelAtom("S1", [X, Z])],
            equalities=[(Y, Z)], name="egd")
        context = make_context({"R1"})
        rules = dec_rules(egd, context, make_aux_names(context.name_map))
        assert rule_texts(rules) == [
            "-r1_p(X, Y) :- r1(X, Y), s1(X, Z), Y != Z."]

    def test_both_deletable_disjunction(self):
        egd = EqualityGeneratingConstraint(
            antecedent=[RelAtom("R1", [X, Y]), RelAtom("S1", [X, Z])],
            equalities=[(Y, Z)], name="egd")
        context = make_context({"R1", "S1"})
        rules = dec_rules(egd, context, make_aux_names(context.name_map))
        assert rule_texts(rules) == [
            "-r1_p(X, Y) v -s1_p(X, Z) :- r1(X, Y), s1(X, Z), Y != Z."]

    def test_multiple_equalities_one_rule_each(self):
        egd = EqualityGeneratingConstraint(
            antecedent=[RelAtom("R1", [X, Y]), RelAtom("S1", [X, Z])],
            equalities=[(Y, Z), (X, Z)], name="egd")
        context = make_context({"R1"})
        rules = dec_rules(egd, context, make_aux_names(context.name_map))
        assert len(rules) == 2

    def test_nothing_deletable_is_denial(self):
        egd = EqualityGeneratingConstraint(
            antecedent=[RelAtom("R1", [X, Y]), RelAtom("S1", [X, Z])],
            equalities=[(Y, Z)], name="egd")
        context = make_context(set())
        rules = dec_rules(egd, context, make_aux_names(context.name_map))
        assert all(r.is_constraint() for r in rules)


class TestDenialTranslation:
    def test_denial_with_condition(self):
        from repro.relational import Cmp
        denial = DenialConstraint(
            antecedent=[RelAtom("R1", [X, Y])],
            conditions=[Cmp("=", X, "bad")], name="den")
        context = make_context({"R1"})
        rules = dec_rules(denial, context,
                          make_aux_names(context.name_map))
        assert rule_texts(rules) == [
            "-r1_p(X, Y) :- r1(X, Y), X = bad."]


class TestHardConstraints:
    def test_tgd_hard_constraint_shape(self):
        ind = InclusionDependency("S1", "R1", child_arity=2,
                                  parent_arity=2)
        context = make_context({"R1"})
        rules = hard_constraint_rules(ind, context,
                                      make_aux_names(context.name_map))
        texts = rule_texts(rules)
        assert any(t.startswith(":- s1(") and "not sat_" in t
                   for t in texts)
        assert any(t.startswith("sat_") and "r1_p" in t for t in texts)

    def test_egd_hard_constraint(self):
        egd = EqualityGeneratingConstraint(
            antecedent=[RelAtom("R1", [X, Y]), RelAtom("S1", [X, Z])],
            equalities=[(Y, Z)])
        context = make_context({"R1"})
        rules = hard_constraint_rules(egd, context,
                                      make_aux_names(context.name_map))
        assert rule_texts(rules) == [
            ":- r1_p(X, Y), s1(X, Z), Y != Z."]


class TestFactsAndDecode:
    def test_instance_facts_sorted_and_typed(self):
        schema = DatabaseSchema.of({"R1": 2})
        instance = DatabaseInstance(schema, {"R1": [("b", 2), ("a", 1)]})
        facts = instance_facts(instance, ["R1"], NameMap(["R1"]))
        assert [str(f) for f in facts] == ["r1(1, a).", "r1(2, b)."] or \
            [str(f) for f in facts] == ["r1(a, 1).", "r1(b, 2)."]

    def test_decode_replaces_changeable_only(self):
        schema = DatabaseSchema.of({"R1": 2, "S1": 2})
        base = DatabaseInstance(schema, {"R1": [("a", "b")],
                                         "S1": [("c", "d")]})
        context = TranslationContext(NameMap(["R1", "S1"]), {"R1"})
        model = [Literal(Atom("r1_p", ("x", "y"))),
                 Literal(Atom("s1_p", ("zz", "zz"))),  # not changeable
                 Literal(Atom("unrelated", ("q",)))]
        decoded = decode_model(model, base, context)
        assert decoded.tuples("R1") == frozenset({("x", "y")})
        assert decoded.tuples("S1") == frozenset({("c", "d")})

    def test_decode_ignores_negative_literals(self):
        schema = DatabaseSchema.of({"R1": 2})
        base = DatabaseInstance(schema, {"R1": [("a", "b")]})
        context = TranslationContext(NameMap(["R1"]), {"R1"})
        model = [Literal(Atom("r1_p", ("a", "b")), positive=False)]
        decoded = decode_model(model, base, context)
        assert decoded.tuples("R1") == frozenset()
