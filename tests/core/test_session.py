"""Unit tests for :class:`PeerQuerySession`: caching, invalidation,
batching, explain, and the rich :class:`QueryResult`."""

import pytest

from repro.core import (
    P2PError,
    PeerQuerySession,
    QueryRequest,
    QueryResult,
    UnknownMethodError,
)
from repro.core.explain import AnswerExplanation
from repro.relational import parse_query
from repro.workloads import example1_query, example1_system

EXPECTED = {("a", "b"), ("c", "d"), ("a", "e")}


class TestAnswer:
    def test_query_result_fields(self):
        session = PeerQuerySession(example1_system())
        result = session.answer("P1", example1_query(), method="asp")
        assert isinstance(result, QueryResult)
        assert result.peer == "P1"
        assert result.answers == EXPECTED
        assert result.semantics == "certain"
        assert result.method_requested == "asp"
        assert result.method_used == "asp"
        assert result.solution_count == 2
        assert not result.no_solutions
        assert result.elapsed >= 0.0
        assert result.exchange.requests == 2  # R2 from P2, R3 from P3
        assert result.exchange.tuples_transferred == 4

    def test_textual_queries_accepted(self):
        session = PeerQuerySession(example1_system())
        result = session.answer("P1", "q(X, Y) := R1(X, Y)",
                                method="asp")
        assert result.answers == EXPECTED

    def test_result_container_protocol(self):
        session = PeerQuerySession(example1_system())
        result = session.answer("P1", example1_query(), method="asp")
        assert list(result) == sorted(EXPECTED)
        assert ("a", "b") in result
        assert len(result) == 3

    def test_to_dict_round_trips_to_json(self):
        import json
        session = PeerQuerySession(example1_system())
        result = session.answer("P1", example1_query(), method="rewrite")
        data = json.loads(json.dumps(result.to_dict()))
        assert data["solution_count"] is None
        assert data["method_used"] == "rewrite"
        assert sorted(map(tuple, data["answers"])) == sorted(EXPECTED)

    def test_unknown_default_method_fails_fast(self):
        with pytest.raises(UnknownMethodError):
            PeerQuerySession(example1_system(), default_method="quantum")

    def test_unknown_peer_rejected(self):
        session = PeerQuerySession(example1_system())
        with pytest.raises(P2PError):
            session.answer("P9", example1_query())

    def test_bad_semantics_rejected(self):
        with pytest.raises(P2PError):
            QueryRequest("P1", "q(X, Y) := R1(X, Y)",
                         semantics="sideways")


class TestCaching:
    def test_solutions_cached_across_queries(self):
        session = PeerQuerySession(example1_system(),
                                   default_method="asp")
        first = session.answer("P1", example1_query())
        second = session.answer("P1", "q(X) := exists Y R1(X, Y)")
        assert not first.from_cache
        assert second.from_cache
        info = session.cache_info()
        assert info.hits == 1 and info.misses == 1 and info.entries == 1

    def test_methods_cached_independently(self):
        session = PeerQuerySession(example1_system())
        session.answer("P1", example1_query(), method="asp")
        result = session.answer("P1", example1_query(), method="model")
        assert not result.from_cache  # different method, own entry
        assert session.cache_info().entries == 2

    def test_invalidate_clears_entries(self):
        session = PeerQuerySession(example1_system(),
                                   default_method="asp")
        session.answer("P1", example1_query())
        session.invalidate()
        assert session.cache_info().entries == 0
        result = session.answer("P1", example1_query())
        assert not result.from_cache

    def test_cache_invalidated_by_functional_update(self):
        """with_global_instance yields a new version; cached solutions
        for the old data must not be served for the new."""
        system = example1_system()
        session = PeerQuerySession(system, default_method="asp")
        before = session.answer("P1", example1_query())
        assert before.answers == EXPECTED

        # drop P3's data: the conflicts disappear, so P1 keeps its own
        # tuples AND the imports — including (s, t), uncertain before
        from repro.relational.instance import Fact
        updated_global = system.global_instance().without_facts(
            [Fact("R3", ("a", "f")), Fact("R3", ("s", "u"))])
        updated = system.with_global_instance(updated_global)
        assert updated.version() != system.version()

        session.use_system(updated)
        after = session.answer("P1", example1_query())
        assert not after.from_cache
        assert after.answers == EXPECTED | {("s", "t")}

    def test_returned_solutions_safe_to_mutate(self):
        """Regression: the cache hands out copies — clearing the returned
        list must not corrupt later answers."""
        session = PeerQuerySession(example1_system(),
                                   default_method="asp")
        session.solutions("P1").clear()
        result = session.answer("P1", example1_query())
        assert result.answers == EXPECTED
        assert not result.no_solutions

    def test_use_system_prunes_stale_entries(self):
        system = example1_system()
        session = PeerQuerySession(system, default_method="asp")
        session.answer("P1", example1_query())
        assert session.cache_info().entries == 1
        from repro.relational.instance import Fact
        changed = system.with_global_instance(
            system.global_instance().with_facts([Fact("R1", ("z", "z"))]))
        session.use_system(changed)
        assert session.cache_info().entries == 0

    def test_use_system_keeps_entries_for_identical_content(self):
        # versions are content-derived: a no-op swap (same data, maybe a
        # freshly re-built or re-loaded system object) keeps the warm
        # cache instead of recomputing the solutions
        system = example1_system()
        session = PeerQuerySession(system, default_method="asp")
        first = session.answer("P1", example1_query())
        session.use_system(
            system.with_global_instance(system.global_instance()))
        assert session.cache_info().entries == 1
        again = session.answer("P1", example1_query())
        assert again.from_cache
        assert again.answers == first.answers


class TestAnswerMany:
    def test_batch_results_in_order(self):
        session = PeerQuerySession(example1_system(),
                                   default_method="asp")
        results = session.answer_many([
            QueryRequest("P1", "q(X, Y) := R1(X, Y)"),
            QueryRequest("P1", "q(X) := exists Y R1(X, Y)"),
            QueryRequest("P1", "q(X, Y) := R1(X, Y)",
                         semantics="possible"),
        ])
        assert [r.semantics for r in results] == \
            ["certain", "certain", "possible"]
        assert results[0].answers == EXPECTED
        assert results[1].answers == {("a",), ("c",)}
        assert ("s", "t") in results[2].answers

    def test_batch_accepts_bare_tuples(self):
        session = PeerQuerySession(example1_system(),
                                   default_method="asp")
        results = session.answer_many([
            ("P1", "q(X, Y) := R1(X, Y)"),
            ("P1", "q(X, Y) := R1(X, Y)", "model"),
        ])
        assert results[0].answers == results[1].answers == EXPECTED
        assert results[1].method_used == "model"

    def test_batch_shares_one_enumeration(self):
        session = PeerQuerySession(example1_system(),
                                   default_method="asp")
        results = session.answer_many(
            ("P1", "q(X) := exists Y R1(X, Y)") for _ in range(5))
        assert session.cache_info().misses == 1
        assert session.cache_info().hits == 4
        assert all(r.from_cache for r in results[1:])


class TestExplain:
    def test_solutions_with_non_enumerating_default(self):
        """Regression: a session whose default method is 'rewrite' (or
        'auto') must still serve solutions/explain via the general ASP
        fallback instead of crashing."""
        session = PeerQuerySession(example1_system(),
                                   default_method="rewrite")
        assert len(session.solutions("P1")) == 2
        explanation = session.explain("P1", example1_query(),
                                      candidate=("a", "b"))
        assert explanation.status == AnswerExplanation.CERTAIN

    def test_auto_and_asp_share_one_cache_entry(self):
        """Regression: auto's solutions are ASP solutions; they must not
        be enumerated twice under separate cache keys."""
        session = PeerQuerySession(example1_system())
        session.solutions("P1")                  # default "auto"
        session.answer("P1", example1_query(), method="asp")
        info = session.cache_info()
        assert info.entries == 1
        assert info.misses == 1 and info.hits == 1

    def test_explain_single_candidate(self):
        session = PeerQuerySession(example1_system())
        explanation = session.explain("P1", example1_query(),
                                      candidate=("a", "b"))
        assert explanation.status == AnswerExplanation.CERTAIN

    def test_explain_query_reuses_cache(self):
        session = PeerQuerySession(example1_system())
        session.answer("P1", example1_query(), method="auto")
        explanations = session.explain("P1", example1_query())
        statuses = {e.tuple: e.status for e in explanations}
        assert statuses[("a", "b")] == AnswerExplanation.CERTAIN
        assert statuses[("s", "t")] == AnswerExplanation.POSSIBLE
        # the session enumerated solutions at most once for explain
        assert session.cache_info().misses <= 1


class TestEngineShimCompatibility:
    def test_engine_emits_deprecation_warning(self):
        from repro.core import PeerConsistentEngine
        with pytest.warns(DeprecationWarning):
            PeerConsistentEngine(example1_system())

    def test_engine_rewrite_count_is_honest(self):
        from repro.core import PeerConsistentEngine
        with pytest.warns(DeprecationWarning):
            engine = PeerConsistentEngine(example1_system(),
                                          method="rewrite")
        result = engine.peer_consistent_answers("P1", example1_query())
        assert result.answers == EXPECTED
        assert result.solution_count is None  # no fake "1" anymore
        assert not result.no_solutions


class TestEvaluatorToggle:
    """The session's ``evaluator`` setting must reach every FO
    evaluation the mechanisms perform — including the final PCA
    intersection over solutions — and both settings must agree."""

    def test_unknown_evaluator_rejected(self):
        with pytest.raises(ValueError):
            PeerQuerySession(example1_system(), evaluator="vectorised")

    def test_evaluators_agree_across_methods(self):
        fast = PeerQuerySession(example1_system(), evaluator="planner")
        slow = PeerQuerySession(example1_system(), evaluator="naive")
        for method in ("auto", "asp", "model", "rewrite"):
            assert fast.answer("P1", example1_query(),
                               method=method).answers == \
                slow.answer("P1", example1_query(),
                            method=method).answers == EXPECTED

    def test_naive_session_never_runs_the_planner(self, monkeypatch):
        """Regression: with evaluator="naive" even the per-solution
        answer intersection must use the naive evaluator, otherwise the
        toggle cannot serve differential testing."""
        import repro.relational.planner as planner_module

        def explode(self, *args, **kwargs):
            raise AssertionError("planner invoked in a naive session")

        for name in ("answers", "holds", "bindings"):
            monkeypatch.setattr(planner_module.QueryPlanner, name,
                                explode)
        session = PeerQuerySession(example1_system(), evaluator="naive")
        result = session.answer("P1", example1_query(), method="model")
        assert result.answers == EXPECTED

    def test_evaluator_separates_cache_entries(self):
        fast = PeerQuerySession(example1_system(), evaluator="planner")
        fast.answer("P1", example1_query(), method="asp")
        key_evaluators = {key[-1] for key in fast._solutions}
        assert key_evaluators == {"planner"}
