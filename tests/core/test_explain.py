"""Unit tests for answer certification / explanations."""

import pytest

from repro.core import (
    AnswerExplanation,
    QueryScopeError,
    explain_answer,
    explain_query,
    peer_consistent_answers,
    possible_peer_answers,
)
from repro.relational import Fact, parse_query
from repro.workloads import example1_system

QUERY = parse_query("q(X, Y) := R1(X, Y)")


class TestExplainAnswer:
    def test_certain_tuple(self):
        explanation = explain_answer(example1_system(), "P1", QUERY,
                                     ("c", "d"))
        assert explanation.status == AnswerExplanation.CERTAIN
        assert explanation.supporting_solutions == \
            explanation.total_solutions == 2
        assert explanation.countersolution is None
        assert "CERTAIN" in explanation.render()

    def test_possible_tuple_has_countersolution(self):
        explanation = explain_answer(example1_system(), "P1", QUERY,
                                     ("s", "t"))
        assert explanation.status == AnswerExplanation.POSSIBLE
        assert explanation.supporting_solutions == 1
        counter = explanation.countersolution
        assert counter is not None
        assert Fact("R1", ("s", "t")) not in counter
        assert "countersolution" in explanation.render()

    def test_absent_tuple(self):
        explanation = explain_answer(example1_system(), "P1", QUERY,
                                     ("zz", "zz"))
        assert explanation.status == AnswerExplanation.ABSENT
        assert explanation.supporting_solutions == 0

    def test_no_solutions_status(self):
        from tests.core.test_failure_modes import \
            TestContradictorySystems
        system = TestContradictorySystems().make_pinned_contradiction()
        explanation = explain_answer(
            system, "P1", parse_query("q(X, Y) := A(X, Y)"), ("c", "d"))
        assert explanation.status == AnswerExplanation.NO_SOLUTIONS
        assert "no solutions" in explanation.render()

    def test_query_scope_enforced(self):
        with pytest.raises(QueryScopeError):
            explain_answer(example1_system(), "P1",
                           parse_query("q(X, Y) := R2(X, Y)"), ("c", "d"))


class TestExplainQuery:
    def test_partitions_possible_answers(self):
        system = example1_system()
        explanations = explain_query(system, "P1", QUERY)
        by_status = {}
        for explanation in explanations:
            by_status.setdefault(explanation.status,
                                 set()).add(explanation.tuple)
        certain = set(peer_consistent_answers(system, "P1",
                                              QUERY).answers)
        possible = set(possible_peer_answers(system, "P1",
                                             QUERY).answers)
        assert by_status[AnswerExplanation.CERTAIN] == certain
        assert by_status.get(AnswerExplanation.POSSIBLE, set()) == \
            possible - certain
        # explain_query only lists tuples holding somewhere
        assert AnswerExplanation.ABSENT not in by_status

    def test_certain_first_ordering(self):
        explanations = explain_query(example1_system(), "P1", QUERY)
        statuses = [e.status for e in explanations]
        if AnswerExplanation.POSSIBLE in statuses:
            assert statuses.index(AnswerExplanation.POSSIBLE) > \
                statuses.index(AnswerExplanation.CERTAIN)

    def test_counts_consistent(self):
        for explanation in explain_query(example1_system(), "P1", QUERY):
            assert 0 < explanation.supporting_solutions <= \
                explanation.total_solutions == 2
