"""Unit tests for Definition 4 (solutions) and Definition 5 (PCAs) beyond
the paper's instances: edge cases, trust variations, local ICs, failure
modes."""

import pytest

from repro.core import (
    DataExchange,
    PCAResult,
    Peer,
    PeerSystem,
    SolutionSearch,
    TrustRelation,
    peer_consistent_answers,
    solutions_for_peer,
)
from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    DenialConstraint,
    Fact,
    FunctionalDependency,
    InclusionDependency,
    EqualityGeneratingConstraint,
    RelAtom,
    Variable,
    parse_query,
)
from repro.workloads import example1_system

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def small_system(r1_rows, r2_rows, trust_level, *, local_ics=(),
                 enforce=True):
    p1 = Peer("P1", DatabaseSchema.of({"A": 2}), local_ics=local_ics)
    p2 = Peer("P2", DatabaseSchema.of({"B": 2}))
    instances = {
        "P1": DatabaseInstance(p1.schema, {"A": r1_rows}),
        "P2": DatabaseInstance(p2.schema, {"B": r2_rows}),
    }
    dec = DataExchange("P1", "P2", InclusionDependency(
        "B", "A", child_arity=2, parent_arity=2, name="imp"))
    trust = TrustRelation([("P1", trust_level, "P2")]) \
        if trust_level else TrustRelation()
    return PeerSystem([p1, p2], instances, [dec], trust,
                      enforce_local_ics=enforce)


class TestTrustVariations:
    def test_less_trust_imports(self):
        system = small_system([], [("c", "d")], "less")
        (solution,) = solutions_for_peer(system, "P1")
        assert Fact("A", ("c", "d")) in solution

    def test_same_trust_import_or_drop(self):
        system = small_system([], [("c", "d")], "same")
        solutions = solutions_for_peer(system, "P1")
        rendered = sorted(str(s) for s in solutions)
        assert rendered == ["{A(c, d), B(c, d)}", "{}"]

    def test_no_trust_edge_dec_ignored(self):
        system = small_system([], [("c", "d")], None)
        solutions = solutions_for_peer(system, "P1")
        assert solutions == [system.global_instance()]

    def test_consistent_system_identity(self):
        system = small_system([("c", "d")], [("c", "d")], "less")
        assert solutions_for_peer(system, "P1") == \
            [system.global_instance()]


class TestNoSolutions:
    def make_contradictory(self):
        """B must flow into A, but a denial forbids A-tuples; everything
        of P2 is fixed: no solution exists."""
        p1 = Peer("P1", DatabaseSchema.of({"A": 2}))
        p2 = Peer("P2", DatabaseSchema.of({"B": 2}))
        instances = {
            "P1": DatabaseInstance(p1.schema),
            "P2": DatabaseInstance(p2.schema, {"B": [("c", "d")]}),
        }
        import_dec = DataExchange("P1", "P2", InclusionDependency(
            "B", "A", child_arity=2, parent_arity=2, name="imp"))
        forbid = DataExchange("P1", "P2", DenialConstraint(
            antecedent=[RelAtom("A", [X, Y]), RelAtom("B", [X, Y])],
            name="forbid"))
        trust = TrustRelation([("P1", "less", "P2")])
        return PeerSystem([p1, p2], instances, [import_dec, forbid],
                          trust)

    def test_empty_solution_set(self):
        system = self.make_contradictory()
        assert solutions_for_peer(system, "P1") == []

    def test_pca_flags_no_solutions(self):
        system = self.make_contradictory()
        result = peer_consistent_answers(system, "P1",
                                         parse_query("q(X,Y) := A(X,Y)"))
        assert result.no_solutions
        assert result.answers == set()


class TestLocalICs:
    def test_import_conflicting_with_fd(self):
        """Imported tuple violates the local FD: with IC enforcement the
        peer must drop its own conflicting tuple (import is pinned)."""
        fd = FunctionalDependency("A", [0], [1], arity=2)
        system = small_system([("k", "own")], [("k", "imported")], "less",
                              local_ics=[fd])
        solutions = solutions_for_peer(system, "P1")
        assert len(solutions) == 1
        assert solutions[0].tuples("A") == frozenset({("k", "imported")})

    def test_local_ics_can_be_excluded(self):
        fd = FunctionalDependency("A", [0], [1], arity=2)
        system = small_system([("k", "own")], [("k", "imported")], "less",
                              local_ics=[fd])
        search = SolutionSearch(system, "P1", include_local_ics=False)
        (solution,) = search.solutions()
        assert solution.tuples("A") == frozenset(
            {("k", "own"), ("k", "imported")})


class TestPriorityBetweenStages:
    def test_less_beats_same(self):
        """A `less` import pins a tuple that a `same` conflict would
        otherwise be free to delete (Example 1's R1(a,e) phenomenon)."""
        system = example1_system(r1=[("a", "b")], r2=[("a", "e")],
                                 r3=[("a", "f")])
        for solution in solutions_for_peer(system, "P1"):
            # the import R1(a,e) survives in every solution...
            assert Fact("R1", ("a", "e")) in solution
            # ...so the conflicting R3(a,f) never does
            assert Fact("R3", ("a", "f")) not in solution

    def test_stage2_changes_same_peer_only(self):
        system = example1_system()
        for solution in solutions_for_peer(system, "P1"):
            assert solution.tuples("R2") == \
                system.instances["P2"].tuples("R2")


class TestPCAResult:
    def test_equality_with_plain_set(self):
        result = PCAResult({("a",)}, 3)
        assert result == {("a",)}
        assert result != {("b",)}

    def test_iteration_sorted(self):
        result = PCAResult({("b",), ("a",)}, 1)
        assert list(result) == [("a",), ("b",)]

    def test_pca_query_scope_enforced(self):
        from repro.core import QueryScopeError
        system = example1_system()
        with pytest.raises(QueryScopeError):
            peer_consistent_answers(system, "P1",
                                    parse_query("q(X,Y) := R2(X,Y)"))

    def test_pca_may_exceed_local_answers(self):
        """The paper: 'a query Q may have peer consistent answers for a
        peer which are not answers to Q when the peer is considered in
        isolation'."""
        system = example1_system()
        query = parse_query("q(X, Y) := R1(X, Y)")
        local = query.answers(system.instances["P1"])
        pca = set(peer_consistent_answers(system, "P1", query).answers)
        assert ("c", "d") in pca - local


class TestBooleanAndProjectionQueries:
    def test_boolean_query(self):
        system = example1_system()
        query = parse_query("q() := exists X exists Y R1(X, Y)")
        result = peer_consistent_answers(system, "P1", query)
        assert result.answers == {()}

    def test_projection_query(self):
        system = example1_system()
        query = parse_query("q(X) := exists Y R1(X, Y)")
        result = peer_consistent_answers(system, "P1", query)
        # 's' appears in R1 only via R1(s,t), which one solution deletes
        assert set(result.answers) == {("a",), ("c",)}

    def test_negation_query(self):
        # FO queries with negation work against the model-theoretic route
        system = example1_system()
        query = parse_query(
            "q(X, Y) := R1(X, Y) & ~exists Z (R1(Z, Y) & Z != X)")
        result = peer_consistent_answers(system, "P1", query)
        assert isinstance(result.answers, set)


class TestEGDBothSidesDeletable:
    def test_two_solutions_per_conflict(self):
        egd = EqualityGeneratingConstraint(
            antecedent=[RelAtom("A", [X, Y]), RelAtom("B", [X, Z])],
            equalities=[(Y, Z)], name="conflict")
        p1 = Peer("P1", DatabaseSchema.of({"A": 2}))
        p2 = Peer("P2", DatabaseSchema.of({"B": 2}))
        instances = {
            "P1": DatabaseInstance(p1.schema, {"A": [("k", "v")]}),
            "P2": DatabaseInstance(p2.schema, {"B": [("k", "w")]}),
        }
        system = PeerSystem(
            [p1, p2], instances,
            [DataExchange("P1", "P2", egd)],
            TrustRelation([("P1", "same", "P2")]))
        solutions = solutions_for_peer(system, "P1")
        assert len(solutions) == 2
