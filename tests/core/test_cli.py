"""Unit tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.core import dump_system
from repro.workloads import example1_system


@pytest.fixture()
def system_file(tmp_path):
    path = tmp_path / "net.json"
    dump_system(example1_system(), str(path))
    return str(path)


class TestQueryCommand:
    def test_certain_answers(self, system_file, capsys):
        code = main(["query", system_file, "P1", "q(X, Y) := R1(X, Y)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "a, b" in out and "c, d" in out and "a, e" in out
        assert "s, t" not in out

    def test_brave_answers(self, system_file, capsys):
        code = main(["query", system_file, "P1", "q(X, Y) := R1(X, Y)",
                     "--brave"])
        out = capsys.readouterr().out
        assert code == 0
        assert "s, t" in out

    def test_method_selection(self, system_file, capsys):
        for method in ("model", "rewrite"):
            code = main(["query", system_file, "P1",
                         "q(X, Y) := R1(X, Y)", "--method", method])
            assert code == 0
            assert "a, e" in capsys.readouterr().out

    def test_empty_answers_reported(self, system_file, capsys):
        code = main(["query", system_file, "P1",
                     "q(X, Y) := R1(zzz, Y) & R1(X, Y)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "(none)" in out

    def test_no_solutions_exit_code(self, tmp_path, capsys):
        data = {
            "peers": {
                "P1": {"schema": {"A": 2}},
                "P2": {"schema": {"B": 2},
                       "instance": {"B": [["c", "d"]]}},
            },
            "exchanges": [
                {"owner": "P1", "other": "P2",
                 "constraint": {"type": "inclusion", "child": "B",
                                "parent": "A", "child_arity": 2,
                                "parent_arity": 2}},
                {"owner": "P1", "other": "P2",
                 "constraint": {"type": "denial",
                                "antecedent": ["A(X, Y)", "B(X, Y)"]}},
            ],
            "trust": [["P1", "less", "P2"]],
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        code = main(["query", str(path), "P1", "q(X, Y) := A(X, Y)"])
        out = capsys.readouterr().out
        assert code == 1
        assert "NO solutions" in out


class TestNetworkCommand:
    EXPECTED = ("a, b", "c, d", "a, e")

    def test_answers_and_exchange_trace(self, system_file, capsys):
        code = main(["network", system_file, "P1",
                     "q(X, Y) := R1(X, Y)"])
        out = capsys.readouterr().out
        assert code == 0
        for row in self.EXPECTED:
            assert row in out
        assert "exchange trace" in out
        assert "P1 <- P2" in out and "P1 <- P3" in out

    def test_query_network_flag_matches_local(self, system_file,
                                              capsys):
        main(["query", system_file, "P1", "q(X, Y) := R1(X, Y)"])
        local_out = capsys.readouterr().out
        code = main(["query", system_file, "P1", "q(X, Y) := R1(X, Y)",
                     "--network"])
        network_out = capsys.readouterr().out
        assert code == 0
        for row in self.EXPECTED:
            assert row in local_out and row in network_out

    def test_latency_and_json(self, system_file, capsys):
        code = main(["network", system_file, "P1",
                     "q(X, Y) := R1(X, Y)", "--latency", "1",
                     "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert sorted(payload["answers"]) == [["a", "b"], ["a", "e"],
                                              ["c", "d"]]
        assert payload["error"] is None
        assert payload["exchange_requests"] > 0

    def test_json_includes_exchange_trace(self, system_file, capsys):
        code = main(["network", system_file, "P1",
                     "q(X, Y) := R1(X, Y)", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)  # the trace lives INSIDE the document
        trace = payload["exchange_trace"]
        assert trace, "a cold gather must record exchanges"
        providers = {event["provider"] for event in trace}
        assert {"P2", "P3"} <= providers
        for event in trace:
            assert set(event) == {"requester", "provider", "relation",
                                  "tuples", "bytes_estimate", "purpose",
                                  "hop", "timestamp"}
            assert event["timestamp"] > 0.0

    def test_routing_flag_same_answers_and_counters(self, system_file,
                                                    capsys):
        code = main(["network", system_file, "P1",
                     "q(X, Y) := R1(X, Y)", "--routing", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert sorted(payload["answers"]) == [["a", "b"], ["a", "e"],
                                              ["c", "d"]]
        assert payload["exchange_neighbours_pruned"] >= 0
        assert payload["exchange_subtrees_pruned"] >= 0
        assert payload["exchange_neighbours_contacted"] > 0
        # the generated negative form is accepted too
        assert main(["network", system_file, "P1",
                     "q(X, Y) := R1(X, Y)", "--no-routing"]) == 0
        capsys.readouterr()

    def test_query_network_routing_flag(self, system_file, capsys):
        code = main(["query", system_file, "P1",
                     "q(X, Y) := R1(X, Y)", "--network", "--routing"])
        out = capsys.readouterr().out
        assert code == 0
        for row in self.EXPECTED:
            assert row in out

    def test_routing_without_network_backend_is_rejected(
            self, system_file, capsys):
        code = main(["query", system_file, "P1",
                     "q(X, Y) := R1(X, Y)", "--routing"])
        assert code != 0
        capsys.readouterr()

    def test_insufficient_hop_budget_exit_3(self, tmp_path, capsys):
        from repro.workloads import topology_system
        path = tmp_path / "chain.json"
        dump_system(topology_system(4, topology="chain", n_tuples=2,
                                    seed=0), str(path))
        code = main(["network", str(path), "P0",
                     "q(X, Y) := R0(X, Y)", "--hops", "1"])
        out = capsys.readouterr().out
        assert code == 3
        assert "hop-budget-exhausted" in out

    def test_sequential_mode_agrees(self, system_file, capsys):
        code = main(["network", system_file, "P1",
                     "q(X, Y) := R1(X, Y)", "--sequential"])
        out = capsys.readouterr().out
        assert code == 0
        for row in self.EXPECTED:
            assert row in out


class TestSolutionsCommand:
    def test_direct(self, system_file, capsys):
        code = main(["solutions", system_file, "P1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 direct solution(s)" in out

    def test_transitive(self, tmp_path, capsys):
        from repro.workloads import example4_system
        path = tmp_path / "ex4.json"
        dump_system(example4_system(), str(path))
        code = main(["solutions", str(path), "P", "--transitive"])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 global solution(s)" in out


class TestReportAndExamples:
    def test_report_runs_every_experiment(self, capsys):
        code = main(["report"])
        out = capsys.readouterr().out
        assert code == 0
        for marker in ("EX1", "EX6", "SC1", "SC5"):
            assert marker in out

    def test_examples_run(self, capsys):
        code = main(["examples"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Solutions for P1" in out
        assert "certified catalog" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "x.json", "P", "q() := true",
                 "--method", "quantum"])
