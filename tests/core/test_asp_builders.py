"""Unit tests for the ASP builders: naming, translation details, decode,
staged composition, and randomized cross-validation vs Definition 4."""

import random

import pytest

from repro.core import (
    DataExchange,
    GavSpecification,
    NameMap,
    Peer,
    PeerSystem,
    SystemError_,
    TrustRelation,
    asp_peer_consistent_answers,
    asp_solutions_for_peer,
    peer_consistent_answers,
    solutions_for_peer,
)
from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    DenialConstraint,
    FunctionalDependency,
    InclusionDependency,
    RelAtom,
    TupleGeneratingConstraint,
    Variable,
    parse_query,
)
from repro.workloads import example1_system, section31_system

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


class TestNameMap:
    def test_basic_mapping(self):
        names = NameMap(["R1", "emp"])
        assert names.source("R1") == "r1"
        assert names.primed("R1") == "r1_p"
        assert names.source("emp") == "emp"

    def test_reverse_lookup(self):
        names = NameMap(["R1"])
        assert names.relation_of_primed("r1_p") == "R1"
        assert names.relation_of_source("r1") == "R1"
        assert names.relation_of_primed("zz") is None

    def test_collision_detected(self):
        with pytest.raises(SystemError_):
            NameMap(["Abc", "abc"])

    def test_invalid_relation_name(self):
        with pytest.raises(SystemError_):
            NameMap(["1bad"])

    def test_unmapped_lookup(self):
        with pytest.raises(SystemError_):
            NameMap(["R1"]).source("R9")


class TestGavTranslationDetails:
    def test_fd_local_ic_becomes_denial(self):
        schema = DatabaseSchema.of({"A": 2})
        instance = DatabaseInstance(schema, {"A": [("k", "v")]})
        fd = FunctionalDependency("A", [0], [1], arity=2)
        spec = GavSpecification(instance, [], changeable={"A"},
                                local_ics=[fd])
        text = spec.program.pretty(sort=True)
        assert ":- a_p(X0, X1), a_p(X0, Y1), X1 != Y1." in text

    def test_denial_dec_translated(self):
        schema = DatabaseSchema.of({"A": 1, "B": 1})
        instance = DatabaseInstance(schema, {"A": [("x",)],
                                             "B": [("x",)]})
        denial = DenialConstraint(
            antecedent=[RelAtom("A", [X]), RelAtom("B", [X])])
        spec = GavSpecification(instance, [denial], changeable={"A"})
        solutions = spec.solutions()
        assert len(solutions) == 1
        assert solutions[0].tuples("A") == frozenset()

    def test_unfixable_violation_yields_no_answer_sets(self):
        schema = DatabaseSchema.of({"A": 1, "B": 1})
        instance = DatabaseInstance(schema, {"A": [("x",)],
                                             "B": [("x",)]})
        denial = DenialConstraint(
            antecedent=[RelAtom("A", [X]), RelAtom("B", [X])])
        spec = GavSpecification(instance, [denial], changeable=set())
        assert spec.answer_sets() == []
        assert spec.solutions() == []

    def test_multi_atom_insertable_consequent_uses_marker(self):
        # same-trust variant: both R2 and S2 insertable → ins marker
        schema = DatabaseSchema.of({"R1": 2, "R2": 2, "S1": 2, "S2": 2})
        instance = DatabaseInstance(schema, {
            "R1": [("d", "m")], "S1": [("a", "m")]})
        dec = TupleGeneratingConstraint(
            antecedent=[RelAtom("R1", [X, Y]), RelAtom("S1", [Z, Y])],
            consequent=[RelAtom("R2", [X, W]), RelAtom("S2", [Z, W])],
            name="dec3")
        spec = GavSpecification(instance, [dec],
                                changeable={"R1", "R2", "S1", "S2"})
        text = spec.program.pretty(sort=True)
        assert "ins_" in text
        assert "dom(" in text  # unguarded witness domain
        solutions = spec.solutions()
        # deletions of R1(d,m) or S1(a,m), or paired insertions with any
        # active-domain witness
        assert len(solutions) >= 3
        for solution in solutions:
            assert dec.holds_in(solution)

    def test_enforce_blocks_deletion(self):
        schema = DatabaseSchema.of({"A": 2, "B": 2, "C": 2})
        instance = DatabaseInstance(schema, {
            "A": [("k", "v")], "B": [("k", "v")], "C": [("k", "w")]})
        # repair DEC: A and C conflict -> delete A(k,v) or C(k,w)
        from repro.relational import EqualityGeneratingConstraint
        conflict = EqualityGeneratingConstraint(
            antecedent=[RelAtom("A", [X, Y]), RelAtom("C", [X, Z])],
            equalities=[(Y, Z)], name="conflict")
        # hard constraint: B ⊆ A (pins A(k,v))
        pin = InclusionDependency("B", "A", child_arity=2, parent_arity=2,
                                  name="pin")
        spec = GavSpecification(instance, [conflict],
                                changeable={"A", "C"}, enforce=[pin])
        solutions = spec.solutions()
        assert len(solutions) == 1
        assert solutions[0].tuples("A") == frozenset({("k", "v")})
        assert solutions[0].tuples("C") == frozenset()

    def test_scope_validation(self):
        schema = DatabaseSchema.of({"A": 1})
        instance = DatabaseInstance(schema, {"A": [("x",)]})
        stray = DenialConstraint(antecedent=[RelAtom("Z", [X])])
        with pytest.raises(SystemError_):
            GavSpecification(instance, [stray], changeable={"A"})


class TestStagedComposition:
    def test_no_decs_identity(self):
        p = Peer("P", DatabaseSchema.of({"A": 1}))
        system = PeerSystem(
            [p], {"P": DatabaseInstance(p.schema, {"A": [("x",)]})})
        assert asp_solutions_for_peer(system, "P") == \
            [system.global_instance()]

    def test_less_only(self):
        system = section31_system()
        assert asp_solutions_for_peer(system, "P") == \
            solutions_for_peer(system, "P")

    def test_same_only(self):
        system = example1_system(r2=[])  # kill the import content
        assert asp_solutions_for_peer(system, "P1") == \
            solutions_for_peer(system, "P1")

    def test_both_stages(self):
        system = example1_system()
        assert asp_solutions_for_peer(system, "P1") == \
            solutions_for_peer(system, "P1")

    def test_pca_wrapper(self):
        system = example1_system()
        asp = asp_peer_consistent_answers(
            system, "P1", parse_query("q(X, Y) := R1(X, Y)"))
        model = peer_consistent_answers(
            system, "P1", parse_query("q(X, Y) := R1(X, Y)"))
        assert asp.answers == model.answers


def _random_rows(rng, n, keys, values):
    return list({(rng.choice(keys), rng.choice(values))
                 for _ in range(n)})


class TestRandomizedCrossValidation:
    """ASP solutions == Definition 4 solutions on random small systems."""

    def test_example1_shaped(self):
        rng = random.Random(42)
        for trial in range(25):
            r1 = _random_rows(rng, rng.randint(0, 3), ["a", "s"],
                              ["b", "e", "f"])
            r2 = _random_rows(rng, rng.randint(0, 2), ["a", "c"],
                              ["d", "e"])
            r3 = _random_rows(rng, rng.randint(0, 2), ["a", "s"],
                              ["f", "u", "b"])
            system = example1_system(r1=r1, r2=r2, r3=r3)
            asp = asp_solutions_for_peer(system, "P1")
            model = solutions_for_peer(system, "P1")
            assert asp == model, (trial, r1, r2, r3)

    def test_section31_shaped(self):
        rng = random.Random(7)
        for trial in range(25):
            r1 = _random_rows(rng, rng.randint(0, 2), ["d", "e"],
                              ["m", "n"])
            s1 = _random_rows(rng, rng.randint(0, 2), ["a", "b"],
                              ["m", "n"])
            r2 = _random_rows(rng, rng.randint(0, 1), ["d"], ["t"])
            s2 = _random_rows(rng, rng.randint(0, 3), ["a", "b"],
                              ["t", "u"])
            system = section31_system(r1=r1, s1=s1, r2=r2, s2=s2)
            asp = asp_solutions_for_peer(system, "P")
            model = solutions_for_peer(system, "P")
            assert asp == model, (trial, r1, s1, r2, s2)

    def test_minimality_filter_noop_on_paper_class(self):
        rng = random.Random(99)
        for _trial in range(15):
            r1 = _random_rows(rng, rng.randint(0, 2), ["d"], ["m", "n"])
            s1 = _random_rows(rng, rng.randint(0, 2), ["a"], ["m", "n"])
            s2 = _random_rows(rng, rng.randint(0, 2), ["a"], ["t", "u"])
            system = section31_system(r1=r1, s1=s1, r2=[], s2=s2)
            filtered = asp_solutions_for_peer(system, "P",
                                              minimal_only=True)
            raw = asp_solutions_for_peer(system, "P", minimal_only=False)
            assert filtered == raw
