"""Unit tests for the P2P FO rewriting beyond the paper's instance:
fragment boundaries and randomized cross-validation against Definition 5."""

import random

import pytest

from repro.core import (
    PeerQueryRewriter,
    RewritingNotSupported,
    answers_via_rewriting,
    peer_consistent_answers,
    rewrite_peer_query,
)
from repro.relational import parse_query
from repro.workloads import example1_system


class TestFragmentBoundaries:
    def test_same_trust_inclusion_rejected(self):
        from repro.core import (DataExchange, Peer, PeerSystem,
                                TrustRelation)
        from repro.relational import (DatabaseInstance, DatabaseSchema,
                                      InclusionDependency)
        p = Peer("P", DatabaseSchema.of({"A": 2}))
        q = Peer("Q", DatabaseSchema.of({"B": 2}))
        system = PeerSystem(
            [p, q],
            {"P": DatabaseInstance(p.schema),
             "Q": DatabaseInstance(q.schema)},
            [DataExchange("P", "Q", InclusionDependency(
                "B", "A", child_arity=2, parent_arity=2))],
            TrustRelation([("P", "same", "Q")]))
        with pytest.raises(RewritingNotSupported):
            rewrite_peer_query(system, "P", parse_query("q(X,Y) := A(X,Y)"))

    def test_negation_in_query_rejected(self):
        system = example1_system()
        with pytest.raises(RewritingNotSupported):
            rewrite_peer_query(system, "P1",
                               parse_query("q(X, Y) := ~R1(X, Y)"))

    def test_untrusted_decs_simply_ignored(self):
        # drop the trust edges: no DECs are trusted, the query rewrites
        # to itself
        from repro.core import PeerSystem, TrustRelation
        base = example1_system()
        system = PeerSystem(base.peers.values(), base.instances,
                            base.exchanges, TrustRelation())
        query = parse_query("q(X, Y) := R1(X, Y)")
        rewritten = rewrite_peer_query(system, "P1", query)
        assert rewritten.formula == query.formula

    def test_query_scope_still_enforced(self):
        from repro.core import QueryScopeError
        system = example1_system()
        with pytest.raises(QueryScopeError):
            rewrite_peer_query(system, "P1",
                               parse_query("q(X, Y) := R3(X, Y)"))


class TestQueryShapes:
    def test_projection_query(self):
        system = example1_system()
        query = parse_query("q(X) := exists Y R1(X, Y)")
        rewriting = answers_via_rewriting(system, "P1", query)
        model = peer_consistent_answers(system, "P1", query)
        assert rewriting == set(model.answers)

    def test_conjunctive_self_join(self):
        system = example1_system()
        query = parse_query(
            "q(X, Y, Z) := R1(X, Y) & R1(X, Z) & Y != Z")
        rewriting = answers_via_rewriting(system, "P1", query)
        model = peer_consistent_answers(system, "P1", query)
        assert rewriting == set(model.answers)

    def test_union_query(self):
        system = example1_system()
        query = parse_query("q(X, Y) := R1(X, Y) | R1(Y, X)")
        rewriting = answers_via_rewriting(system, "P1", query)
        model = peer_consistent_answers(system, "P1", query)
        assert rewriting == set(model.answers)

    def test_constant_query(self):
        system = example1_system()
        query = parse_query("q(Y) := R1(a, Y)")
        rewriting = answers_via_rewriting(system, "P1", query)
        model = peer_consistent_answers(system, "P1", query)
        assert rewriting == set(model.answers)


def _random_example1_instances(rng):
    keys = ["a", "s", "k"]
    values = ["b", "e", "f", "t"]
    def rows(n):
        return list({(rng.choice(keys), rng.choice(values))
                     for _ in range(n)})
    return (rows(rng.randint(0, 3)), rows(rng.randint(0, 2)),
            rows(rng.randint(0, 2)))


class TestRandomizedCrossValidation:
    """Rewriting == Definition 5 on 40 random Example-1-shaped systems."""

    def test_random_instances(self):
        rng = random.Random(20040120)
        query = parse_query("q(X, Y) := R1(X, Y)")
        for trial in range(40):
            r1, r2, r3 = _random_example1_instances(rng)
            system = example1_system(r1=r1, r2=r2, r3=r3)
            rewriting = answers_via_rewriting(system, "P1", query)
            model = peer_consistent_answers(system, "P1", query)
            if model.no_solutions:
                continue
            assert rewriting == set(model.answers), \
                (trial, r1, r2, r3, rewriting, sorted(model.answers))


class TestRewriterReuse:
    def test_rewriter_handles_multiple_queries(self):
        system = example1_system()
        rewriter = PeerQueryRewriter(system, "P1")
        q1 = rewriter.rewrite(parse_query("q(X, Y) := R1(X, Y)"))
        q2 = rewriter.rewrite(parse_query("q(X) := exists Y R1(X, Y)"))
        assert q1.arity == 2 and q2.arity == 1
