"""Unit tests for the brave counterpart of Definition 5."""

from repro.core import (
    peer_consistent_answers,
    possible_peer_answers,
)
from repro.relational import parse_query
from repro.workloads import example1_system, section31_system

QUERY = parse_query("q(X, Y) := R1(X, Y)")


class TestPossiblePeerAnswers:
    def test_bracket_certain_answers(self):
        system = example1_system()
        certain = peer_consistent_answers(system, "P1", QUERY)
        possible = possible_peer_answers(system, "P1", QUERY)
        assert certain.answers <= possible.answers

    def test_example1_possible_answers(self):
        system = example1_system()
        possible = possible_peer_answers(system, "P1", QUERY)
        # R1(s,t) survives only in solution r': possible but not certain
        assert ("s", "t") in possible.answers
        assert possible.answers == {("a", "b"), ("a", "e"), ("c", "d"),
                                    ("s", "t")}

    def test_disputed_values_are_possible(self):
        system = section31_system()
        query = parse_query("q(X, Y) := R2(X, Y)")
        possible = possible_peer_answers(system, "P", query)
        certain = peer_consistent_answers(system, "P", query)
        assert possible.answers == {("a", "e"), ("a", "f")}
        assert certain.answers == set()

    def test_consistent_system_certain_equals_possible(self):
        system = example1_system(r1=[("a", "b")], r2=[("a", "b")],
                                 r3=[("a", "b")])
        certain = peer_consistent_answers(system, "P1", QUERY)
        possible = possible_peer_answers(system, "P1", QUERY)
        assert certain.answers == possible.answers

    def test_no_solutions_empty_both_ways(self):
        from tests.core.test_failure_modes import \
            TestContradictorySystems
        system = TestContradictorySystems().make_pinned_contradiction()
        query = parse_query("q(X, Y) := A(X, Y)")
        possible = possible_peer_answers(system, "P1", query)
        assert possible.no_solutions and possible.answers == set()

    def test_matches_brave_answer_set_semantics(self):
        """Brave PCA == brave answers of the query program over the
        specification (the answer-set counterpart)."""
        from repro.core import GavSpecification
        from repro.workloads import appendix_instance, section31_dec
        system = section31_system()
        spec = GavSpecification(appendix_instance(), [section31_dec()],
                                changeable={"R1", "R2"})
        query = parse_query("q(X, Y) := R2(X, Y)")
        brave_program = spec.query_program_answers(query,
                                                   skeptical=False)
        brave_solutions = possible_peer_answers(system, "P", query)
        assert brave_program == brave_solutions.answers
