"""Failure injection: contradictory systems, resource limits, and the
footnote-1 extension (peers with locally inconsistent instances)."""

import pytest

from repro.core import (
    DataExchange,
    GavSpecification,
    Peer,
    PeerConsistentEngine,
    PeerSystem,
    SystemError_,
    TrustRelation,
    asp_solutions_for_peer,
    peer_consistent_answers,
    solutions_for_peer,
)
from repro.datalog import GroundingError, SolverError
from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    DenialConstraint,
    FunctionalDependency,
    InclusionDependency,
    RelAtom,
    Variable,
    parse_query,
)
from repro.workloads import conflict_chain_system

X, Y = Variable("X"), Variable("Y")


class TestContradictorySystems:
    def make_pinned_contradiction(self):
        """Import forces A(c,d); a denial DEC forbids it; both DECs are
        toward the fixed, more-trusted peer: unsatisfiable."""
        p1 = Peer("P1", DatabaseSchema.of({"A": 2}))
        p2 = Peer("P2", DatabaseSchema.of({"B": 2}))
        instances = {
            "P1": DatabaseInstance(p1.schema),
            "P2": DatabaseInstance(p2.schema, {"B": [("c", "d")]}),
        }
        return PeerSystem(
            [p1, p2], instances,
            [DataExchange("P1", "P2", InclusionDependency(
                "B", "A", child_arity=2, parent_arity=2, name="imp")),
             DataExchange("P1", "P2", DenialConstraint(
                 antecedent=[RelAtom("A", [X, Y]), RelAtom("B", [X, Y])],
                 name="forbid"))],
            TrustRelation([("P1", "less", "P2")]))

    def test_model_route_returns_no_solutions(self):
        system = self.make_pinned_contradiction()
        assert solutions_for_peer(system, "P1") == []

    def test_asp_route_has_no_answer_sets(self):
        """Section 3.2: "The absence of solutions for a peer will thus be
        captured by the non existence of answer sets"."""
        system = self.make_pinned_contradiction()
        assert asp_solutions_for_peer(system, "P1") == []

    def test_pca_reports_no_solutions(self):
        system = self.make_pinned_contradiction()
        result = peer_consistent_answers(
            system, "P1", parse_query("q(X, Y) := A(X, Y)"))
        assert result.no_solutions
        assert result.answers == set()

    def test_engine_consistent_behaviour_across_methods(self):
        system = self.make_pinned_contradiction()
        for method in ("model", "asp"):
            engine = PeerConsistentEngine(system, method=method)
            result = engine.peer_consistent_answers(
                "P1", parse_query("q(X, Y) := A(X, Y)"))
            assert result.answers == set()


class TestFootnote1LocalViolations:
    """Footnote 1: "It would not be difficult to extend this scenario to
    one that allows local violations of ICs" — with
    enforce_local_ics=False at construction, the solution semantics
    repairs the local inconsistency."""

    def make_locally_inconsistent(self):
        fd = FunctionalDependency("A", [0], [1], arity=2)
        p1 = Peer("P1", DatabaseSchema.of({"A": 2}), local_ics=[fd])
        instances = {"P1": DatabaseInstance(
            p1.schema, {"A": [("k", "v1"), ("k", "v2")]})}
        return PeerSystem([p1], instances, enforce_local_ics=False)

    def test_construction_rejects_by_default(self):
        fd = FunctionalDependency("A", [0], [1], arity=2)
        p1 = Peer("P1", DatabaseSchema.of({"A": 2}), local_ics=[fd])
        instances = {"P1": DatabaseInstance(
            p1.schema, {"A": [("k", "v1"), ("k", "v2")]})}
        with pytest.raises(SystemError_):
            PeerSystem([p1], instances)

    def test_solutions_repair_the_local_violation(self):
        system = self.make_locally_inconsistent()
        solutions = solutions_for_peer(system, "P1")
        assert len(solutions) == 2  # keep v1 or keep v2
        for solution in solutions:
            assert len(solution.tuples("A")) == 1

    def test_asp_route_agrees(self):
        system = self.make_locally_inconsistent()
        assert asp_solutions_for_peer(system, "P1") == \
            solutions_for_peer(system, "P1")

    def test_pca_certifies_the_key_only(self):
        system = self.make_locally_inconsistent()
        key_query = parse_query("q(X) := exists Y A(X, Y)")
        result = peer_consistent_answers(system, "P1", key_query)
        assert set(result.answers) == {("k",)}
        value_query = parse_query("q(X, Y) := A(X, Y)")
        result = peer_consistent_answers(system, "P1", value_query)
        assert result.answers == set()


class TestResourceLimits:
    def test_grounding_budget(self):
        from repro.datalog import parse_program, ground_program
        program = parse_program("""
            pair(X, Y) :- d(X), d(Y).
            d(1). d(2). d(3). d(4). d(5). d(6).
        """)
        with pytest.raises(GroundingError):
            ground_program(program, max_atoms=10)

    def test_solver_decision_budget(self):
        from repro.datalog import parse_program, ground_program
        from repro.datalog.stable import StableModelSolver
        text = "\n".join(f"a{i} :- not b{i}. b{i} :- not a{i}."
                         for i in range(10))
        ground = ground_program(parse_program(text))
        with pytest.raises(SolverError):
            StableModelSolver(ground, max_decisions=2).solve()

    def test_repair_max_changes_reports_empty(self):
        from repro.cqa import RepairProblem, repairs
        system = conflict_chain_system(3)
        from repro.core.trust import TrustLevel
        constraints = [e.constraint for e in
                       system.trusted_decs_of("P1", TrustLevel.SAME)]
        problem = RepairProblem(system.global_instance(), constraints,
                                max_changes=1)
        assert len(repairs(problem)) == 0

    def test_solution_search_max_solutions_cap(self):
        from repro.core import SolutionSearch
        system = conflict_chain_system(4)
        search = SolutionSearch(system, "P1", max_solutions=5)
        assert len(search.solutions()) == 5


class TestDegenerateSystems:
    def test_single_peer_no_decs(self):
        p = Peer("P", DatabaseSchema.of({"A": 1}))
        system = PeerSystem(
            [p], {"P": DatabaseInstance(p.schema, {"A": [("x",)]})})
        assert solutions_for_peer(system, "P") == \
            [system.global_instance()]
        result = peer_consistent_answers(system, "P",
                                         parse_query("q(X) := A(X)"))
        assert set(result.answers) == {("x",)}

    def test_empty_instances_everywhere(self):
        from repro.workloads import example1_system
        system = example1_system(r1=[], r2=[], r3=[])
        assert solutions_for_peer(system, "P1") == \
            [system.global_instance()]

    def test_empty_system_rejected(self):
        with pytest.raises(SystemError_):
            PeerSystem([], {})

    def test_gav_spec_without_constraints(self):
        instance = DatabaseInstance(DatabaseSchema.of({"A": 1}),
                                    {"A": [("x",)]})
        spec = GavSpecification(instance, [], changeable={"A"})
        assert spec.solutions() == [instance]
