"""Unit tests for declarative (JSON) system definitions."""

import json

import pytest

from repro.core import (
    SystemError_,
    constraint_from_dict,
    constraint_to_dict,
    dump_system,
    load_system,
    peer_consistent_answers,
    solutions_for_peer,
    system_from_dict,
    system_to_dict,
)
from repro.relational import (
    DenialConstraint,
    EqualityGeneratingConstraint,
    FunctionalDependency,
    InclusionDependency,
    KeyConstraint,
    TupleGeneratingConstraint,
    parse_query,
)
from repro.workloads import example1_system, example4_system, \
    section31_system

EXAMPLE1_DICT = {
    "peers": {
        "P1": {"schema": {"R1": 2},
               "instance": {"R1": [["a", "b"], ["s", "t"]]}},
        "P2": {"schema": {"R2": 2},
               "instance": {"R2": [["c", "d"], ["a", "e"]]}},
        "P3": {"schema": {"R3": 2},
               "instance": {"R3": [["a", "f"], ["s", "u"]]}},
    },
    "exchanges": [
        {"owner": "P1", "other": "P2",
         "constraint": {"type": "inclusion", "child": "R2",
                        "parent": "R1", "child_arity": 2,
                        "parent_arity": 2}},
        {"owner": "P1", "other": "P3",
         "constraint": {"type": "egd",
                        "antecedent": ["R1(X, Y)", "R3(X, Z)"],
                        "equalities": [["Y", "Z"]]}},
    ],
    "trust": [["P1", "less", "P2"], ["P1", "same", "P3"]],
}


class TestSystemFromDict:
    def test_example1_from_dict_behaves_like_fixture(self):
        system = system_from_dict(EXAMPLE1_DICT)
        query = parse_query("q(X, Y) := R1(X, Y)")
        result = peer_consistent_answers(system, "P1", query)
        assert set(result.answers) == {("a", "b"), ("c", "d"),
                                       ("a", "e")}

    def test_solutions_match_fixture(self):
        from_dict = solutions_for_peer(system_from_dict(EXAMPLE1_DICT),
                                       "P1")
        from_fixture = solutions_for_peer(example1_system(), "P1")
        assert [s.facts() for s in from_dict] == \
            [s.facts() for s in from_fixture]

    def test_local_ics_parsed_and_enforced(self):
        data = {
            "peers": {"P": {
                "schema": {"A": 2},
                "instance": {"A": [["k", "v1"], ["k", "v2"]]},
                "local_ics": [{"type": "fd", "relation": "A",
                               "lhs": [0], "rhs": [1], "arity": 2}]}},
        }
        with pytest.raises(SystemError_):
            system_from_dict(data)
        system = system_from_dict(data, enforce_local_ics=False)
        assert len(system.peer("P").local_ics) == 1

    def test_unknown_constraint_type(self):
        with pytest.raises(SystemError_):
            constraint_from_dict({"type": "quantum"})

    def test_bad_atom_rejected(self):
        with pytest.raises(SystemError_):
            constraint_from_dict({"type": "denial",
                                  "antecedent": ["X != Y"]})


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [example1_system,
                                         section31_system,
                                         example4_system])
    def test_system_round_trip(self, factory):
        system = factory()
        data = system_to_dict(system)
        rebuilt = system_from_dict(data)
        assert rebuilt.global_instance() == system.global_instance()
        assert system_to_dict(rebuilt) == data
        # semantics preserved: same solutions for every peer with DECs
        for peer in system.peers:
            if system.trusted_decs_of(peer):
                assert [s.facts()
                        for s in solutions_for_peer(rebuilt, peer)] == \
                    [s.facts() for s in solutions_for_peer(system, peer)]

    def test_json_serialisable(self):
        text = json.dumps(system_to_dict(example1_system()))
        rebuilt = system_from_dict(json.loads(text))
        assert rebuilt.global_instance() == \
            example1_system().global_instance()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "network.json"
        dump_system(example1_system(), str(path))
        system = load_system(str(path))
        assert system.global_instance() == \
            example1_system().global_instance()


class TestConstraintRoundTrip:
    CONSTRAINTS = [
        InclusionDependency("R2", "R1", child_arity=2, parent_arity=2,
                            name="ind"),
        InclusionDependency("R2", "R1", child_positions=[0],
                            parent_positions=[1], child_arity=2,
                            parent_arity=2, name="proj_ind"),
        FunctionalDependency("R1", [0], [1], arity=2, name="fd"),
        KeyConstraint("R1", [0], arity=2, name="key"),
    ]

    @pytest.mark.parametrize("constraint", CONSTRAINTS,
                             ids=lambda c: c.name)
    def test_named_round_trip(self, constraint):
        data = constraint_to_dict(constraint)
        rebuilt = constraint_from_dict(data)
        assert constraint_to_dict(rebuilt) == data

    def test_tgd_round_trip_semantics(self):
        from repro.workloads import section31_dec, appendix_instance
        dec = section31_dec()
        rebuilt = constraint_from_dict(constraint_to_dict(dec))
        instance = appendix_instance()
        assert rebuilt.holds_in(instance) == dec.holds_in(instance)
        assert len(rebuilt.violations(instance)) == \
            len(dec.violations(instance))

    def test_egd_round_trip_semantics(self):
        from repro.workloads.paper import sigma_p1_p3
        from repro.workloads import example1_system
        egd = sigma_p1_p3()
        rebuilt = constraint_from_dict(constraint_to_dict(egd))
        instance = example1_system().global_instance()
        assert len(rebuilt.violations(instance)) == \
            len(egd.violations(instance)) == 2

    def test_denial_round_trip(self):
        from repro.relational import RelAtom, Variable, Cmp
        X = Variable("X")
        denial = DenialConstraint(
            antecedent=[RelAtom("R1", [X, X])],
            conditions=[Cmp("!=", X, "ok")], name="no_diag")
        data = constraint_to_dict(denial)
        rebuilt = constraint_from_dict(data)
        assert constraint_to_dict(rebuilt) == data


class TestSystemRoundTripProperty:
    """system_to_dict/system_from_dict (and the file forms) must be
    lossless over the seeded topology_system family: same dictionary,
    same content-derived version — which is exactly what lets persisted
    caches validate against a re-loaded system."""

    CASES = [(topology, seed)
             for topology in ("chain", "star", "random")
             for seed in range(4)]

    @pytest.mark.parametrize("topology,seed", CASES)
    def test_dict_round_trip_is_lossless(self, topology, seed):
        from repro.workloads import topology_system
        system = topology_system(4, topology=topology, n_tuples=4,
                                 conflicts=(seed % 2), extra_edges=2,
                                 seed=seed)
        data = system_to_dict(system)
        rebuilt = system_from_dict(data)
        assert system_to_dict(rebuilt) == data
        assert rebuilt.version() == system.version()
        assert sorted(rebuilt.peers) == sorted(system.peers)
        for name in system.peers:
            assert rebuilt.instances[name] == system.instances[name]
        assert len(rebuilt.exchanges) == len(system.exchanges)
        assert set(rebuilt.trust.edges()) == set(system.trust.edges())

    @pytest.mark.parametrize("topology,seed", [("random", 0),
                                               ("chain", 3)])
    def test_file_round_trip_preserves_the_version(self, topology, seed,
                                                   tmp_path):
        from repro.workloads import topology_system
        system = topology_system(5, topology=topology, n_tuples=5,
                                 conflicts=1, seed=seed)
        path = str(tmp_path / "system.json")
        dump_system(system, path)
        loaded = load_system(path)
        assert loaded.version() == system.version()
        dump_system(loaded, str(tmp_path / "again.json"))
        assert (tmp_path / "again.json").read_text() == \
            (tmp_path / "system.json").read_text()

    def test_custom_attribute_names_round_trip(self):
        # regression: schema_to_spec used to collapse every relation to
        # its bare arity, silently dropping custom attribute names
        from repro.core import PeerSystem
        from repro.relational import DatabaseSchema, RelationSchema
        schema = DatabaseSchema([RelationSchema("R", 2,
                                                ["owner", "item"])])
        system = (PeerSystem.builder()
                  .peer("P", schema, instance={"R": [("a", "b")]})
                  .build())
        data = system_to_dict(system)
        assert data["peers"]["P"]["schema"]["R"] == {
            "arity": 2, "attributes": ["owner", "item"]}
        rebuilt = system_from_dict(data)
        relation = rebuilt.peer("P").schema.relation("R")
        assert relation.attributes == ("owner", "item")
        assert rebuilt.version() == system.version()

    def test_mixed_type_rows_serialise(self):
        # regression: sorted() over rows mixing ints and strings in one
        # column used to raise TypeError inside system_to_dict
        from repro.core import PeerSystem
        system = (PeerSystem.builder()
                  .peer("P", {"R": 2},
                        instance={"R": [(1, "b"), ("a", 2)]})
                  .build())
        data = system_to_dict(system)
        rebuilt = system_from_dict(data)
        assert rebuilt.instances["P"] == system.instances["P"]
        assert rebuilt.version() == system.version()
