"""Unit tests for the fluent :class:`SystemBuilder`."""

import pytest

from repro.core import (
    PeerSystem,
    SystemBuilder,
    SystemError_,
    TrustError,
    system_to_dict,
)
from repro.relational import InclusionDependency
from repro.workloads import example1_system


def example1_via_builder() -> PeerSystem:
    return (
        PeerSystem.builder()
        .peer("P1", {"R1": 2}, instance={"R1": [("a", "b"), ("s", "t")]})
        .peer("P2", {"R2": 2}, instance={"R2": [("c", "d"), ("a", "e")]})
        .peer("P3", {"R3": 2}, instance={"R3": [("a", "f"), ("s", "u")]})
        .exchange("P1", "P2",
                  {"type": "inclusion", "child": "R2", "parent": "R1",
                   "child_arity": 2, "parent_arity": 2,
                   "name": "sigma_p1_p2"})
        .exchange("P1", "P3",
                  {"type": "egd",
                   "antecedent": ["R1(X, Y)", "R3(X, Z)"],
                   "equalities": [["Y", "Z"]], "name": "sigma_p1_p3"})
        .trust("P1", "less", "P2")
        .trust("P1", "same", "P3")
        .build())


class TestBuilder:
    def test_classmethod_returns_builder(self):
        assert isinstance(PeerSystem.builder(), SystemBuilder)

    def test_builds_example1_equivalent(self):
        built = example1_via_builder()
        reference = example1_system()
        assert system_to_dict(built) == system_to_dict(reference)

    def test_constraint_objects_accepted(self):
        system = (PeerSystem.builder()
                  .peer("A", {"R": 1}, instance={"R": [("x",)]})
                  .peer("B", {"S": 1})
                  .exchange("B", "A",
                            InclusionDependency("R", "S", child_arity=1,
                                                parent_arity=1))
                  .trust("B", "less", "A")
                  .build())
        assert system.neighbours("B") == ("A",)

    def test_local_ics_from_dicts(self):
        with pytest.raises(SystemError_):
            # instance violates the FD declared as a dict: build rejects
            (PeerSystem.builder()
             .peer("A", {"R": 2},
                   instance={"R": [("k", "1"), ("k", "2")]},
                   local_ics=[{"type": "fd", "relation": "R",
                               "lhs": [0], "rhs": [1], "arity": 2}])
             .build())

    def test_enforce_local_ics_opt_out(self):
        system = (PeerSystem.builder()
                  .peer("A", {"R": 2},
                        instance={"R": [("k", "1"), ("k", "2")]},
                        local_ics=[{"type": "fd", "relation": "R",
                                    "lhs": [0], "rhs": [1], "arity": 2}])
                  .enforce_local_ics(False)
                  .build())
        assert len(system.instances["A"].tuples("R")) == 2

    def test_duplicate_peer_rejected_eagerly(self):
        builder = PeerSystem.builder().peer("A", {"R": 1})
        with pytest.raises(SystemError_):
            builder.peer("A", {"S": 1})

    def test_bad_constraint_payload_rejected(self):
        builder = PeerSystem.builder().peer("A", {"R": 1}) \
            .peer("B", {"S": 1})
        with pytest.raises(SystemError_):
            builder.exchange("A", "B", 42)

    def test_bad_trust_level_rejected_eagerly(self):
        builder = PeerSystem.builder().peer("A", {"R": 1}) \
            .peer("B", {"S": 1})
        with pytest.raises(TrustError):
            builder.trust("A", "sideways", "B")

    def test_trust_edges_bulk(self):
        system = (PeerSystem.builder()
                  .peer("A", {"R": 1}).peer("B", {"S": 1})
                  .peer("C", {"T": 1})
                  .trust_edges([("A", "less", "B"), ("A", "same", "C")])
                  .build())
        assert len(system.trust) == 2

    def test_build_validates_via_peer_system(self):
        # DEC over an unknown peer: PeerSystem's Definition-2 validation
        builder = (PeerSystem.builder()
                   .peer("A", {"R": 1})
                   .exchange("A", "Z",
                             {"type": "inclusion", "child": "R",
                              "parent": "R", "child_arity": 1,
                              "parent_arity": 1}))
        with pytest.raises(SystemError_):
            builder.build()

    def test_repeated_builds_share_the_content_version(self):
        # versions are content-derived: building the same definition
        # twice (or in two processes) must agree, so persisted caches
        # can validate
        builder = PeerSystem.builder().peer("A", {"R": 1})
        first, second = builder.build(), builder.build()
        assert first.version() == second.version()


class TestVersionToken:
    def test_data_change_changes_version(self):
        system = example1_system()
        from repro.relational.instance import Fact
        updated = system.with_global_instance(
            system.global_instance().with_facts([Fact("R1", ("z", "z"))]))
        assert updated.version() != system.version()

    def test_noop_functional_update_keeps_version(self):
        # same content, same version: warm caches survive no-op swaps
        system = example1_system()
        updated = system.with_global_instance(system.global_instance())
        assert updated.version() == system.version()

    def test_version_stable_on_one_instance(self):
        system = example1_system()
        assert system.version() == system.version()

    def test_version_sees_trust_and_decs(self):
        base = (PeerSystem.builder()
                .peer("A", {"R": 1}).peer("B", {"S": 1}))
        plain = base.build()
        trusted = (PeerSystem.builder()
                   .peer("A", {"R": 1}).peer("B", {"S": 1})
                   .trust("A", "less", "B").build())
        assert plain.version() != trusted.version()

    def test_version_distinguishes_value_types(self):
        one = (PeerSystem.builder()
               .peer("A", {"R": 1}, instance={"R": [(1,)]}).build())
        other = (PeerSystem.builder()
                 .peer("A", {"R": 1}, instance={"R": [("1",)]}).build())
        assert one.version() != other.version()
