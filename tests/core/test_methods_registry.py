"""Unit tests for the pluggable answer-method registry and the ``auto``
planner."""

import pytest

from repro.core import (
    AnswerMethod,
    P2PError,
    PeerQuerySession,
    UnknownMethodError,
    available_methods,
    get_method,
    register_method,
    unregister_method,
)
from repro.relational import parse_query
from repro.workloads import (
    example1_query,
    example1_system,
    example4_system,
    section31_system,
)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_methods()
        for builtin in ("model", "asp", "lav", "rewrite", "transitive",
                        "auto"):
            assert builtin in names

    def test_get_method_unknown_raises(self):
        with pytest.raises(UnknownMethodError) as err:
            get_method("quantum")
        # the error is self-diagnosing: it lists what IS registered
        assert "asp" in str(err.value)

    def test_unknown_method_error_is_p2p_error(self):
        with pytest.raises(P2PError):
            get_method("quantum")

    def test_register_requires_answer_method(self):
        with pytest.raises(P2PError):
            register_method(object())

    def test_register_requires_name(self):
        class Nameless(AnswerMethod):
            pass

        with pytest.raises(P2PError):
            register_method(Nameless())

    def test_duplicate_registration_rejected(self):
        class Clash(AnswerMethod):
            name = "asp"

        with pytest.raises(P2PError):
            register_method(Clash())

    def test_register_replace_and_unregister(self):
        class Custom(AnswerMethod):
            name = "custom_test_method"

            def solutions(self, session, peer):
                return get_method("asp").solutions(session, peer)

        register_method(Custom())
        try:
            assert "custom_test_method" in available_methods()
            # replace=True allows overriding
            register_method(Custom(), replace=True)
        finally:
            unregister_method("custom_test_method")
        assert "custom_test_method" not in available_methods()
        with pytest.raises(UnknownMethodError):
            unregister_method("custom_test_method")

    def test_methods_cli_survives_docstringless_plugin(self):
        """Regression: ``python -m repro methods`` must not crash when a
        registered method has no docstring."""
        class NoDoc(AnswerMethod):
            name = "nodoc_test_method"
        NoDoc.__doc__ = None

        register_method(NoDoc())
        try:
            from repro.__main__ import main
            assert main(["methods"]) == 0
        finally:
            unregister_method("nodoc_test_method")

    def test_unrelated_select_attribute_not_treated_as_planner(self):
        """Regression: planner dispatch is by the is_planner flag, not
        duck-typed on a 'select' attribute."""
        class WithHelper(AnswerMethod):
            name = "helper_test_method"

            def select(self, rows):  # unrelated helper, not the hook
                return rows

            def solutions(self, session, peer):
                return get_method("model").solutions(session, peer)

        register_method(WithHelper())
        try:
            session = PeerQuerySession(example1_system())
            result = session.answer("P1", example1_query(),
                                    method="helper_test_method")
            assert result.method_used == "helper_test_method"
            assert result.answers == \
                session.answer("P1", example1_query(),
                               method="asp").answers
        finally:
            unregister_method("helper_test_method")

    def test_custom_method_usable_from_session(self):
        class Echo(AnswerMethod):
            name = "echo_test_method"

            def solutions(self, session, peer):
                return get_method("model").solutions(session, peer)

        register_method(Echo)  # classes are instantiated on the fly
        try:
            session = PeerQuerySession(example1_system())
            result = session.answer("P1", example1_query(),
                                    method="echo_test_method")
            asp = session.answer("P1", example1_query(), method="asp")
            assert result.answers == asp.answers
            assert result.method_used == "echo_test_method"
        finally:
            unregister_method("echo_test_method")


class TestSupports:
    def test_rewrite_supports_example1(self):
        assert get_method("rewrite").supports(example1_system(), "P1",
                                              example1_query())

    def test_rewrite_rejects_tgd_decs(self):
        # DEC (3) is a referential TGD: outside the rewriting fragment
        assert not get_method("rewrite").supports(
            section31_system(), "P", parse_query("q(X, Y) := R1(X, Y)"))

    def test_transitive_rejects_same_trust(self):
        # example1 has a `same` edge: Section 4.3 does not apply
        assert not get_method("transitive").supports(example1_system(),
                                                     "P1")
        assert get_method("transitive").supports(example4_system(), "P")

    def test_asp_supports_everything(self):
        for system, peer in ((example1_system(), "P1"),
                             (section31_system(), "P"),
                             (example4_system(), "P")):
            assert get_method("asp").supports(system, peer)


class TestAutoSelection:
    def test_auto_picks_rewrite_on_example1(self):
        session = PeerQuerySession(example1_system())
        result = session.answer("P1", example1_query())
        assert result.method_requested == "auto"
        assert result.method_used == "rewrite"
        assert result.solution_count is None  # honestly not computed

    def test_auto_falls_back_to_asp_on_section31(self):
        session = PeerQuerySession(section31_system())
        result = session.answer("P", "q(X, Y) := R2(X, Y)")
        assert result.method_used == "asp"
        assert result.solution_count is not None

    @pytest.mark.parametrize("make_system,peer,query_text", [
        (example1_system, "P1", "q(X, Y) := R1(X, Y)"),
        (example1_system, "P1", "q(X) := exists Y R1(X, Y)"),
        (section31_system, "P", "q(X, Y) := R2(X, Y)"),
        (section31_system, "P", "q(X, Y) := R1(X, Y)"),
    ])
    def test_auto_matches_asp_on_paper_systems(self, make_system, peer,
                                               query_text):
        """The acceptance criterion: auto answers == asp answers."""
        session = PeerQuerySession(make_system())
        auto = session.answer(peer, query_text, method="auto")
        asp = session.answer(peer, query_text, method="asp")
        assert auto.answers == asp.answers

    def test_auto_possible_semantics_skips_rewrite(self):
        # rewriting cannot do brave reasoning; auto must not pick it
        session = PeerQuerySession(example1_system())
        result = session.answer("P1", example1_query(),
                                semantics="possible")
        assert result.method_used == "asp"
        assert ("s", "t") in result.answers

    def test_rewrite_possible_semantics_rejected(self):
        session = PeerQuerySession(example1_system())
        with pytest.raises(P2PError):
            session.answer("P1", example1_query(), method="rewrite",
                           semantics="possible")
