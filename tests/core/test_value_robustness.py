"""End-to-end robustness: non-identifier strings and integers as data.

Database values flow through instances, constraint matching, the ASP
facts/decode round-trip, FO evaluation, and JSON serialisation; none of
those layers may assume values are parser-friendly identifiers.
"""

import pytest

from repro.core import (
    DataExchange,
    Peer,
    PeerSystem,
    TrustRelation,
    asp_solutions_for_peer,
    peer_consistent_answers,
    solutions_for_peer,
    system_from_dict,
    system_to_dict,
)
from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    InclusionDependency,
    EqualityGeneratingConstraint,
    RelAtom,
    Variable,
    parse_query,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")

SPACEY = "New York City"
QUOTED = 'say "hi"'
NUMBER = 42


def make_system():
    p1 = Peer("P1", DatabaseSchema.of({"A": 2}))
    p2 = Peer("P2", DatabaseSchema.of({"B": 2}))
    p3 = Peer("P3", DatabaseSchema.of({"C": 2}))
    instances = {
        "P1": DatabaseInstance(p1.schema, {"A": [(SPACEY, NUMBER)]}),
        "P2": DatabaseInstance(p2.schema, {"B": [(QUOTED, 7)]}),
        "P3": DatabaseInstance(p3.schema, {"C": [(SPACEY, 13)]}),
    }
    exchanges = [
        DataExchange("P1", "P2", InclusionDependency(
            "B", "A", child_arity=2, parent_arity=2, name="imp")),
        DataExchange("P1", "P3", EqualityGeneratingConstraint(
            antecedent=[RelAtom("A", [X, Y]), RelAtom("C", [X, Z])],
            equalities=[(Y, Z)], name="conflict")),
    ]
    trust = TrustRelation([("P1", "less", "P2"), ("P1", "same", "P3")])
    return PeerSystem([p1, p2, p3], instances, exchanges, trust)


class TestModelTheoretic:
    def test_solutions_with_exotic_values(self):
        solutions = solutions_for_peer(make_system(), "P1")
        # conflict (A(SPACEY,42) vs C(SPACEY,13)): delete either side
        assert len(solutions) == 2
        for solution in solutions:
            assert (QUOTED, 7) in solution.tuples("A")  # import happened

    def test_pca(self):
        result = peer_consistent_answers(
            make_system(), "P1", parse_query("q(X, Y) := A(X, Y)"))
        assert set(result.answers) == {(QUOTED, 7)}


class TestAspRoute:
    def test_asp_handles_exotic_values(self):
        system = make_system()
        assert asp_solutions_for_peer(system, "P1") == \
            solutions_for_peer(system, "P1")

    def test_decode_preserves_types(self):
        system = make_system()
        for solution in asp_solutions_for_peer(system, "P1"):
            for (key, value) in solution.tuples("A"):
                assert isinstance(key, str)
                assert isinstance(value, int)

    def test_int_vs_string_distinct(self):
        """Constant(7) and Constant("7") must never unify anywhere."""
        p1 = Peer("P1", DatabaseSchema.of({"A": 1}))
        p2 = Peer("P2", DatabaseSchema.of({"B": 1}))
        instances = {
            "P1": DatabaseInstance(p1.schema, {"A": [("7",)]}),
            "P2": DatabaseInstance(p2.schema, {"B": [(7,)]}),
        }
        system = PeerSystem(
            [p1, p2], instances,
            [DataExchange("P1", "P2", InclusionDependency(
                "B", "A", child_arity=1, parent_arity=1))],
            TrustRelation([("P1", "less", "P2")]))
        (solution,) = asp_solutions_for_peer(system, "P1")
        assert solution.tuples("A") == frozenset({("7",), (7,)})


class TestSerialisation:
    def test_json_round_trip_with_exotic_values(self):
        system = make_system()
        rebuilt = system_from_dict(system_to_dict(system))
        assert rebuilt.global_instance() == system.global_instance()
        assert solutions_for_peer(rebuilt, "P1") == \
            solutions_for_peer(system, "P1")


class TestQueryWithConstants:
    def test_integer_constant_in_query(self):
        system = make_system()
        query = parse_query("q(X) := A(X, 7)")
        result = peer_consistent_answers(system, "P1", query)
        assert set(result.answers) == {(QUOTED,)}

    def test_quoted_string_constant_in_query(self):
        system = make_system()
        query = parse_query('q(Y) := A("say \\"hi\\"", Y)')
        result = peer_consistent_answers(system, "P1", query)
        assert set(result.answers) == {(7,)}
