"""Unit tests for the trust relation (Definition 2(f))."""

import pytest

from repro.core import TrustError, TrustLevel, TrustRelation


class TestConstruction:
    def test_from_string_levels(self):
        trust = TrustRelation([("A", "less", "B"), ("A", "same", "C")])
        assert trust.level("A", "B") is TrustLevel.LESS
        assert trust.level("A", "C") is TrustLevel.SAME

    def test_unknown_level_rejected(self):
        with pytest.raises(TrustError):
            TrustRelation([("A", "more", "B")])

    def test_self_trust_rejected(self):
        with pytest.raises(TrustError):
            TrustRelation([("A", "less", "A")])

    def test_functional_dependency_enforced(self):
        # Definition 2(f): the level functionally depends on the pair
        with pytest.raises(TrustError):
            TrustRelation([("A", "less", "B"), ("A", "same", "B")])

    def test_duplicate_consistent_edge_ok(self):
        trust = TrustRelation([("A", "less", "B"), ("A", "less", "B")])
        assert len(trust) == 1


class TestQueries:
    def setup_method(self):
        self.trust = TrustRelation([
            ("A", "less", "B"), ("A", "same", "C"), ("B", "less", "C")])

    def test_missing_edge_is_none(self):
        assert self.trust.level("A", "Z") is None
        assert self.trust.level("B", "A") is None  # not symmetric

    def test_predicates(self):
        assert self.trust.trusts_less("A", "B")
        assert not self.trust.trusts_less("A", "C")
        assert self.trust.trusts_same("A", "C")
        assert self.trust.trusts_at_least_same("A", "B")
        assert not self.trust.trusts_at_least_same("C", "A")

    def test_peers_trusted_by(self):
        assert self.trust.peers_trusted_by("A") == ["B", "C"]
        assert self.trust.peers_trusted_by("A", TrustLevel.LESS) == ["B"]
        assert self.trust.peers_trusted_by("Z") == []

    def test_edges_sorted(self):
        edges = list(self.trust.edges())
        assert edges == [("A", TrustLevel.LESS, "B"),
                         ("A", TrustLevel.SAME, "C"),
                         ("B", TrustLevel.LESS, "C")]

    def test_equality_and_hash(self):
        clone = TrustRelation([
            ("B", "less", "C"), ("A", "same", "C"), ("A", "less", "B")])
        assert clone == self.trust
        assert hash(clone) == hash(self.trust)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            self.trust.x = 1
