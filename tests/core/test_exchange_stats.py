"""Property suite for :class:`~repro.core.results.ExchangeStats`.

The stats object is merged associatively all over the runtime — every
gather level folds child stats into its own, the wire codec ships them
inside subsystem payloads and results — so the algebra (``__add__`` is
associative with the zero stats as identity, summing every counter
except ``max_hops``, which maxes) and the wire vocabulary (short keys,
routing counters omitted when zero) are locked in here.
"""

import dataclasses
import random

import pytest

from repro.core.results import ExchangeStats
from repro.wire.codec import _stats_from_dict, _stats_to_dict

FIELDS = [f.name for f in dataclasses.fields(ExchangeStats)]
SUM_FIELDS = [name for name in FIELDS if name != "max_hops"]


def random_stats(rng: random.Random) -> ExchangeStats:
    return ExchangeStats(**{name: rng.randrange(0, 1000)
                            for name in FIELDS})


def test_field_inventory_is_the_locked_seven():
    assert FIELDS == [
        "requests", "tuples_transferred", "bytes_estimate", "max_hops",
        "neighbours_pruned", "neighbours_contacted", "subtrees_pruned",
    ]


def test_add_sums_counters_and_maxes_hops():
    a = ExchangeStats(1, 2, 3, 4, 5, 6, 7)
    b = ExchangeStats(10, 20, 30, 2, 50, 60, 70)
    merged = a + b
    assert merged == ExchangeStats(11, 22, 33, 4, 55, 66, 77)


def test_add_identity():
    rng = random.Random(11)
    zero = ExchangeStats()
    for _ in range(50):
        stats = random_stats(rng)
        assert stats + zero == stats
        assert zero + stats == stats


def test_add_associative_and_commutative():
    rng = random.Random(23)
    for _ in range(100):
        a, b, c = (random_stats(rng) for _ in range(3))
        assert (a + b) + c == a + (b + c)
        assert a + b == b + a


def test_add_componentwise_against_model():
    rng = random.Random(42)
    for _ in range(100):
        a, b = random_stats(rng), random_stats(rng)
        merged = a + b
        for name in SUM_FIELDS:
            assert getattr(merged, name) == (getattr(a, name)
                                             + getattr(b, name))
        assert merged.max_hops == max(a.max_hops, b.max_hops)


# ---------------------------------------------------------------------------
# Wire vocabulary
# ---------------------------------------------------------------------------

def test_wire_round_trip_random():
    rng = random.Random(7)
    for _ in range(100):
        stats = random_stats(rng)
        assert _stats_from_dict(_stats_to_dict(stats)) == stats


def test_wire_keys_are_the_short_vocabulary():
    stats = ExchangeStats(1, 2, 3, 4, 5, 6, 7)
    assert _stats_to_dict(stats) == {
        "requests": 1, "tuples": 2, "bytes": 3, "max_hops": 4,
        "pruned": 5, "contacted": 6, "subtrees": 7,
    }


@pytest.mark.parametrize("name,key", [
    ("neighbours_pruned", "pruned"),
    ("neighbours_contacted", "contacted"),
    ("subtrees_pruned", "subtrees"),
])
def test_routing_counters_omitted_when_zero(name, key):
    stats = ExchangeStats(1, 2, 3, 4, 5, 6, 7)
    encoded = _stats_to_dict(dataclasses.replace(stats, **{name: 0}))
    assert key not in encoded
    assert _stats_from_dict(encoded) == dataclasses.replace(
        stats, **{name: 0})


def test_unrouted_stats_use_the_pre_routing_vocabulary():
    # frames from runs with routing off must stay byte-identical to
    # the pre-routing codec: exactly the four mandatory keys
    encoded = _stats_to_dict(ExchangeStats(3, 14, 159, 2))
    assert set(encoded) == {"requests", "tuples", "bytes", "max_hops"}


def test_decode_tolerates_missing_optional_keys():
    decoded = _stats_from_dict(
        {"requests": 1, "tuples": 2, "bytes": 3, "max_hops": 4})
    assert decoded == ExchangeStats(1, 2, 3, 4)
    assert decoded.neighbours_pruned == 0
    assert decoded.neighbours_contacted == 0
    assert decoded.subtrees_pruned == 0
