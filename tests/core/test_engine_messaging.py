"""Unit tests for the engine façade and the exchange log."""

import pytest

from repro.core import (
    ExchangeEvent,
    ExchangeLog,
    P2PError,
    PeerConsistentEngine,
)
from repro.relational import parse_query
from repro.workloads import example1_system, section31_system

QUERY = parse_query("q(X, Y) := R1(X, Y)")
EXPECTED = {("a", "b"), ("c", "d"), ("a", "e")}


class TestEngineMethods:
    @pytest.mark.parametrize("method", ["model", "asp", "rewrite"])
    def test_methods_agree_on_example1(self, method):
        engine = PeerConsistentEngine(example1_system(), method=method)
        result = engine.peer_consistent_answers("P1", QUERY)
        assert set(result.answers) == EXPECTED

    def test_lav_method_solutions(self):
        engine = PeerConsistentEngine(section31_system(), method="lav")
        assert len(engine.solutions("P")) == 3

    def test_unknown_method_rejected(self):
        with pytest.raises(P2PError):
            PeerConsistentEngine(example1_system(), method="quantum")

    def test_transitive_requires_asp(self):
        with pytest.raises(P2PError):
            PeerConsistentEngine(example1_system(), method="rewrite",
                                 transitive=True)

    def test_compare_methods(self):
        engine = PeerConsistentEngine(example1_system())
        results = engine.compare_methods("P1", QUERY,
                                         methods=("model", "asp",
                                                  "rewrite"))
        assert results["model"] == results["asp"] == results["rewrite"] \
            == EXPECTED

    def test_transitive_engine(self):
        from repro.workloads import example4_system
        engine = PeerConsistentEngine(example4_system(), method="asp",
                                      transitive=True)
        assert len(engine.solutions("P")) == 3

    def test_solutions_model_vs_asp(self):
        system = example1_system()
        model = PeerConsistentEngine(system, method="model")
        asp = PeerConsistentEngine(system, method="asp")
        assert model.solutions("P1") == asp.solutions("P1")


class TestAspExchangeLogging:
    def test_asp_route_logs_neighbour_fetches(self):
        from repro.core import asp_solutions_for_peer
        system = example1_system()
        asp_solutions_for_peer(system, "P1")
        fetched = {(e.provider, e.relation)
                   for e in system.exchange_log.events("P1")}
        assert fetched == {("P2", "R2"), ("P3", "R3")}
        assert all(e.purpose == "asp specification"
                   for e in system.exchange_log.events("P1"))


class TestExchangeLog:
    def test_record_and_query(self):
        log = ExchangeLog()
        log.record("P1", "P2", "R2", 5, purpose="import")
        log.record("P1", "P3", "R3", 2)
        log.record("P2", "P3", "R3", 2)
        assert len(log) == 3
        assert len(log.events("P1")) == 2
        assert log.total_tuples() == 9

    def test_local_reads_skipped(self):
        log = ExchangeLog()
        log.record("P1", "P1", "R1", 10)
        assert len(log) == 0

    def test_clear(self):
        log = ExchangeLog()
        log.record("P1", "P2", "R2", 1)
        log.clear()
        assert len(log) == 0

    def test_event_rendering(self):
        event = ExchangeEvent("P1", "P2", "R2", 5, "import")
        assert "P1 <- P2" in str(event)
        assert "5 tuples" in str(event)
        assert "import" in str(event)

    def test_marks_slice_the_log(self):
        log = ExchangeLog()
        log.record("P1", "P2", "R2", 5)
        mark = log.mark()
        log.record("P1", "P3", "R3", 2, bytes_estimate=20, hop=3)
        events = log.events_since(mark)
        assert [e.relation for e in events] == ["R3"]
        stats = log.stats_since(mark)
        assert stats.requests == 1
        assert stats.tuples_transferred == 2
        assert stats.bytes_estimate == 20
        assert stats.max_hops == 3

    def test_concurrent_appends_are_not_lost(self):
        import threading
        log = ExchangeLog()

        def append(worker):
            for index in range(200):
                log.record(f"P{worker}", "Q", "R", 1)

        threads = [threading.Thread(target=append, args=(w,))
                   for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(log) == 8 * 200
        assert log.total_tuples() == 8 * 200

    def test_iteration_walks_a_snapshot(self):
        log = ExchangeLog()
        log.record("P1", "P2", "R2", 1)
        for _event in log:  # appending mid-iteration must be safe
            log.record("P1", "P3", "R3", 1)
        assert len(log) == 2


class TestExchangeStatsWiring:
    def test_session_result_carries_real_logged_traffic(self):
        from repro.core import PeerQuerySession, estimate_bytes
        system = example1_system()
        session = PeerQuerySession(system, default_method="asp")
        result = session.answer("P1", QUERY)
        events = system.exchange_log.events("P1")
        assert result.exchange.requests == len(events) > 0
        assert result.exchange.tuples_transferred == \
            sum(e.tuples_transferred for e in events)
        assert result.exchange.bytes_estimate == \
            sum(e.bytes_estimate for e in events) > 0
        assert result.exchange.max_hops == 1

    def test_fetch_relation_estimates_bytes(self):
        from repro.core import estimate_bytes
        system = example1_system()
        tuples = system.fetch_relation("P1", "R2")
        event = system.exchange_log.events("P1")[0]
        assert event.bytes_estimate == estimate_bytes(tuples) > 0

    def test_stats_addition_sums_and_maxes(self):
        from repro.core import ExchangeStats
        combined = ExchangeStats(1, 10, 100, 2) + \
            ExchangeStats(2, 20, 200, 5)
        assert combined == ExchangeStats(3, 30, 300, 5)
