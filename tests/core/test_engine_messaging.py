"""Unit tests for the engine façade and the exchange log."""

import pytest

from repro.core import (
    ExchangeEvent,
    ExchangeLog,
    P2PError,
    PeerConsistentEngine,
)
from repro.relational import parse_query
from repro.workloads import example1_system, section31_system

QUERY = parse_query("q(X, Y) := R1(X, Y)")
EXPECTED = {("a", "b"), ("c", "d"), ("a", "e")}


class TestEngineMethods:
    @pytest.mark.parametrize("method", ["model", "asp", "rewrite"])
    def test_methods_agree_on_example1(self, method):
        engine = PeerConsistentEngine(example1_system(), method=method)
        result = engine.peer_consistent_answers("P1", QUERY)
        assert set(result.answers) == EXPECTED

    def test_lav_method_solutions(self):
        engine = PeerConsistentEngine(section31_system(), method="lav")
        assert len(engine.solutions("P")) == 3

    def test_unknown_method_rejected(self):
        with pytest.raises(P2PError):
            PeerConsistentEngine(example1_system(), method="quantum")

    def test_transitive_requires_asp(self):
        with pytest.raises(P2PError):
            PeerConsistentEngine(example1_system(), method="rewrite",
                                 transitive=True)

    def test_compare_methods(self):
        engine = PeerConsistentEngine(example1_system())
        results = engine.compare_methods("P1", QUERY,
                                         methods=("model", "asp",
                                                  "rewrite"))
        assert results["model"] == results["asp"] == results["rewrite"] \
            == EXPECTED

    def test_transitive_engine(self):
        from repro.workloads import example4_system
        engine = PeerConsistentEngine(example4_system(), method="asp",
                                      transitive=True)
        assert len(engine.solutions("P")) == 3

    def test_solutions_model_vs_asp(self):
        system = example1_system()
        model = PeerConsistentEngine(system, method="model")
        asp = PeerConsistentEngine(system, method="asp")
        assert model.solutions("P1") == asp.solutions("P1")


class TestAspExchangeLogging:
    def test_asp_route_logs_neighbour_fetches(self):
        from repro.core import asp_solutions_for_peer
        system = example1_system()
        asp_solutions_for_peer(system, "P1")
        fetched = {(e.provider, e.relation)
                   for e in system.exchange_log.events("P1")}
        assert fetched == {("P2", "R2"), ("P3", "R3")}
        assert all(e.purpose == "asp specification"
                   for e in system.exchange_log.events("P1"))


class TestExchangeLog:
    def test_record_and_query(self):
        log = ExchangeLog()
        log.record("P1", "P2", "R2", 5, purpose="import")
        log.record("P1", "P3", "R3", 2)
        log.record("P2", "P3", "R3", 2)
        assert len(log) == 3
        assert len(log.events("P1")) == 2
        assert log.total_tuples() == 9

    def test_local_reads_skipped(self):
        log = ExchangeLog()
        log.record("P1", "P1", "R1", 10)
        assert len(log) == 0

    def test_clear(self):
        log = ExchangeLog()
        log.record("P1", "P2", "R2", 1)
        log.clear()
        assert len(log) == 0

    def test_event_rendering(self):
        event = ExchangeEvent("P1", "P2", "R2", 5, "import")
        assert "P1 <- P2" in str(event)
        assert "5 tuples" in str(event)
        assert "import" in str(event)
