"""Unit tests for Section 3.2's two ways of handling local ICs.

"One simple way ... consists in using program denial constraints" — which
*prunes* IC-violating solutions; "A more flexible alternative ... consists
in having the specification program split in two layers, where the first
one builds the solutions, without considering the local ICs, and the
second one repairs the solutions wrt the local ICs".
"""

import pytest

from repro.core import (
    DataExchange,
    GavSpecification,
    Peer,
    PeerSystem,
    SystemError_,
    TrustRelation,
    asp_solutions_for_peer,
    solutions_for_peer,
)
from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    Fact,
    FunctionalDependency,
    InclusionDependency,
    RelAtom,
    TupleGeneratingConstraint,
    Variable,
    parse_query,
)

X, Y = Variable("X"), Variable("Y")


def import_vs_fd_system():
    """An import that violates the local FD: A(k, own) vs imported
    (k, imported)."""
    fd = FunctionalDependency("A", [0], [1], arity=2)
    p1 = Peer("P1", DatabaseSchema.of({"A": 2}), local_ics=[fd])
    p2 = Peer("P2", DatabaseSchema.of({"B": 2}))
    instances = {
        "P1": DatabaseInstance(p1.schema, {"A": [("k", "own")]}),
        "P2": DatabaseInstance(p2.schema, {"B": [("k", "imported")]}),
    }
    dec = DataExchange("P1", "P2", InclusionDependency(
        "B", "A", child_arity=2, parent_arity=2, name="imp"))
    return PeerSystem([p1, p2], instances, [dec],
                      TrustRelation([("P1", "less", "P2")]))


class TestLayeredMode:
    def test_matches_definition4(self):
        system = import_vs_fd_system()
        asp = asp_solutions_for_peer(system, "P1")
        model = solutions_for_peer(system, "P1")
        assert asp == model
        assert len(asp) == 1
        assert asp[0].tuples("A") == frozenset({("k", "imported")})

    def test_final_layer_program_shape(self):
        system = import_vs_fd_system()
        fd = system.peer("P1").local_ics[0]
        dec = system.exchanges[0].constraint
        spec = GavSpecification(system.global_instance(), [dec],
                                changeable={"A"}, local_ics=[fd])
        assert spec.uses_final_layer
        text = spec.program.pretty(sort=True)
        # layer B copies layer A with a deletion exception
        assert "a_f(X0, X1) :- a_p(X0, X1), not -a_f(X0, X1)." in text
        # FD repair triggers on the layer-A state, deletes in layer B
        assert "-a_f(X0, X1) v -a_f(X0, Y1) :- a_p(X0, X1), " \
            "a_p(X0, Y1), X1 != Y1." in text
        # the DEC is re-enforced over the final state (via a sat-witness
        # predicate defined from a_f)
        assert "sat_2(X0, X1) :- a_f(X0, X1)." in text
        assert ":- b(X0, X1), not sat_2(X0, X1)." in text

    def test_query_program_uses_final_layer(self):
        system = import_vs_fd_system()
        fd = system.peer("P1").local_ics[0]
        dec = system.exchanges[0].constraint
        spec = GavSpecification(system.global_instance(), [dec],
                                changeable={"A"}, local_ics=[fd])
        answers = spec.query_program_answers(
            parse_query("q(X, Y) := A(X, Y)"))
        assert answers == {("k", "imported")}

    def test_tgd_local_ic_rejected(self):
        schema = DatabaseSchema.of({"A": 2, "B": 2})
        instance = DatabaseInstance(schema, {"A": [("k", "v")]})
        tgd = TupleGeneratingConstraint(
            antecedent=[RelAtom("A", [X, Y])],
            consequent=[RelAtom("B", [X, Y])], name="local_tgd")
        spec = GavSpecification(instance, [], changeable={"A", "B"},
                                local_ics=[tgd])
        with pytest.raises(SystemError_):
            _ = spec.program


class TestDenialMode:
    def test_denial_mode_prunes_instead_of_repairing(self):
        """The paper's "simple way": when the import forces an FD
        violation, the pruned program has NO solutions (the violation
        cannot be avoided), while the layered one repairs it."""
        system = import_vs_fd_system()
        fd = system.peer("P1").local_ics[0]
        dec = system.exchanges[0].constraint
        pruning = GavSpecification(system.global_instance(), [dec],
                                   changeable={"A"}, local_ics=[fd],
                                   local_ic_mode="denial")
        assert pruning.solutions() == []
        layered = GavSpecification(system.global_instance(), [dec],
                                   changeable={"A"}, local_ics=[fd],
                                   local_ic_mode="layered")
        assert len(layered.solutions()) == 1

    def test_denial_mode_keeps_consistent_solutions(self):
        """When solutions do not violate the IC, both modes coincide."""
        fd = FunctionalDependency("A", [0], [1], arity=2)
        schema = DatabaseSchema.of({"A": 2, "B": 2})
        instance = DatabaseInstance(schema, {
            "A": [("k", "v")], "B": [("j", "w")]})
        dec = InclusionDependency("B", "A", child_arity=2, parent_arity=2)
        for mode in ("denial", "layered"):
            spec = GavSpecification(instance, [dec], changeable={"A"},
                                    local_ics=[fd], local_ic_mode=mode)
            (solution,) = spec.solutions()
            assert solution.tuples("A") == frozenset(
                {("k", "v"), ("j", "w")})

    def test_unknown_mode_rejected(self):
        schema = DatabaseSchema.of({"A": 1})
        instance = DatabaseInstance(schema)
        with pytest.raises(SystemError_):
            GavSpecification(instance, [], changeable={"A"},
                             local_ic_mode="zzz")


class TestTradingScenario:
    """The examples/trading_network.py scenario, pinned as a test."""

    def make_system(self):
        S, P, P2 = Variable("S"), Variable("P"), Variable("P2")
        from repro.relational import EqualityGeneratingConstraint
        retail = Peer("Retail", DatabaseSchema.of({"Catalog": 2}),
                      local_ics=[FunctionalDependency(
                          "Catalog", [0], [1], arity=2)])
        supplier = Peer("Supplier", DatabaseSchema.of({"Official": 2}))
        partner = Peer("Partner",
                       DatabaseSchema.of({"PartnerListing": 2}))
        instances = {
            "Retail": DatabaseInstance(retail.schema, {"Catalog": [
                ("umbrella", 12), ("teapot", 30), ("lamp", 40),
                ("chair", 75)]}),
            "Supplier": DatabaseInstance(supplier.schema, {"Official": [
                ("umbrella", 12), ("teapot", 25), ("rug", 99)]}),
            "Partner": DatabaseInstance(partner.schema,
                                        {"PartnerListing": [
                                            ("lamp", 45), ("chair", 75)]}),
        }
        return PeerSystem(
            [retail, supplier, partner], instances,
            [DataExchange("Retail", "Supplier", InclusionDependency(
                "Official", "Catalog", child_arity=2, parent_arity=2,
                name="official")),
             DataExchange("Retail", "Partner",
                          EqualityGeneratingConstraint(
                              antecedent=[
                                  RelAtom("Catalog", [S, P]),
                                  RelAtom("PartnerListing", [S, P2])],
                              equalities=[(P, P2)], name="agree"))],
            TrustRelation([("Retail", "less", "Supplier"),
                           ("Retail", "same", "Partner")]))

    def test_certified_catalog(self):
        system = self.make_system()
        from repro.core import PeerConsistentEngine
        engine = PeerConsistentEngine(system, method="asp")
        result = engine.peer_consistent_answers(
            "Retail", parse_query("q(S, P) := Catalog(S, P)"))
        assert set(result.answers) == {
            ("umbrella", 12), ("teapot", 25), ("rug", 99), ("chair", 75)}

    def test_asp_equals_model(self):
        system = self.make_system()
        assert asp_solutions_for_peer(system, "Retail") == \
            solutions_for_peer(system, "Retail")

    def test_two_solutions_lamp_dispute(self):
        system = self.make_system()
        solutions = solutions_for_peer(system, "Retail")
        assert len(solutions) == 2
        lamp_prices = {frozenset(p for (s, p) in sol.tuples("Catalog")
                                 if s == "lamp")
                       for sol in solutions}
        assert lamp_prices == {frozenset({40}), frozenset()}
