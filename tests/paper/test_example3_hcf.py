"""EX4 — Example 3 / Section 4.1: HCF shifting of the choice program.

The paper shifts rule (9) into two non-disjunctive rules, each retaining
the choice goal, and argues the program is HCF because the program minus
its choice goals is HCF [6].  Shifting must preserve the answer sets.
"""

from repro.core import GavSpecification
from repro.datalog import (
    AnswerSetEngine,
    can_shift,
    is_head_cycle_free,
    parse_rule,
    shift_program,
    shift_rule,
)
from repro.workloads import appendix_instance, section31_dec


def make_program():
    spec = GavSpecification(appendix_instance(), [section31_dec()],
                            changeable={"R1", "R2"})
    return spec.program


class TestExample3Shift:
    RULE9 = ("-r1p(X, Y) v r2p(X, W) :- r1(X, Y), s1(Z, Y), "
             "not aux1(X, Z), s2(Z, W), choice((X, Z), (W)).")

    def test_shifted_rules_match_paper(self):
        shifted = shift_rule(parse_rule(self.RULE9))
        texts = sorted(str(r) for r in shifted)
        assert texts == [
            "-r1p(X, Y) :- r1(X, Y), s1(Z, Y), not aux1(X, Z), "
            "s2(Z, W), choice((X, Z), (W)), not r2p(X, W).",
            "r2p(X, W) :- r1(X, Y), s1(Z, Y), not aux1(X, Z), "
            "s2(Z, W), choice((X, Z), (W)), not -r1p(X, Y).",
        ]

    def test_choice_goal_retained_in_both(self):
        shifted = shift_rule(parse_rule(self.RULE9))
        assert all(r.choice_goal() is not None for r in shifted)


class TestSection31ProgramShift:
    def test_program_is_hcf_with_choice_ignored(self):
        assert is_head_cycle_free(make_program())
        assert can_shift(make_program())

    def test_shift_preserves_answer_sets(self):
        program = make_program()
        shifted = shift_program(program)
        assert not shifted.has_disjunction()
        original_models = AnswerSetEngine(
            program, shift_hcf=False).answer_sets()
        shifted_models = AnswerSetEngine(shifted).answer_sets()

        def render(models):
            return sorted(sorted(str(l) for l in m
                                 if not l.predicate.startswith(("chosen",
                                                                "diff")))
                          for m in models)

        assert render(original_models) == render(shifted_models)

    def test_shift_preserves_model_count(self):
        program = make_program()
        original = AnswerSetEngine(program, shift_hcf=False).answer_sets()
        shifted = AnswerSetEngine(shift_program(program)).answer_sets()
        assert len(original) == len(shifted) == 4
