"""EX5 — the Appendix: LAV three-layer program, stable models M1-M4.

Facts: R1(a,b), S1(c,b), S2(c,e), S2(c,f).  The paper lists four stable
models M1-M4 and their solutions::

    r^M1 = {S'1(c,b), S'2(c,e), S'2(c,f), R'1(a,b), R'2(a,f)}
    r^M2 = {S'1(c,b), S'2(c,e), S'2(c,f)}
    r^M3 = {S'1(c,b), S'2(c,e), S'2(c,f), R'1(a,b), R'2(a,e)}
    r^M4 = r^M2

(The printed closure constraints lack the `not`; we implement the
corrected version — see DESIGN.md errata.)
"""

import pytest

from repro.core import (
    LavSpecification,
    PeerConsistentEngine,
    SourceLabel,
    labels_for_peer,
)
from repro.core.asp_gav import asp_solutions_for_peer
from repro.workloads import (
    appendix_instance,
    section31_dec,
    section31_system,
)

LABELS = {
    "R1": SourceLabel.CLOSED,
    "R2": SourceLabel.OPEN,
    "S1": SourceLabel.CLOPEN,
    "S2": SourceLabel.CLOPEN,
}


def make_spec():
    return LavSpecification(appendix_instance(), [section31_dec()],
                            LABELS)


def _annotated(model, annotation):
    out = set()
    for literal in model:
        if literal.positive and literal.atom.args \
                and str(literal.atom.args[-1]) == annotation:
            out.add(str(literal))
    return out


class TestLabels:
    def test_auto_labels_match_appendix(self):
        system = section31_system()
        assert labels_for_peer(system, "P") == LABELS

    def test_labelling_rejects_two_sided_relations(self):
        from repro.core import SystemError_
        from repro.relational import (RelAtom, TupleGeneratingConstraint,
                                      Variable)
        from repro.core import DataExchange, Peer, PeerSystem, \
            TrustRelation
        from repro.relational import DatabaseSchema, DatabaseInstance
        X, Y = Variable("X"), Variable("Y")
        p = Peer("P", DatabaseSchema.of({"A": 1}))
        q = Peer("Q", DatabaseSchema.of({"B": 1}))
        # A occurs in the antecedent and the consequent
        dec = TupleGeneratingConstraint(
            antecedent=[RelAtom("A", [X]), RelAtom("B", [X])],
            consequent=[RelAtom("A", [X])], name="loop")
        system = PeerSystem(
            [p, q],
            {"P": DatabaseInstance(p.schema),
             "Q": DatabaseInstance(q.schema)},
            [DataExchange("P", "Q", dec)],
            TrustRelation([("P", "less", "Q")]))
        with pytest.raises(SystemError_):
            labels_for_peer(system, "P")


class TestStableModels:
    def test_four_models(self):
        assert len(make_spec().answer_sets()) == 4

    def test_td_layer_identical_across_models(self):
        expected_td = {
            "r1_p(a, b, td)", "s1_p(c, b, td)",
            "s2_p(c, e, td)", "s2_p(c, f, td)"}
        for model in make_spec().answer_sets():
            assert _annotated(model, "td") == expected_td

    def test_tss_projections_match_m1_to_m4(self):
        projections = sorted(
            tuple(sorted(_annotated(model, "tss")))
            for model in make_spec().answer_sets())
        base = ("s1_p(c, b, tss)", "s2_p(c, e, tss)", "s2_p(c, f, tss)")
        assert projections == sorted([
            tuple(sorted(base + ("r1_p(a, b, tss)",
                                 "r2_p(a, f, tss)"))),   # M1
            base,                                         # M2
            tuple(sorted(base + ("r1_p(a, b, tss)",
                                 "r2_p(a, e, tss)"))),   # M3
            base,                                         # M4
        ])

    def test_chosen_is_functional(self):
        for model in make_spec().answer_sets():
            chosen = [l for l in model if l.predicate == "chosen"]
            assert len(chosen) == 1
            assert str(chosen[0]) in ("chosen(a, c, e)",
                                      "chosen(a, c, f)")

    def test_fa_only_on_closed_ta_only_on_open(self):
        for model in make_spec().answer_sets():
            for literal in model:
                if not literal.positive or not literal.atom.args:
                    continue
                annotation = str(literal.atom.args[-1])
                if annotation == "fa":
                    assert literal.predicate == "r1_p"  # R1 is closed
                if annotation == "ta":
                    assert literal.predicate == "r2_p"  # R2 is open


class TestSolutions:
    EXPECTED = sorted([
        tuple(sorted({"S1(c, b)", "S2(c, e)", "S2(c, f)", "R1(a, b)",
                      "R2(a, f)"})),
        tuple(sorted({"S1(c, b)", "S2(c, e)", "S2(c, f)"})),
        tuple(sorted({"S1(c, b)", "S2(c, e)", "S2(c, f)", "R1(a, b)",
                      "R2(a, e)"})),
    ])

    def test_three_distinct_solutions(self):
        solutions = make_spec().solutions()
        rendered = sorted(tuple(sorted(str(f) for f in s.facts()))
                          for s in solutions)
        assert rendered == self.EXPECTED

    def test_lav_agrees_with_gav(self):
        system = section31_system()
        lav = PeerConsistentEngine(system, method="lav").solutions("P")
        gav = asp_solutions_for_peer(system, "P")
        assert lav == gav
