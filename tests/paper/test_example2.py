"""EX2 — Example 2: FO rewriting and the peer consistent answers.

The paper rewrites Q : R1(x,y) into formula (1)::

    Q'': [R1(x,y) ∧ ∀z1 (R3(x,z1) ∧ ¬∃z2 R2(x,z2) → z1 = y)] ∨ R2(x,y)

and states: "The answers to query (1) are (a,b), (c,d), (a,e), precisely
the peer consistent answers to query Q for peer P1".
"""

import pytest

from repro.core import (
    PeerConsistentEngine,
    answers_via_rewriting,
    peer_consistent_answers,
    rewrite_peer_query,
)
from repro.relational import parse_formula
from repro.workloads import (
    example1_query,
    example1_system,
    example2_rewritten_text,
)

EXPECTED_PCA = {("a", "b"), ("c", "d"), ("a", "e")}


class TestPaperFormula:
    def test_verbatim_formula_answers_on_paper_instance(self):
        """Formula (1) evaluated over the raw global instance returns the
        paper's three tuples."""
        system = example1_system()
        formula = parse_formula(example2_rewritten_text())
        from repro.relational import Query, Variable
        query = Query("q", [Variable("X"), Variable("Y")], formula)
        assert query.answers(system.global_instance()) == EXPECTED_PCA


class TestLibraryRewriting:
    def test_rewriting_answers(self):
        system = example1_system()
        answers = answers_via_rewriting(system, "P1", example1_query())
        assert answers == EXPECTED_PCA

    def test_rewriting_matches_model_theoretic(self):
        system = example1_system()
        model = peer_consistent_answers(system, "P1", example1_query())
        assert set(model.answers) == EXPECTED_PCA

    def test_rewritten_query_shape(self):
        system = example1_system()
        rewritten = rewrite_peer_query(system, "P1", example1_query())
        text = str(rewritten)
        # a guarded base disjunct plus the R2 import disjunct
        assert "R2(X, Y)" in text
        assert "forall" in text and "R3(X," in text

    def test_exchange_log_records_the_two_requests(self):
        """Example 2's narrative: P1 queries P2 for R2, then P3 for R3."""
        system = example1_system()
        answers_via_rewriting(system, "P1", example1_query())
        providers = {(e.provider, e.relation)
                     for e in system.exchange_log.events("P1")}
        assert providers == {("P2", "R2"), ("P3", "R3")}


class TestAllMethodsAgree:
    @pytest.mark.parametrize("method", ["model", "asp", "rewrite"])
    def test_method(self, method):
        system = example1_system()
        engine = PeerConsistentEngine(system, method=method)
        result = engine.peer_consistent_answers("P1", example1_query())
        assert set(result.answers) == EXPECTED_PCA


class TestProtectionCornerCase:
    """Where the verbatim formula (1) and Definition 5 diverge — the
    refined protection (DESIGN.md errata) is required.

    Instances: r1 = {R1(a,b)}, r2 = {R2(a,f)}, r3 = {R3(a,f)}.
    R1(a,f) is forced by the import; the pair (R1(a,f), R3(a,f)) is
    consistent, so R3(a,f) need not leave — deleting R1(a,b) or deleting
    R3(a,f) are both minimal, hence R1(a,b) is NOT peer consistent.
    """

    def setup_method(self):
        self.system = example1_system(r1=[("a", "b")], r2=[("a", "f")],
                                      r3=[("a", "f")])

    def test_model_theoretic_excludes_ab(self):
        result = peer_consistent_answers(self.system, "P1",
                                         example1_query())
        assert set(result.answers) == {("a", "f")}

    def test_library_rewriting_matches_model(self):
        answers = answers_via_rewriting(self.system, "P1",
                                        example1_query())
        assert answers == {("a", "f")}

    def test_verbatim_formula_overprotects(self):
        """Documented erratum: the paper's (1) keeps (a,b) here."""
        from repro.relational import Query, Variable
        formula = parse_formula(example2_rewritten_text())
        query = Query("q", [Variable("X"), Variable("Y")], formula)
        verbatim = query.answers(self.system.global_instance())
        assert ("a", "b") in verbatim  # the reason we refined it
