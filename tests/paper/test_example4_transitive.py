"""EX6 — Example 4: the transitive case.

P --(DEC (3))--> Q --(∀xy U(x,y) → S1(x,y))--> C, all `less` trust.
Instances: r1={(a,b)}, s1={}, r2={}, s2={(c,e),(c,f)}, u={(c,b)}.

The paper: "If we analyze each peer locally, the solution for Q would
contain the tuple S1(c,b) added; and P would have only one solution,
corresponding to the original instances".  Globally, the combined program
has exactly three solutions::

    {S'1(c,b), R'2(a,f), R'1(a,b)},  {S'1(c,b)},  {S'1(c,b), R'2(a,e),
    R'1(a,b)}
    (each together with the unchanged S2 and U facts).
"""

from repro.core import (
    TransitiveSpecification,
    global_solutions,
    solutions_for_peer,
    transitive_peer_consistent_answers,
)
from repro.relational import Fact, parse_query
from repro.workloads import example4_system

BASE = {"S2(c, e)", "S2(c, f)", "U(c, b)", "S1(c, b)"}

EXPECTED_GLOBAL = sorted([
    tuple(sorted(BASE | {"R1(a, b)", "R2(a, f)"})),
    tuple(sorted(BASE)),
    tuple(sorted(BASE | {"R1(a, b)", "R2(a, e)"})),
])


class TestLocalViews:
    def test_q_local_solution_adds_s1cb(self):
        system = example4_system()
        solutions = solutions_for_peer(system, "Q")
        assert len(solutions) == 1
        assert Fact("S1", ("c", "b")) in solutions[0]

    def test_p_local_solution_is_original(self):
        # locally, s1 = {} so DEC (3) is vacuously satisfied for P
        system = example4_system()
        solutions = solutions_for_peer(system, "P")
        assert solutions == [system.global_instance()]


class TestCombinedProgram:
    def test_program_uses_primed_s1_in_p_rules(self):
        spec = TransitiveSpecification(example4_system(), "P")
        text = spec.program.pretty(sort=True)
        # rules (10)/(11): P's trigger reads S'1, not S1
        assert "s1_p(Z, Y)" in text
        # rule (13): Q's import from U
        assert "s1_p(X0, X1) :- u(X0, X1)" in text

    def test_no_cycles_detected(self):
        spec = TransitiveSpecification(example4_system(), "P")
        assert not spec.has_cycles

    def test_three_global_solutions(self):
        solutions = global_solutions(example4_system(), "P")
        rendered = sorted(tuple(sorted(str(f) for f in s.facts()))
                          for s in solutions)
        assert rendered == EXPECTED_GLOBAL

    def test_global_differs_from_direct(self):
        """The crux of Section 4.3: direct solutions for P miss the
        transitively imported S1(c,b) and its consequences."""
        system = example4_system()
        direct = solutions_for_peer(system, "P")
        combined = global_solutions(system, "P")
        assert direct != combined
        assert len(direct) == 1 and len(combined) == 3


class TestTransitivePCA:
    def test_r1_query(self):
        # R1(a,b) is absent from the all-deleted global solution
        result = transitive_peer_consistent_answers(
            example4_system(), "P", parse_query("q(X, Y) := R1(X, Y)"))
        assert set(result.answers) == set()

    def test_r2_query(self):
        # R2 differs across global solutions: nothing certain
        result = transitive_peer_consistent_answers(
            example4_system(), "P", parse_query("q(X, Y) := R2(X, Y)"))
        assert set(result.answers) == set()

    def test_q_perspective(self):
        # from Q's root, S1(c,b) is certain
        result = transitive_peer_consistent_answers(
            example4_system(), "Q", parse_query("q(X, Y) := S1(X, Y)"))
        assert set(result.answers) == {("c", "b")}


class TestCycleDetection:
    def test_cyclic_network_flagged(self):
        from repro.core import DataExchange, Peer, PeerSystem, \
            TrustRelation
        from repro.relational import (DatabaseInstance, DatabaseSchema,
                                      InclusionDependency)
        a = Peer("A", DatabaseSchema.of({"RA": 1}))
        b = Peer("B", DatabaseSchema.of({"RB": 1}))
        system = PeerSystem(
            [a, b],
            {"A": DatabaseInstance(a.schema, {"RA": [("x",)]}),
             "B": DatabaseInstance(b.schema)},
            [DataExchange("A", "B", InclusionDependency(
                "RB", "RA", child_arity=1, parent_arity=1)),
             DataExchange("B", "A", InclusionDependency(
                 "RA", "RB", child_arity=1, parent_arity=1))],
            TrustRelation([("A", "less", "B"), ("B", "less", "A")]))
        spec = TransitiveSpecification(system, "A")
        assert spec.has_cycles
        # the combined program still has answer sets here (benign cycle)
        assert spec.solutions()
