"""EX1 — Example 1 of the paper, reproduced exactly.

System: peers P1, P2, P3 with r1 = {R1(a,b), R1(s,t)},
r2 = {R2(c,d), R2(a,e)}, r3 = {R3(a,f), R3(s,u)};
trust = {(P1,less,P2), (P1,same,P3)};
Σ(P1,P2) = {∀xy (R2(x,y) → R1(x,y))},
Σ(P1,P3) = {∀xyz (R1(x,y) ∧ R3(x,z) → y = z)}.

Expected (quoted from the paper):

* the intermediate stage-1 repair r1 adds R1(c,d) and R1(a,e) — "In this
  example there is only one repair at this stage";
* the solutions for P1 are exactly
  r'  = {R1(a,b), R1(s,t), R1(c,d), R1(a,e), R2(c,d), R2(a,e)} and
  r'' = {R1(a,b), R1(c,d), R1(a,e), R2(c,d), R2(a,e), R3(s,u)}.
"""

from repro.core import asp_solutions_for_peer, solutions_for_peer
from repro.core.solutions import SolutionSearch
from repro.relational import Fact
from repro.workloads import example1_system


def _fact_sets(instances):
    return sorted(tuple(sorted(str(f) for f in inst.facts()))
                  for inst in instances)


EXPECTED_SOLUTIONS = sorted([
    tuple(sorted({"R1(a, b)", "R1(s, t)", "R1(c, d)", "R1(a, e)",
                  "R2(c, d)", "R2(a, e)"})),
    tuple(sorted({"R1(a, b)", "R1(c, d)", "R1(a, e)",
                  "R2(c, d)", "R2(a, e)", "R3(s, u)"})),
])


class TestStage1:
    def test_single_stage1_repair(self):
        search = SolutionSearch(example1_system(), "P1")
        stage1 = search.stage1_repairs()
        assert len(stage1) == 1

    def test_stage1_adds_the_two_imports(self):
        search = SolutionSearch(example1_system(), "P1")
        (repair,) = search.stage1_repairs()
        assert repair.tuples("R1") == frozenset(
            {("a", "b"), ("s", "t"), ("c", "d"), ("a", "e")})
        # other peers' data untouched
        assert repair.tuples("R2") == frozenset({("c", "d"), ("a", "e")})
        assert repair.tuples("R3") == frozenset({("a", "f"), ("s", "u")})


class TestSolutions:
    def test_exactly_the_two_paper_solutions(self):
        solutions = solutions_for_peer(example1_system(), "P1")
        assert _fact_sets(solutions) == EXPECTED_SOLUTIONS

    def test_asp_route_agrees(self):
        solutions = asp_solutions_for_peer(example1_system(), "P1")
        assert _fact_sets(solutions) == EXPECTED_SOLUTIONS

    def test_asp_minimality_filter_is_noop(self):
        filtered = asp_solutions_for_peer(example1_system(), "P1",
                                          minimal_only=True)
        raw = asp_solutions_for_peer(example1_system(), "P1",
                                     minimal_only=False)
        assert filtered == raw

    def test_solutions_satisfy_all_trusted_decs(self):
        system = example1_system()
        for solution in solutions_for_peer(system, "P1"):
            for exchange in system.trusted_decs_of("P1"):
                assert exchange.constraint.holds_in(solution)

    def test_solutions_keep_less_trusted_peer_fixed(self):
        system = example1_system()
        for solution in solutions_for_peer(system, "P1"):
            assert solution.tuples("R2") == frozenset(
                {("c", "d"), ("a", "e")})

    def test_forced_deletion_of_r3_af(self):
        # R1(a,e) is pinned by R2(a,e); hence R3(a,f) is out everywhere.
        system = example1_system()
        for solution in solutions_for_peer(system, "P1"):
            assert Fact("R3", ("a", "f")) not in solution
