"""EX3 — Section 3.1: the GAV choice program under DEC (3).

The program (4)-(9) is generated from the DEC and trust relation; on the
Appendix instances it must have four stable models whose solutions are

    r^M1 = {S1(c,b), S2(c,e), S2(c,f), R1(a,b), R2(a,f)}
    r^M2 = {S1(c,b), S2(c,e), S2(c,f)}
    r^M3 = {S1(c,b), S2(c,e), S2(c,f), R1(a,b), R2(a,e)}
    r^M4 = r^M2

(from the Appendix; the Section 3.1 text describes the same program).
"""

import pytest

from repro.core import GavSpecification, asp_solutions_for_peer
from repro.core.solutions import solutions_for_peer
from repro.datalog import is_head_cycle_free
from repro.relational import parse_query
from repro.workloads import appendix_instance, section31_dec, \
    section31_system

EXPECTED_SOLUTION_SETS = sorted([
    tuple(sorted({"S1(c, b)", "S2(c, e)", "S2(c, f)", "R1(a, b)",
                  "R2(a, f)"})),
    tuple(sorted({"S1(c, b)", "S2(c, e)", "S2(c, f)"})),
    tuple(sorted({"S1(c, b)", "S2(c, e)", "S2(c, f)", "R1(a, b)",
                  "R2(a, e)"})),
])


def make_spec():
    return GavSpecification(appendix_instance(), [section31_dec()],
                            changeable={"R1", "R2"})


class TestProgramShape:
    def test_program_contains_paper_rules(self):
        text = make_spec().program.pretty(sort=True)
        # rule (4): persistence with exception
        assert "r1_p(X0, X1) :- r1(X0, X1), not -r1_p(X0, X1)." in text
        # rule (5) simplified: R2 only grows, no exception literal
        assert "r2_p(X0, X1) :- r2(X0, X1)." in text
        # rule (6): deletion when no witness
        assert ("-r1_p(X, Y) :- r1(X, Y), s1(Z, Y), not aux1_1(X, Z), "
                "not aux2_2(Z).") in text
        # rules (7) and (8)
        assert "aux1_1(X, Z) :- r2(X, W), s2(Z, W)." in text
        assert "aux2_2(Z) :- s2(Z, W)." in text
        # rule (9): disjunctive choice rule
        assert ("-r1_p(X, Y) v r2_p(X, W) :- r1(X, Y), s1(Z, Y), "
                "not aux1_1(X, Z), s2(Z, W), choice((X, Z), (W))."
                ) in text

    def test_program_is_hcf(self):
        """Section 4.1's premise: this choice program is HCF."""
        assert is_head_cycle_free(make_spec().program)


class TestStableModels:
    def test_four_answer_sets(self):
        assert len(make_spec().answer_sets()) == 4

    def test_three_distinct_solutions(self):
        solutions = make_spec().solutions()
        rendered = sorted(tuple(sorted(str(f) for f in s.facts()))
                          for s in solutions)
        assert rendered == EXPECTED_SOLUTION_SETS

    def test_q_fixed_relations_never_change(self):
        for solution in make_spec().solutions():
            assert solution.tuples("S1") == frozenset({("c", "b")})
            assert solution.tuples("S2") == frozenset(
                {("c", "e"), ("c", "f")})


class TestAgainstDefinition4:
    def test_asp_equals_model_theoretic(self):
        system = section31_system()
        asp = asp_solutions_for_peer(system, "P")
        model = solutions_for_peer(system, "P")
        assert asp == model

    @pytest.mark.parametrize("r1,s1,r2,s2", [
        # no violation at all: the original instance is the only solution
        ([("a", "b")], [("zz", "q")], [], [("c", "e")]),
        # violation without any witness: deletion forced (rule (6))
        ([("d", "m")], [("a", "m")], [], [("zz", "g")]),
        # two independent violations
        ([("d1", "m1"), ("d2", "m2")], [("a1", "m1"), ("a2", "m2")],
         [], [("a1", "t1"), ("a2", "t2")]),
        # violation already satisfied through existing R2/S2 pair
        ([("d", "m")], [("a", "m")], [("d", "t")], [("a", "t")]),
    ])
    def test_variants(self, r1, s1, r2, s2):
        system = section31_system(r1=r1, s1=s1, r2=r2, s2=s2)
        asp = asp_solutions_for_peer(system, "P")
        model = solutions_for_peer(system, "P")
        assert asp == model


class TestSkepticalQueryProgram:
    def test_section32_query(self):
        """Q(x,z) : ∃y (R1(x,y) ∧ R2(z,y)) — empty under skeptical
        semantics on the Appendix instances (R2 differs across
        solutions)."""
        spec = make_spec()
        query = parse_query("q(X, Z) := exists Y (R1(X, Y) & R2(Z, Y))")
        assert spec.query_program_answers(query) == set()

    def test_r1_query_skeptical(self):
        spec = make_spec()
        query = parse_query("q(X, Y) := R1(X, Y)")
        # R1(a,b) survives only in two of three solutions: not skeptical
        assert spec.query_program_answers(query) == set()

    def test_s1_query_certain(self):
        spec = make_spec()
        query = parse_query("q(X, Y) := S1(X, Y)")
        assert spec.query_program_answers(query) == {("c", "b")}

    def test_brave_answers(self):
        spec = make_spec()
        query = parse_query("q(X, Y) := R2(X, Y)")
        brave = spec.query_program_answers(query, skeptical=False)
        assert brave == {("a", "e"), ("a", "f")}
