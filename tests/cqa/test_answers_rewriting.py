"""Unit tests for consistent answers and the residue rewriting baseline."""

import pytest

from repro.cqa import (
    RewritingNotApplicable,
    consistent_answers,
    possible_answers,
    rewrite_query,
)
from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    DenialConstraint,
    FunctionalDependency,
    RelAtom,
    Variable,
    parse_query,
)

X, Y = Variable("X"), Variable("Y")
SCHEMA = DatabaseSchema.of({"R": 2, "S": 2})


def inst(**data):
    return DatabaseInstance(SCHEMA, data)


class TestConsistentAnswers:
    def test_classic_fd_example(self):
        db = inst(R=[("a", 1), ("a", 2), ("b", 3)])
        fd = FunctionalDependency("R", [0], [1], arity=2)
        q = parse_query("q(X, Y) := R(X, Y)")
        assert consistent_answers(db, q, [fd]) == {("b", 3)}

    def test_projection_survives_conflict(self):
        # the key value 'a' appears in every repair even though its second
        # attribute is disputed
        db = inst(R=[("a", 1), ("a", 2), ("b", 3)])
        fd = FunctionalDependency("R", [0], [1], arity=2)
        q = parse_query("q(X) := exists Y R(X, Y)")
        assert consistent_answers(db, q, [fd]) == {("a",), ("b",)}

    def test_possible_answers_union(self):
        db = inst(R=[("a", 1), ("a", 2)])
        fd = FunctionalDependency("R", [0], [1], arity=2)
        q = parse_query("q(X, Y) := R(X, Y)")
        assert possible_answers(db, q, [fd]) == {("a", 1), ("a", 2)}

    def test_consistent_db_answers_unchanged(self):
        db = inst(R=[("a", 1)])
        fd = FunctionalDependency("R", [0], [1], arity=2)
        q = parse_query("q(X, Y) := R(X, Y)")
        assert consistent_answers(db, q, [fd]) == {("a", 1)}

    def test_denial_constraint(self):
        db = inst(R=[("a", 1)], S=[("a", 1), ("b", 2)])
        denial = DenialConstraint(
            antecedent=[RelAtom("R", [X, Y]), RelAtom("S", [X, Y])])
        q = parse_query("q(X, Y) := S(X, Y)")
        assert consistent_answers(db, q, [denial]) == {("b", 2)}


class TestResidueRewriting:
    def test_fd_rewriting_matches_repairs(self):
        fd = FunctionalDependency("R", [0], [1], arity=2)
        q = parse_query("q(X, Y) := R(X, Y)")
        rewritten = rewrite_query(q, [fd])
        for rows in ([("a", 1), ("a", 2), ("b", 3)],
                     [("a", 1)],
                     [("a", 1), ("a", 2), ("b", 3), ("b", 4), ("c", 5)]):
            db = inst(R=rows)
            assert rewritten.answers(db) == \
                consistent_answers(db, q, [fd]), rows

    def test_denial_rewriting_matches_repairs(self):
        denial = DenialConstraint(
            antecedent=[RelAtom("R", [X, Y]), RelAtom("S", [X, Y])])
        q = parse_query("q(X, Y) := R(X, Y)")
        rewritten = rewrite_query(q, [denial])
        for r_rows, s_rows in (
                ([("a", 1)], [("a", 1)]),
                ([("a", 1), ("b", 2)], [("a", 1)]),
                ([("a", 1)], [("b", 2)])):
            db = inst(R=r_rows, S=s_rows)
            assert rewritten.answers(db) == \
                consistent_answers(db, q, [denial]), (r_rows, s_rows)

    def test_rewriting_leaves_unrelated_atoms_alone(self):
        fd = FunctionalDependency("R", [0], [1], arity=2)
        q = parse_query("q(X, Y) := S(X, Y)")
        rewritten = rewrite_query(q, [fd])
        assert rewritten.formula == q.formula

    def test_existential_queries_rejected(self):
        # Naive residues under ∃ would be sound but incomplete: with the FD
        # R:0→1 and R = {(a,1),(a,2),(b,3)}, q(X) := ∃Y R(X,Y) has the
        # consistent answer (a,) — every repair keeps some R(a,·) — yet no
        # single witness survives all repairs.  The rewriter refuses.
        fd = FunctionalDependency("R", [0], [1], arity=2)
        q = parse_query("q(X) := exists Y R(X, Y)")
        with pytest.raises(RewritingNotApplicable):
            rewrite_query(q, [fd])
        db = inst(R=[("a", 1), ("a", 2), ("b", 3)])
        assert consistent_answers(db, q, [fd]) == {("a",), ("b",)}

    def test_unsupported_query_shape_rejected(self):
        fd = FunctionalDependency("R", [0], [1], arity=2)
        q = parse_query("q(X, Y) := R(X, Y) | S(X, Y)")
        with pytest.raises(RewritingNotApplicable):
            rewrite_query(q, [fd])

    def test_unsupported_constraint_rejected(self):
        from repro.relational import InclusionDependency
        ind = InclusionDependency("R", "S", child_arity=2, parent_arity=2)
        q = parse_query("q(X, Y) := R(X, Y)")
        with pytest.raises(RewritingNotApplicable):
            rewrite_query(q, [ind])

    def test_constant_in_query_unifies(self):
        fd = FunctionalDependency("R", [0], [1], arity=2)
        q = parse_query("q(Y) := R(a, Y)")
        rewritten = rewrite_query(q, [fd])
        db = inst(R=[("a", 1), ("a", 2), ("b", 3)])
        assert rewritten.answers(db) == consistent_answers(db, q, [fd])
