"""Unit tests for the repair engine (Definition 1 + fixed predicates)."""

from itertools import chain, combinations

import pytest

from repro.cqa import RepairProblem, is_repair, repairs
from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    DenialConstraint,
    EqualityGeneratingConstraint,
    Fact,
    FunctionalDependency,
    InclusionDependency,
    RelAtom,
    TupleGeneratingConstraint,
    Variable,
)

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


def brute_force_repairs(instance, constraints, changeable=None,
                        insertable_facts=()):
    """Reference implementation: enumerate candidate instances directly."""
    changeable = set(changeable) if changeable is not None \
        else set(instance.relations())
    original_facts = sorted(instance.facts())
    deletable = [f for f in original_facts if f.relation in changeable]
    insertable = [f for f in insertable_facts
                  if f.relation in changeable and f not in instance]

    def powerset(items):
        return chain.from_iterable(combinations(items, n)
                                   for n in range(len(items) + 1))

    consistent = []
    for deletions in powerset(deletable):
        for insertions in powerset(insertable):
            candidate = instance.apply_change(insertions, deletions)
            if all(c.holds_in(candidate) for c in constraints):
                consistent.append(candidate)
    # keep Δ-minimal
    minimal = []
    for candidate in consistent:
        delta = candidate.delta(instance)
        if not any(other.delta(instance) < delta for other in consistent):
            minimal.append(candidate)
    return sorted(set(minimal), key=str)


class TestFDRepairs:
    SCHEMA = DatabaseSchema.of({"R": 2})

    def test_single_conflict_two_repairs(self):
        db = DatabaseInstance(self.SCHEMA,
                              {"R": [("a", "b"), ("a", "c"), ("d", "e")]})
        fd = FunctionalDependency("R", [0], [1], arity=2)
        result = repairs(RepairProblem(db, [fd]))
        assert len(result) == 2
        for repair in result:
            assert fd.holds_in(repair)
            assert Fact("R", ("d", "e")) in repair

    def test_independent_conflicts_multiply(self):
        db = DatabaseInstance(self.SCHEMA, {"R": [
            ("a", 1), ("a", 2), ("b", 1), ("b", 2), ("c", 9)]})
        fd = FunctionalDependency("R", [0], [1], arity=2)
        result = repairs(RepairProblem(db, [fd]))
        assert len(result) == 4  # 2 x 2

    def test_three_way_conflict(self):
        db = DatabaseInstance(self.SCHEMA,
                              {"R": [("a", 1), ("a", 2), ("a", 3)]})
        fd = FunctionalDependency("R", [0], [1], arity=2)
        result = repairs(RepairProblem(db, [fd]))
        assert len(result) == 3
        for repair in result:
            assert len(repair.tuples("R")) == 1

    def test_matches_brute_force(self):
        db = DatabaseInstance(self.SCHEMA, {"R": [
            ("a", 1), ("a", 2), ("b", 1), ("c", 9), ("c", 8)]})
        fd = FunctionalDependency("R", [0], [1], arity=2)
        expected = brute_force_repairs(db, [fd])
        actual = sorted(repairs(RepairProblem(db, [fd])), key=str)
        assert actual == expected

    def test_consistent_database_single_repair(self):
        db = DatabaseInstance(self.SCHEMA, {"R": [("a", 1), ("b", 2)]})
        fd = FunctionalDependency("R", [0], [1], arity=2)
        result = repairs(RepairProblem(db, [fd]))
        assert list(result) == [db]


class TestDenialRepairs:
    SCHEMA = DatabaseSchema.of({"P": 1, "Q": 1})

    def test_delete_either_side(self):
        db = DatabaseInstance(self.SCHEMA, {"P": [("a",)], "Q": [("a",)]})
        denial = DenialConstraint(
            antecedent=[RelAtom("P", [X]), RelAtom("Q", [X])])
        result = repairs(RepairProblem(db, [denial]))
        assert len(result) == 2

    def test_fixed_relation_forces_one_side(self):
        db = DatabaseInstance(self.SCHEMA, {"P": [("a",)], "Q": [("a",)]})
        denial = DenialConstraint(
            antecedent=[RelAtom("P", [X]), RelAtom("Q", [X])])
        result = repairs(RepairProblem(db, [denial], changeable={"P"}))
        assert len(result) == 1
        assert list(result)[0].tuples("P") == frozenset()

    def test_no_repair_when_everything_fixed(self):
        db = DatabaseInstance(self.SCHEMA, {"P": [("a",)], "Q": [("a",)]})
        denial = DenialConstraint(
            antecedent=[RelAtom("P", [X]), RelAtom("Q", [X])])
        result = repairs(RepairProblem(db, [denial], changeable=set()))
        assert len(result) == 0


class TestInclusionRepairs:
    SCHEMA = DatabaseSchema.of({"Child": 2, "Parent": 2})

    def test_insert_or_delete(self):
        db = DatabaseInstance(self.SCHEMA,
                              {"Child": [("a", "b")], "Parent": []})
        ind = InclusionDependency("Child", "Parent", child_arity=2,
                                  parent_arity=2)
        result = repairs(RepairProblem(db, [ind]))
        reprs = sorted(str(r) for r in result)
        assert reprs == ["{Child(a, b), Parent(a, b)}", "{}"]

    def test_import_into_fixed_child(self):
        # parent fixed: only deletion of child... child fixed: only insert
        db = DatabaseInstance(self.SCHEMA,
                              {"Child": [("a", "b")], "Parent": []})
        ind = InclusionDependency("Child", "Parent", child_arity=2,
                                  parent_arity=2)
        result = repairs(RepairProblem(db, [ind], changeable={"Parent"}))
        assert len(result) == 1
        assert Fact("Parent", ("a", "b")) in list(result)[0]

    def test_cascading_inclusions(self):
        schema = DatabaseSchema.of({"A": 1, "B": 1, "C": 1})
        db = DatabaseInstance(schema, {"A": [("x",)]})
        ab = InclusionDependency("A", "B", child_arity=1, parent_arity=1)
        bc = InclusionDependency("B", "C", child_arity=1, parent_arity=1)
        result = repairs(RepairProblem(db, [ab, bc]))
        reprs = sorted(str(r) for r in result)
        assert reprs == ["{A(x), B(x), C(x)}", "{}"]


class TestPaperSection31:
    """The extended example of Section 3.1 as a repair problem."""

    SCHEMA = DatabaseSchema.of({"R1": 2, "R2": 2, "S1": 2, "S2": 2})

    def dec3(self):
        return TupleGeneratingConstraint(
            antecedent=[RelAtom("R1", [X, Y]), RelAtom("S1", [Z, Y])],
            consequent=[RelAtom("R2", [X, W]), RelAtom("S2", [Z, W])],
            name="dec3")

    def test_appendix_solutions(self):
        db = DatabaseInstance(self.SCHEMA, {
            "R1": [("a", "b")], "S1": [("c", "b")],
            "S2": [("c", "e"), ("c", "f")]})
        result = repairs(RepairProblem(db, [self.dec3()],
                                       changeable={"R1", "R2"}))
        reprs = sorted(str(r) for r in result)
        assert reprs == [
            "{R1(a, b), R2(a, e), S1(c, b), S2(c, e), S2(c, f)}",
            "{R1(a, b), R2(a, f), S1(c, b), S2(c, e), S2(c, f)}",
            "{S1(c, b), S2(c, e), S2(c, f)}",
        ]

    def test_no_s2_witness_forces_deletion(self):
        # rule (6) case: aux2(z) is empty for the conflicting z
        db = DatabaseInstance(self.SCHEMA, {
            "R1": [("d", "m")], "S1": [("a", "m")],
            "S2": [("zz", "g")]})
        result = repairs(RepairProblem(db, [self.dec3()],
                                       changeable={"R1", "R2"}))
        assert len(result) == 1
        assert list(result)[0].tuples("R1") == frozenset()


class TestEGDWithFixed:
    SCHEMA = DatabaseSchema.of({"R1": 2, "R3": 2})

    def test_example1_stage2_shape(self):
        # Σ(P1,P3) with both sides changeable: delete either tuple
        db = DatabaseInstance(self.SCHEMA,
                              {"R1": [("s", "t")], "R3": [("s", "u")]})
        egd = EqualityGeneratingConstraint(
            antecedent=[RelAtom("R1", [X, Y]), RelAtom("R3", [X, Z])],
            equalities=[(Y, Z)])
        result = repairs(RepairProblem(db, [egd]))
        assert len(result) == 2


class TestMinimality:
    def test_repairs_are_delta_incomparable(self):
        schema = DatabaseSchema.of({"R": 2})
        db = DatabaseInstance(schema, {"R": [
            ("a", 1), ("a", 2), ("a", 3), ("b", 1), ("b", 2)]})
        fd = FunctionalDependency("R", [0], [1], arity=2)
        result = repairs(RepairProblem(db, [fd]))
        deltas = [r.delta(db) for r in result]
        for i, first in enumerate(deltas):
            for second in deltas[i + 1:]:
                assert not (first < second or second < first)

    def test_is_repair_helper(self):
        schema = DatabaseSchema.of({"R": 2})
        db = DatabaseInstance(schema, {"R": [("a", 1), ("a", 2)]})
        fd = FunctionalDependency("R", [0], [1], arity=2)
        good = db.without_facts([Fact("R", ("a", 2))])
        assert is_repair(db, good, [fd])
        assert not is_repair(db, db, [fd])

    def test_is_repair_checks_fixed_relations(self):
        schema = DatabaseSchema.of({"P": 1, "Q": 1})
        db = DatabaseInstance(schema, {"P": [("a",)], "Q": [("a",)]})
        denial = DenialConstraint(
            antecedent=[RelAtom("P", [X]), RelAtom("Q", [X])])
        dropped_q = db.without_facts([Fact("Q", ("a",))])
        assert is_repair(db, dropped_q, [denial])
        assert not is_repair(db, dropped_q, [denial], changeable={"P"})


class TestControls:
    def test_max_changes_prunes(self):
        schema = DatabaseSchema.of({"R": 2})
        db = DatabaseInstance(schema, {"R": [
            ("a", 1), ("a", 2), ("b", 1), ("b", 2)]})
        fd = FunctionalDependency("R", [0], [1], arity=2)
        result = repairs(RepairProblem(db, [fd], max_changes=1))
        # each repair needs 2 deletions; with budget 1 nothing completes
        assert len(result) == 0

    def test_max_repairs_caps_output(self):
        schema = DatabaseSchema.of({"R": 2})
        db = DatabaseInstance(schema, {"R": [
            ("a", 1), ("a", 2), ("b", 1), ("b", 2)]})
        fd = FunctionalDependency("R", [0], [1], arity=2)
        result = repairs(RepairProblem(db, [fd]), max_repairs=2)
        assert len(result) == 2
