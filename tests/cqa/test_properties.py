"""Property-based tests (hypothesis) for the repair engine."""

from itertools import chain, combinations

from hypothesis import given, settings, strategies as st

from repro.cqa import RepairProblem, repairs
from repro.relational import (
    DatabaseInstance,
    DatabaseSchema,
    DenialConstraint,
    FunctionalDependency,
    InclusionDependency,
    RelAtom,
    Variable,
)

X, Y = Variable("X"), Variable("Y")
SCHEMA = DatabaseSchema.of({"R": 2, "P": 1, "Q": 1})
KEYS = ["k1", "k2", "k3"]
VALS = [1, 2, 3]

fd_rows = st.lists(st.tuples(st.sampled_from(KEYS), st.sampled_from(VALS)),
                   max_size=6).map(lambda rs: list(set(rs)))
unary_rows = st.lists(st.tuples(st.sampled_from(KEYS)),
                      max_size=4).map(lambda rs: list(set(rs)))

FD = FunctionalDependency("R", [0], [1], arity=2)
DENIAL = DenialConstraint(antecedent=[RelAtom("P", [X]),
                                      RelAtom("Q", [X])])


def brute_force_deletion_repairs(instance, constraints):
    """Reference: deletion-only repairs by powerset enumeration."""
    facts = sorted(instance.facts())
    consistent = []
    for dropped in chain.from_iterable(
            combinations(facts, n) for n in range(len(facts) + 1)):
        candidate = instance.without_facts(dropped)
        if all(c.holds_in(candidate) for c in constraints):
            consistent.append(candidate)
    minimal = []
    for candidate in consistent:
        delta = candidate.delta(instance)
        if not any(other.delta(instance) < delta
                   for other in consistent):
            minimal.append(candidate)
    return sorted(set(minimal), key=str)


@settings(max_examples=60, deadline=None)
@given(fd_rows)
def test_fd_repairs_match_brute_force(rows):
    instance = DatabaseInstance(SCHEMA, {"R": rows})
    result = sorted(repairs(RepairProblem(instance, [FD])), key=str)
    assert result == brute_force_deletion_repairs(instance, [FD])


@settings(max_examples=60, deadline=None)
@given(unary_rows, unary_rows)
def test_denial_repairs_match_brute_force(p_rows, q_rows):
    instance = DatabaseInstance(SCHEMA, {"P": p_rows, "Q": q_rows})
    result = sorted(repairs(RepairProblem(instance, [DENIAL])), key=str)
    assert result == brute_force_deletion_repairs(instance, [DENIAL])


@settings(max_examples=60, deadline=None)
@given(fd_rows)
def test_every_repair_is_consistent(rows):
    instance = DatabaseInstance(SCHEMA, {"R": rows})
    for repair in repairs(RepairProblem(instance, [FD])):
        assert FD.holds_in(repair)


@settings(max_examples=60, deadline=None)
@given(fd_rows)
def test_repairs_are_delta_incomparable(rows):
    instance = DatabaseInstance(SCHEMA, {"R": rows})
    deltas = [r.delta(instance)
              for r in repairs(RepairProblem(instance, [FD]))]
    for i, first in enumerate(deltas):
        for second in deltas[i + 1:]:
            assert not (first < second or second < first)


@settings(max_examples=60, deadline=None)
@given(fd_rows)
def test_consistent_instance_is_its_own_repair(rows):
    instance = DatabaseInstance(SCHEMA, {"R": rows})
    if FD.holds_in(instance):
        assert list(repairs(RepairProblem(instance, [FD]))) == [instance]


@settings(max_examples=40, deadline=None)
@given(fd_rows, unary_rows)
def test_fixed_relations_never_change(r_rows, p_rows):
    instance = DatabaseInstance(SCHEMA, {"R": r_rows, "P": p_rows})
    problem = RepairProblem(instance, [FD], changeable={"R"})
    for repair in repairs(problem):
        assert repair.tuples("P") == instance.tuples("P")


INCLUSION = InclusionDependency("P", "Q", child_arity=1, parent_arity=1)


@settings(max_examples=60, deadline=None)
@given(unary_rows, unary_rows)
def test_inclusion_repairs_sound(p_rows, q_rows):
    """Insertion-capable repairs: every result satisfies the IND and the
    change sets stay within the P/Q universe."""
    instance = DatabaseInstance(SCHEMA, {"P": p_rows, "Q": q_rows})
    for repair in repairs(RepairProblem(instance, [INCLUSION])):
        assert INCLUSION.holds_in(repair)
        for fact in repair.delta(instance):
            assert fact.relation in ("P", "Q")
